"""Synthetic stand-in for the Wikipedia page-view dataset.

The paper's third dataset takes each tuple to be "the size of the page
returned by a request to Wikipedia" from the public pagecounts dump.
That dump is unavailable offline, so we synthesize response sizes with
the shape such traces are known to have: a log-normal body (most pages
are a few to a few hundred kilobytes) with heavy duplication — many
requests hit the same popular pages, so the same sizes recur.  What the
quantile algorithms are sensitive to is precisely this skewed,
duplicate-heavy value distribution; see DESIGN.md for the substitution
note.
"""

from __future__ import annotations

import numpy as np

from .base import Workload


class WikipediaWorkload(Workload):
    """Log-normal page sizes with a Zipf-popularity duplicate structure.

    A catalog of ``num_pages`` page sizes is drawn log-normally once;
    each request then picks a page with Zipf popularity, so realized
    batches repeat popular sizes heavily.
    """

    name = "wikipedia"
    universe_log2 = 26  # sizes capped below 64 MB

    def __init__(
        self,
        seed: int = 0,
        num_pages: int = 200_000,
        log_mean: float = 9.5,
        log_sigma: float = 1.2,
        zipf_a: float = 1.3,
    ) -> None:
        super().__init__(seed)
        self.num_pages = num_pages
        self.zipf_a = zipf_a
        catalog_rng = np.random.default_rng(seed ^ 0x5A17)
        sizes = catalog_rng.lognormal(log_mean, log_sigma, size=num_pages)
        limit = float(2 ** self.universe_log2 - 1)
        self._catalog = np.clip(np.rint(sizes), 64, limit).astype(np.int64)

    def generate(self, size: int) -> np.ndarray:
        """Produce the next ``size`` elements of the stream."""
        ranks = self._rng.zipf(self.zipf_a, size=size)
        indices = (ranks - 1) % self.num_pages
        return self._catalog[indices]
