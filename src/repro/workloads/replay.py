"""Replay workload: stream a recorded dataset from a file.

The paper's Wikipedia and OC48 datasets are derived from real traces;
when a user has such a trace (the pagecounts dump, an anonymized pcap
reduced to a value column, ...), :class:`ReplayWorkload` streams it
through the same batch interface as the synthetic workloads, so every
experiment in ``benchmarks/`` can run on real data unchanged.

Accepted sources: ``.npy`` arrays, text files of whitespace-separated
integers, or an in-memory array.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Union

import numpy as np

from .base import Workload


class ReplayWorkload(Workload):
    """Deterministically replays a recorded value sequence.

    Parameters
    ----------
    source:
        Path to a ``.npy`` or text file, or an int64 array.
    name:
        Display name for benchmark tables (defaults to the file stem).
    loop:
        When True (default), generation wraps around at the end of the
        recording; otherwise running past the end raises ValueError.
    """

    def __init__(
        self,
        source: Union[str, Path, np.ndarray],
        name: "str | None" = None,
        loop: bool = True,
    ) -> None:
        super().__init__(seed=0)
        if isinstance(source, np.ndarray):
            values = source.astype(np.int64)
            self.name = name or "replay"
        else:
            path = Path(source)
            if not path.exists():
                raise FileNotFoundError(path)
            if path.suffix == ".npy":
                values = np.load(path).astype(np.int64)
            else:
                values = np.asarray(
                    [int(token) for token in path.read_text().split()],
                    dtype=np.int64,
                )
            self.name = name or path.stem
        if values.size == 0:
            raise ValueError("replay source is empty")
        self._values = values
        self._cursor = 0
        self.loop = loop
        low = int(values.min())
        if low < 0:
            raise ValueError("replay values must be non-negative")
        self.universe_log2 = max(1, int(values.max()).bit_length())

    def __len__(self) -> int:
        return len(self._values)

    def generate(self, size: int) -> np.ndarray:
        """Produce the next ``size`` elements of the stream."""
        if size <= 0:
            return np.empty(0, dtype=np.int64)
        if not self.loop and self._cursor + size > len(self._values):
            raise ValueError(
                f"recording exhausted: {len(self._values) - self._cursor} "
                f"values left, {size} requested"
            )
        repeats = math.ceil((self._cursor + size) / len(self._values))
        extended = (
            np.tile(self._values, repeats)
            if repeats > 1
            else self._values
        )
        out = extended[self._cursor : self._cursor + size].copy()
        self._cursor = (self._cursor + size) % len(self._values)
        return out

    def reset(self) -> None:
        """Rewind the generator to its initial state."""
        self._cursor = 0
