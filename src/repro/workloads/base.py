"""Workload protocol: deterministic batch generators.

A workload produces int64 batches, one per time step, from an explicit
seed so every experiment is reproducible run-to-run.  The four concrete
workloads mirror the paper's Section 3.1 datasets (two synthetic, two
modelled after the real traces — see DESIGN.md for the substitutions).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np


class Workload(ABC):
    """A deterministic source of int64 batches."""

    #: Human-readable name used in benchmark tables.
    name: str = "workload"
    #: log2 of the smallest power-of-two universe containing all values
    #: (needed by Q-Digest and used to bound value bisection).
    universe_log2: int = 34

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self.seed = seed

    @abstractmethod
    def generate(self, size: int) -> np.ndarray:
        """Produce the next ``size`` elements of the stream."""

    def batches(self, num_steps: int, batch_elems: int) -> Iterator[np.ndarray]:
        """Yield ``num_steps`` batches of ``batch_elems`` elements each."""
        for _ in range(num_steps):
            yield self.generate(batch_elems)

    def feed(
        self,
        engine,
        num_steps: int,
        batch_elems: int,
        update_batch: "int | None" = None,
        end_steps: bool = True,
    ) -> int:
        """Drive ``engine`` with this workload over the vectorized path.

        Generates ``num_steps`` arrays of ``batch_elems`` elements and
        hands each to ``engine.stream_update_many`` — whole, or chunked
        into slices of at most ``update_batch`` elements to mimic a
        given arrival batch size (``update_batch=1`` degenerates to the
        scalar cadence while still exercising the array entry point).
        With ``end_steps`` (default) each generated array is sealed via
        ``engine.end_time_step()``.  Returns the number of elements fed.
        """
        total = 0
        for batch in self.batches(num_steps, batch_elems):
            if update_batch is None or update_batch >= batch.size:
                total += engine.stream_update_many(batch)
            else:
                if update_batch < 1:
                    raise ValueError("update_batch must be >= 1")
                for lo in range(0, int(batch.size), update_batch):
                    total += engine.stream_update_many(
                        batch[lo : lo + update_batch]
                    )
            if end_steps:
                engine.end_time_step()
        return total

    def reset(self) -> None:
        """Rewind the generator to its initial seed."""
        self._rng = np.random.default_rng(self.seed)
