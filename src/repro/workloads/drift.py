"""Drift workload: a distribution that shifts over time.

Integrated historical+streaming analytics exist because distributions
*change* — the paper motivates comparing "current trends in the
streaming data with those observed over different time periods".
:class:`DriftWorkload` makes that concrete: a normal distribution whose
mean walks linearly (or jumps) across batches, so windowed and
step-range queries return visibly different quantiles from full-history
queries.  Used by tests and demos that exercise window semantics.
"""

from __future__ import annotations

import numpy as np

from .base import Workload


class DriftWorkload(Workload):
    """Normal batches whose mean moves as time passes.

    Parameters
    ----------
    seed:
        RNG seed.
    start_mean, drift_per_batch:
        The b-th generated batch is centred at
        ``start_mean + b * drift_per_batch``.
    stddev:
        Spread of each batch.
    jump_at, jump_to:
        Optional regime change: from batch index ``jump_at`` onward the
        mean jumps to ``jump_to`` (then keeps drifting from there).
    """

    name = "drift"
    universe_log2 = 32

    def __init__(
        self,
        seed: int = 0,
        start_mean: float = 1e6,
        drift_per_batch: float = 5e4,
        stddev: float = 1e5,
        jump_at: "int | None" = None,
        jump_to: "float | None" = None,
    ) -> None:
        super().__init__(seed)
        if (jump_at is None) != (jump_to is None):
            raise ValueError("jump_at and jump_to go together")
        self.start_mean = start_mean
        self.drift_per_batch = drift_per_batch
        self.stddev = stddev
        self.jump_at = jump_at
        self.jump_to = jump_to
        self._batch_index = 0

    def current_mean(self) -> float:
        """Centre of the next batch to be generated."""
        index = self._batch_index
        if self.jump_at is not None and index >= self.jump_at:
            base = self.jump_to
            index = index - self.jump_at
        else:
            base = self.start_mean
        return base + index * self.drift_per_batch

    def generate(self, size: int) -> np.ndarray:
        """Produce the next ``size`` elements of the stream."""
        mean = self.current_mean()
        self._batch_index += 1
        values = self._rng.normal(mean, self.stddev, size=size)
        limit = float(2 ** self.universe_log2 - 1)
        return np.clip(np.rint(values), 0, limit).astype(np.int64)

    def reset(self) -> None:
        """Rewind the generator to its initial state."""
        super().reset()
        self._batch_index = 0
