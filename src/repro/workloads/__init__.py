"""The four evaluation workloads of Section 3.1."""

from .base import Workload
from .drift import DriftWorkload
from .network import NetworkTraceWorkload
from .replay import ReplayWorkload
from .synthetic import NormalWorkload, UniformWorkload
from .wikipedia import WikipediaWorkload

ALL_WORKLOADS = (
    UniformWorkload,
    NormalWorkload,
    WikipediaWorkload,
    NetworkTraceWorkload,
)

__all__ = [
    "Workload",
    "NormalWorkload",
    "UniformWorkload",
    "WikipediaWorkload",
    "NetworkTraceWorkload",
    "ReplayWorkload",
    "DriftWorkload",
    "ALL_WORKLOADS",
]
