"""Synthetic stand-in for the OC48 ISP packet trace.

The paper's fourth dataset comes from anonymized traffic at a west
coast OC48 peering link, with "each tuple a source-destination pair".
Real traces are unavailable offline, so we synthesize flows: source and
destination endpoints are drawn with Zipf popularity (a small set of
hosts dominates traffic, as in any peering-link trace), and each pair
is packed into a single int64 key ``(src << 20) | dst`` — the natural
total order the paper's algorithms consume.  The result is a highly
duplicated, clustered integer distribution, which is the property the
quantile structures are exercised by; see DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from .base import Workload


class NetworkTraceWorkload(Workload):
    """Zipf-popularity source/destination pairs packed into int64."""

    name = "network"
    universe_log2 = 40  # 20-bit source and 20-bit destination

    def __init__(
        self,
        seed: int = 0,
        num_hosts: int = 50_000,
        zipf_a: float = 1.2,
    ) -> None:
        super().__init__(seed)
        if num_hosts >= 1 << 20:
            raise ValueError("num_hosts must fit in 20 bits")
        self.num_hosts = num_hosts
        self.zipf_a = zipf_a
        # A fixed random renumbering so popular hosts are not all
        # clustered at small addresses (traces are anonymized, so host
        # ids are effectively shuffled).
        shuffle_rng = np.random.default_rng(seed ^ 0x0C48)
        self._host_ids = shuffle_rng.permutation(num_hosts).astype(np.int64)

    def _draw_hosts(self, size: int) -> np.ndarray:
        ranks = self._rng.zipf(self.zipf_a, size=size)
        return self._host_ids[(ranks - 1) % self.num_hosts]

    def generate(self, size: int) -> np.ndarray:
        """Produce the next ``size`` elements of the stream."""
        sources = self._draw_hosts(size)
        destinations = self._draw_hosts(size)
        return (sources << 20) | destinations
