"""The paper's two synthetic datasets: Normal and Uniform Random."""

from __future__ import annotations

import numpy as np

from .base import Workload


class NormalWorkload(Workload):
    """Normal distribution, mean 100 million, stddev 10 million (§3.1).

    Values are rounded to int64 and clipped at zero (the paper's Java
    generator produced longs from the same distribution).
    """

    name = "normal"
    universe_log2 = 28  # values concentrate well below 2**28 ~ 2.7e8

    def __init__(
        self,
        seed: int = 0,
        mean: float = 1e8,
        stddev: float = 1e7,
    ) -> None:
        super().__init__(seed)
        self.mean = mean
        self.stddev = stddev

    def generate(self, size: int) -> np.ndarray:
        """Produce the next ``size`` elements of the stream."""
        values = self._rng.normal(self.mean, self.stddev, size=size)
        limit = float(2 ** self.universe_log2 - 1)
        return np.clip(np.rint(values), 0, limit).astype(np.int64)


class UniformWorkload(Workload):
    """Uniform integers from 1e8 to 1e9 (§3.1)."""

    name = "uniform"
    universe_log2 = 30  # 1e9 < 2**30

    def __init__(
        self,
        seed: int = 0,
        low: int = 100_000_000,
        high: int = 1_000_000_000,
    ) -> None:
        super().__init__(seed)
        if low >= high:
            raise ValueError("low must be < high")
        self.low = low
        self.high = high

    def generate(self, size: int) -> np.ndarray:
        """Produce the next ``size`` elements of the stream."""
        return self._rng.integers(
            self.low, self.high, size=size, dtype=np.int64
        )
