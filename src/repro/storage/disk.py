"""A simulated block device.

The paper evaluates on a laptop hard disk with 100 KB blocks.  We cannot
(and, per the reproduction notes, should not try to) reproduce physical
disk timings; what the paper's lemmas and figures actually measure is
*block-granular access counts*.  :class:`SimulatedDisk` therefore stores
data in ordinary NumPy arrays but forces every access through a block
API that charges the owning :class:`~repro.storage.stats.DiskStats`.

One :class:`SimulatedDisk` instance backs one engine; every
:class:`~repro.storage.runfile.SortedRun` allocated from it shares the
same counters, so an experiment can read a single tally for, e.g., "disk
accesses per time step" (Fig. 7) or "disk accesses per query" (Fig. 9).

The disk itself is stateless apart from its :class:`DiskStats`, whose
counter updates are atomic — the parallel query executor
(:mod:`repro.query`) charges it from several threads at once without
losing counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .backends import SimulatedBackend
from .stats import DiskLatencyModel, DiskStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .backends import BlockDevice


class SimulatedDisk:
    """Block-granular storage with I/O accounting.

    Parameters
    ----------
    block_elems:
        Number of data elements per disk block.  The paper uses 100 KB
        blocks with 8-byte values (12 800 elements); scaled-down
        experiments use proportionally smaller blocks so that the
        blocks-per-batch ratio matches the paper's.
    latency:
        Optional latency model used to convert access counts into
        simulated seconds.
    backend:
        Optional :class:`~repro.storage.backends.BlockDevice` that owns
        the payload bytes of every run allocated from this disk.
        Defaults to the in-memory
        :class:`~repro.storage.backends.SimulatedBackend`, which keeps
        historical behaviour bit-identical.  Backends never change what
        is *charged* — they add real bytes and request-level accounting
        (object GET/PUT) on top of the block counters.
    """

    def __init__(
        self,
        block_elems: int = 4096,
        latency: Optional[DiskLatencyModel] = None,
        backend: "Optional[BlockDevice]" = None,
    ) -> None:
        if block_elems < 1:
            raise ValueError("block_elems must be >= 1")
        self.block_elems = block_elems
        self.stats = DiskStats()
        self.latency = latency if latency is not None else DiskLatencyModel()
        self.backend: "BlockDevice" = (
            backend if backend is not None else SimulatedBackend()
        )

    def blocks_for(self, num_elems: int) -> int:
        """Number of blocks occupied by ``num_elems`` elements."""
        if num_elems <= 0:
            return 0
        return -(-num_elems // self.block_elems)

    def block_of(self, index: int) -> int:
        """The block number holding the element at ``index``."""
        return index // self.block_elems

    def write_sequential(self, data: np.ndarray) -> np.ndarray:
        """Persist ``data`` to disk, charging sequential write I/O.

        Returns the stored array (a copy, so callers cannot mutate the
        on-disk image through their reference).
        """
        stored = np.array(data, copy=True)
        self.stats.record_sequential_write(self.blocks_for(len(stored)))
        return stored

    def read_sequential(self, stored: np.ndarray) -> np.ndarray:
        """Scan an on-disk array, charging sequential read I/O."""
        self.stats.record_sequential_read(self.blocks_for(len(stored)))
        return stored

    def charge_sequential_read(self, num_elems: int) -> None:
        """Charge a sequential scan of ``num_elems`` elements."""
        self.stats.record_sequential_read(self.blocks_for(num_elems))

    def charge_sequential_write(self, num_elems: int) -> None:
        """Charge a sequential write of ``num_elems`` elements."""
        self.stats.record_sequential_write(self.blocks_for(num_elems))

    def charge_random_read(self, blocks: int = 1) -> None:
        """Charge ``blocks`` random block reads."""
        self.stats.record_random_read(blocks)

    def simulated_seconds(self) -> float:
        """Total simulated time for all accesses so far.

        Block-model latency plus whatever request latency the storage
        backend accrued (e.g. object-store GET/PUT round trips).
        """
        return self.latency.seconds(self.stats.counters) + self.backend.simulated_seconds()
