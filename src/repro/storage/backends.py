"""Pluggable block-device backends for sorted-run storage.

`SimulatedDisk` models the *cost* of block I/O; this module supplies
the *bytes*.  A :class:`BlockDevice` owns the payload of every sorted
run and hands out :class:`RunHandle` objects that `SortedRun` reads
through.  Three implementations ship:

``SimulatedBackend``
    Today's in-memory arrays, unchanged — the deterministic default.
    Zero real I/O, zero added latency.

``MmapFileBackend``
    One real file per run under a directory, committed with the
    atomic write/fsync/rename discipline of :mod:`repro.storage.fsutil`
    and read back through ``numpy`` memory maps, so block probes touch
    the page cache instead of a resident copy.

``ObjectStoreBackend``
    An S3-like emulation over a local bucket directory.  Runs are born
    in a hot file tier; the warehouse ages cold levels into the bucket
    (:meth:`place_run`), after which every *charged* block read becomes
    a GET request with per-request latency and GET/PUT/LIST counters.

The contract that keeps the repo's equivalence moat intact: backends
never change *what* is charged — `DiskStats` block counters are driven
by the existing charge paths and stay bit-identical across all three.
Backends only add request-level accounting (and real bytes) on top:
`SortedRun` calls :meth:`RunHandle.note_range_read` /
:meth:`RunHandle.note_sequential_read` exactly when blocks were
actually charged, so a shared-cache or per-query-cache hit never turns
into an object GET.

The cold-read fast path layers two request-shaping mechanisms *under*
the charge layer (charges never change; only request counts and
modeled latency shrink):

* **Ranged partial-object GETs.**  :meth:`RunHandle.read_blocks`
  returns just the requested block span.  The object backend serves it
  as one byte-range read of the bucket object (seek + read of exactly
  those blocks) instead of materializing the whole run, so a cold
  binary-search probe touches kilobytes, not the full object.
* **Fetch coalescing with readahead.**  With ``coalesce=True`` the
  object backend remembers which blocks each bucket object has already
  streamed; a charged range only becomes a GET for its not-yet-fetched
  sub-ranges, and each GET is widened by up to ``readahead_blocks``
  while the marginal per-block cost stays below the request-setup cost
  (:meth:`ObjectStoreLatency.break_even_blocks`).  With
  ``coalesce=False`` every charged range is one GET of exactly the
  charged blocks — the historical (PR-9) request accounting, kept as
  the ablation baseline.
"""

from __future__ import annotations

import io
import shutil
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Protocol, Set, Tuple, runtime_checkable

import numpy as np

from .fsutil import atomic_write_bytes, fsync_dir, remove_stale_stages

#: recognised values of ``EngineConfig.storage_backend``.
BACKEND_NAMES = ("simulated", "mmap", "object")

#: tier labels reported by :attr:`RunHandle.tier`.
MEMORY_TIER = "memory"
FILE_TIER = "file"
OBJECT_TIER = "object"


@dataclass(frozen=True)
class ObjectStoreLatency:
    """Per-request latency model of the emulated object store.

    Request setup dominates object-store reads, so latency is charged
    per GET/PUT plus a small per-block streaming term — this is what
    makes ranged GETs (one request, many blocks) worth planning for.
    """

    seconds_per_get: float = 5e-3
    seconds_per_get_block: float = 1e-4
    seconds_per_put: float = 1e-2
    seconds_per_list: float = 2e-3

    #: readahead width used when the per-block streaming cost is zero
    #: (the break-even point would be unbounded).
    DEFAULT_READAHEAD_CAP = 256

    def break_even_blocks(self) -> int:
        """Blocks a ranged GET can be widened by before a second
        request would have been cheaper.

        Widening one GET by ``k`` blocks costs
        ``k * seconds_per_get_block``; issuing a separate GET for those
        blocks later costs ``seconds_per_get`` of request setup (plus
        the same streaming).  Readahead therefore pays for itself while
        ``k <= seconds_per_get / seconds_per_get_block`` — 50 blocks at
        the defaults.  This is the auto value of
        ``EngineConfig.readahead_blocks``.
        """
        if self.seconds_per_get_block <= 0:
            return self.DEFAULT_READAHEAD_CAP
        return int(self.seconds_per_get // self.seconds_per_get_block)

    def __post_init__(self) -> None:
        for field in (
            "seconds_per_get",
            "seconds_per_get_block",
            "seconds_per_put",
            "seconds_per_list",
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")


@dataclass(frozen=True)
class BackendStats:
    """Snapshot of request-level backend accounting.

    All-zero for the simulated and mmap backends; the object backend
    counts every request against the bucket.  ``get_blocks`` is the
    total blocks streamed across GETs (including readahead), so
    ``get_blocks / gets`` is the mean ranged-GET width the cold-read
    pipeline achieved.

    Two kinds of field live here and :meth:`delta_since` treats them
    differently:

    * **Counters** (``gets``, ``get_blocks``, ``puts``, ``lists``,
      ``migrations``, ``evicted_runs``) accumulate monotonically; a
      delta subtracts the earlier snapshot.
    * **Gauges** (``hot_runs``, ``object_runs``, ``hot_bytes``)
      describe current residency levels.  Subtracting two gauge
      readings is meaningless (a run migrating *decreases*
      ``hot_runs``), so a delta carries the *later* snapshot's gauge
      values unchanged.
    """

    gets: int = 0
    get_blocks: int = 0
    puts: int = 0
    lists: int = 0
    migrations: int = 0
    hot_runs: int = 0
    object_runs: int = 0
    evicted_runs: int = 0
    hot_bytes: int = 0

    def delta_since(self, earlier: "BackendStats") -> "BackendStats":
        """Counter deltas since ``earlier``; gauges copied, not subtracted.

        ``gets``/``get_blocks``/``puts``/``lists``/``migrations``/
        ``evicted_runs`` are differenced; the residency gauges
        (``hot_runs``, ``object_runs``, ``hot_bytes``) report this
        snapshot's current level verbatim.
        """
        return BackendStats(
            gets=self.gets - earlier.gets,
            get_blocks=self.get_blocks - earlier.get_blocks,
            puts=self.puts - earlier.puts,
            lists=self.lists - earlier.lists,
            migrations=self.migrations - earlier.migrations,
            hot_runs=self.hot_runs,
            object_runs=self.object_runs,
            evicted_runs=self.evicted_runs - earlier.evicted_runs,
            hot_bytes=self.hot_bytes,
        )


@runtime_checkable
class RunHandle(Protocol):
    """Read path of one sorted run inside a backend."""

    run_id: int
    #: elements per block, bound by :class:`~repro.storage.runfile.
    #: SortedRun` at allocation so ranged reads can map blocks to byte
    #: offsets without consulting the disk object.
    block_elems: int

    @property
    def tier(self) -> str:
        """Current tier label (``memory`` / ``file`` / ``object``)."""

    @property
    def data(self) -> np.ndarray:
        """The run's payload as a read-only (possibly mapped) array."""

    def read_blocks(self, first_block: int, last_block: int) -> np.ndarray:
        """Elements stored in blocks ``[first_block, last_block]``.

        The partial-read primitive of the cold path: backends return
        only the requested span — the object backend as one byte-range
        read of the bucket object, the mmap backend as a slice of the
        map, the simulated backend as a free view — so a cold probe
        never materializes the whole run.  Pure bytes; all charging and
        request accounting stay on the ``note_*`` paths.
        """

    def note_random_read(self, requests: int, blocks: int) -> None:
        """Record ``requests`` random reads totalling ``blocks`` charged blocks."""

    def note_range_read(
        self, first_block: int, last_block: int, charged: int
    ) -> None:
        """Record one charged ranged read of ``[first_block, last_block]``.

        ``charged`` is the number of blocks the cache layer actually
        charged (misses only).  The object backend turns this into GET
        requests — one per not-yet-fetched contiguous sub-range when
        coalescing, exactly one GET of ``charged`` blocks otherwise.
        """

    def note_sequential_read(self, blocks: int) -> None:
        """Record one sequential pass over ``blocks`` charged blocks."""


@runtime_checkable
class BlockDevice(Protocol):
    """What a storage backend must provide to the engine.

    The engine allocates a run per sorted array, routes every charged
    read through the run's handle, asks :meth:`place_run` to apply the
    tiering policy when the warehouse (re)levels a run, and deletes
    runs as compaction retires them.  ``fsync`` hardens any buffered
    state; ``close`` releases resources (and removes any owned
    temporary directory).
    """

    name: str

    def allocate_run(self, run_id: int, data: np.ndarray) -> RunHandle:
        """Persist ``data`` as run ``run_id`` and return its handle."""

    def delete_run(self, run_id: int) -> None:
        """Release run ``run_id`` (pinned handles keep reading)."""

    def place_run(self, run_id: int, level: int) -> None:
        """Apply the tiering policy for a run now living at ``level``."""

    def pin_runs(self, run_ids: Iterable[int]) -> None:
        """Refcount-pin runs against hot-tier eviction (snapshot scope)."""

    def unpin_runs(self, run_ids: Iterable[int]) -> None:
        """Release one pin per run taken by :meth:`pin_runs`."""

    def fsync(self) -> None:
        """Harden all buffered backend state."""

    def stats(self) -> BackendStats:
        """Snapshot request-level counters."""

    def simulated_seconds(self) -> float:
        """Modeled request latency accrued so far, in seconds."""

    def close(self) -> None:
        """Release resources; owned temporary directories are removed."""


def _as_npy_bytes(data: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, data, allow_pickle=False)
    return buffer.getvalue()


class _SimulatedHandle:
    """Handle over a resident in-memory array (no request accounting)."""

    __slots__ = ("run_id", "block_elems", "_data")

    def __init__(self, run_id: int, data: np.ndarray) -> None:
        self.run_id = run_id
        self.block_elems = 1
        self._data = data

    @property
    def tier(self) -> str:
        return MEMORY_TIER

    @property
    def data(self) -> np.ndarray:
        return self._data

    def read_blocks(self, first_block: int, last_block: int) -> np.ndarray:
        lo = first_block * self.block_elems
        hi = (last_block + 1) * self.block_elems
        return self._data[lo:hi]

    def note_random_read(self, requests: int, blocks: int) -> None:
        return None

    def note_range_read(
        self, first_block: int, last_block: int, charged: int
    ) -> None:
        return None

    def note_sequential_read(self, blocks: int) -> None:
        return None


class SimulatedBackend:
    """The deterministic default: runs live as in-memory arrays.

    Behaviourally identical to the pre-backend engine — allocation
    copies the array once (as `SortedRun` always did) and reads return
    views of it.  Request counters stay zero.
    """

    name = "simulated"

    def __init__(self) -> None:
        self._runs: Dict[int, np.ndarray] = {}
        self._lock = threading.Lock()

    def allocate_run(self, run_id: int, data: np.ndarray) -> _SimulatedHandle:
        stored = np.array(data, copy=True)
        stored.setflags(write=False)
        with self._lock:
            self._runs[run_id] = stored
        return _SimulatedHandle(run_id, stored)

    def delete_run(self, run_id: int) -> None:
        # Handles hold their own reference, so pinned snapshot readers
        # keep working after the backend forgets the run.
        with self._lock:
            self._runs.pop(run_id, None)

    def place_run(self, run_id: int, level: int) -> None:
        return None

    def pin_runs(self, run_ids: Iterable[int]) -> None:
        return None

    def unpin_runs(self, run_ids: Iterable[int]) -> None:
        return None

    def fsync(self) -> None:
        return None

    def stats(self) -> BackendStats:
        with self._lock:
            return BackendStats(hot_runs=len(self._runs))

    def simulated_seconds(self) -> float:
        return 0.0

    def close(self) -> None:
        with self._lock:
            self._runs.clear()


class _FileHandle:
    """Lazy mmap view of a run file; pins bytes in RAM once deleted."""

    __slots__ = (
        "run_id",
        "block_elems",
        "_backend",
        "_path",
        "_mapped",
        "_resident",
        "_lock",
    )

    def __init__(self, backend: "MmapFileBackend", run_id: int, path: Path) -> None:
        self.run_id = run_id
        self.block_elems = 1
        self._backend = backend
        self._path = path
        self._mapped: Optional[np.ndarray] = None
        self._resident: Optional[np.ndarray] = None
        self._lock = threading.Lock()

    @property
    def tier(self) -> str:
        if self._resident is not None:
            return MEMORY_TIER
        return self._backend._tier_of(self.run_id)

    @property
    def data(self) -> np.ndarray:
        with self._lock:
            if self._resident is not None:
                return self._resident
            if self._mapped is None:
                # The path is re-resolved per attempt: a concurrent
                # tier migration (hot <-> bucket) can unlink the file
                # we were about to map, but the run always exists in
                # exactly one tier once the move completes.
                for attempt in range(3):
                    try:
                        self._mapped = np.load(
                            self._backend._path_of(self.run_id), mmap_mode="r"
                        )
                        break
                    except FileNotFoundError:
                        if attempt == 2:
                            raise
            return self._mapped

    def _materialize(self) -> None:
        """Copy the mapped bytes into RAM before the file disappears."""
        with self._lock:
            if self._resident is None:
                source = self._mapped
                if source is None:
                    try:
                        source = np.load(
                            self._backend._path_of(self.run_id), mmap_mode="r"
                        )
                    except (OSError, ValueError):
                        source = None
                if source is not None:
                    resident = np.array(source, copy=True)
                    resident.setflags(write=False)
                    self._resident = resident
                self._mapped = None

    def read_blocks(self, first_block: int, last_block: int) -> np.ndarray:
        with self._lock:
            if self._resident is not None:
                lo = first_block * self.block_elems
                hi = (last_block + 1) * self.block_elems
                return self._resident[lo:hi]
        return self._backend._read_blocks(self, first_block, last_block)

    def note_random_read(self, requests: int, blocks: int) -> None:
        self._backend._note_random_read(self.run_id, requests, blocks)

    def note_range_read(
        self, first_block: int, last_block: int, charged: int
    ) -> None:
        self._backend._note_range_read(self, first_block, last_block, charged)

    def note_sequential_read(self, blocks: int) -> None:
        self._backend._note_sequential_read(self.run_id, blocks)


class MmapFileBackend:
    """One ``run-<id>.npy`` file per sorted run, read through mmap.

    Files commit via :func:`repro.storage.fsutil.atomic_write_bytes`,
    so a crash leaves either the full previous state or the full new
    run, never a torn file.  :meth:`fsck` (run at startup) removes
    staging orphans left by a crash between write and rename.
    """

    name = "mmap"
    _RUN_PREFIX = "run-"

    def __init__(self, directory: "str | Path | None" = None) -> None:
        if directory is None:
            self._directory = Path(tempfile.mkdtemp(prefix="repro-mmap-"))
            self._owns_directory = True
        else:
            self._directory = Path(directory)
            self._directory.mkdir(parents=True, exist_ok=True)
            self._owns_directory = False
        self._handles: Dict[int, _FileHandle] = {}
        self._lock = threading.Lock()
        #: eviction pins: run_id -> live SnapshotHandle refcount.  The
        #: base backend only tracks them (no eviction to apply); the
        #: object backend's hot-tier LRU consults them.
        self._pins: Dict[int, int] = {}
        #: what the latest fsck() repaired, for CLI reporting.
        self.fsck_report: List[str] = []
        self.fsck()

    # -- layout ---------------------------------------------------------

    @property
    def directory(self) -> Path:
        """Root directory holding the run files."""
        return self._directory

    def _path_of(self, run_id: int) -> Path:
        return self._directory / f"{self._RUN_PREFIX}{run_id}.npy"

    def _tier_of(self, run_id: int) -> str:
        return FILE_TIER

    def fsck(self) -> "list[Path]":
        """Remove crash leftovers (staging orphans); return what was removed."""
        removed = remove_stale_stages(self._directory)
        self.fsck_report = [f"removed stale stage {path.name}" for path in removed]
        return removed

    # Request accounting is an object-store concern; the file tier has
    # no per-request cost (its reads are page-cache hits via mmap).
    def _note_random_read(self, run_id: int, requests: int, blocks: int) -> None:
        return None

    def _note_range_read(
        self, handle: _FileHandle, first_block: int, last_block: int, charged: int
    ) -> None:
        return None

    def _note_sequential_read(self, run_id: int, blocks: int) -> None:
        return None

    def _read_blocks(
        self, handle: _FileHandle, first_block: int, last_block: int
    ) -> np.ndarray:
        """Serve a ranged read by slicing the memory map."""
        data = handle.data
        lo = first_block * handle.block_elems
        hi = (last_block + 1) * handle.block_elems
        return data[lo:hi]

    # -- BlockDevice ----------------------------------------------------

    def allocate_run(self, run_id: int, data: np.ndarray) -> _FileHandle:
        atomic_write_bytes(self._path_of(run_id), _as_npy_bytes(data))
        handle = _FileHandle(self, run_id, self._path_of(run_id))
        with self._lock:
            self._handles[run_id] = handle
        return handle

    def delete_run(self, run_id: int) -> None:
        with self._lock:
            handle = self._handles.pop(run_id, None)
        if handle is not None:
            handle._materialize()
        path = self._path_of(run_id)
        if path.exists():
            path.unlink()
            fsync_dir(self._directory)
        with self._lock:
            self._pins.pop(run_id, None)

    def place_run(self, run_id: int, level: int) -> None:
        return None

    def pin_runs(self, run_ids: Iterable[int]) -> None:
        with self._lock:
            for run_id in run_ids:
                self._pins[run_id] = self._pins.get(run_id, 0) + 1

    def unpin_runs(self, run_ids: Iterable[int]) -> None:
        with self._lock:
            for run_id in run_ids:
                count = self._pins.get(run_id, 0) - 1
                if count <= 0:
                    self._pins.pop(run_id, None)
                else:
                    self._pins[run_id] = count

    def fsync(self) -> None:
        fsync_dir(self._directory)

    def stats(self) -> BackendStats:
        with self._lock:
            return BackendStats(hot_runs=len(self._handles))

    def simulated_seconds(self) -> float:
        return 0.0

    def close(self) -> None:
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            with handle._lock:
                handle._mapped = None
        if self._owns_directory:
            shutil.rmtree(self._directory, ignore_errors=True)


def _contiguous_spans(blocks: "List[int]") -> "Iterable[Tuple[int, int]]":
    """Yield (lo, hi) inclusive maximal runs of a sorted block list."""
    start = prev = None
    for block in blocks:
        if start is None:
            start = prev = block
        elif block == prev + 1:
            prev = block
        else:
            yield start, prev
            start = prev = block
    if start is not None:
        yield start, prev


class ObjectStoreBackend(MmapFileBackend):
    """S3-like tiered store: hot run files plus a local bucket directory.

    Runs are allocated into ``hot/`` exactly like the mmap backend.
    When the warehouse places a run at a level at or beyond
    ``object_tier_level``, the run migrates into ``objects/`` (one
    atomic PUT) and its hot file is dropped.  From then on every
    *charged* read of the run is an object request, with modeled
    latency from :class:`ObjectStoreLatency` folded into
    ``SimulatedDisk.simulated_seconds``.

    With ``coalesce=True`` (the default) the backend keeps a
    fetched-block registry per bucket object: a charged range only
    issues GETs for its not-yet-fetched contiguous sub-ranges, each
    widened by ``readahead_blocks`` (default: the latency model's
    break-even width), clamped to the end of the run.  Readahead is
    charge-neutral — extra blocks are streamed in the same request but
    never added to ``DiskStats`` — so answers and charged blocks stay
    bit-identical to ``coalesce=False``, which reproduces the strict
    one-GET-per-charge accounting of the pre-coalescing backend.

    ``hot_tier_bytes`` capacity-bounds ``hot/``: when allocation or
    promotion pushes the tier past the budget, least-recently-read
    unpinned runs are demoted to the bucket via the same atomic
    migration as ``place_run``.  Runs pinned by a live snapshot
    (:meth:`pin_runs`) are never evicted; if everything is pinned the
    tier temporarily exceeds its budget rather than break a reader.
    """

    name = "object"

    def __init__(
        self,
        directory: "str | Path | None" = None,
        object_tier_level: int = 1,
        latency: Optional[ObjectStoreLatency] = None,
        readahead_blocks: Optional[int] = None,
        coalesce: bool = True,
        hot_tier_bytes: Optional[int] = None,
    ) -> None:
        if object_tier_level < 0:
            raise ValueError("object_tier_level must be >= 0")
        if readahead_blocks is not None and readahead_blocks < 0:
            raise ValueError("readahead_blocks must be >= 0")
        if hot_tier_bytes is not None and hot_tier_bytes < 0:
            raise ValueError("hot_tier_bytes must be >= 0")
        self.object_tier_level = object_tier_level
        self.latency = latency if latency is not None else ObjectStoreLatency()
        self.coalesce = coalesce
        self.readahead_blocks = (
            self.latency.break_even_blocks()
            if readahead_blocks is None
            else readahead_blocks
        )
        self.hot_tier_bytes = hot_tier_bytes
        self._object_runs: "set[int]" = set()
        self._gets = 0
        self._get_blocks = 0
        self._puts = 0
        self._lists = 0
        self._migrations = 0
        self._evictions = 0
        #: blocks of each bucket object already streamed by some GET.
        self._fetched: Dict[int, Set[int]] = {}
        #: element count per run (clamps readahead to the run's end).
        self._lengths: Dict[int, int] = {}
        #: parsed .npy layout per run: (data offset, dtype, length).
        self._layouts: "Dict[int, Tuple[int, np.dtype, int]]" = {}
        #: hot-tier residency bookkeeping for the eviction policy.
        self._hot_bytes: Dict[int, int] = {}
        self._hot_total = 0
        self._hot_lru: "OrderedDict[int, None]" = OrderedDict()
        #: runs demoted by *pressure* (vs. policy tiering): these are
        #: re-admitted to hot on the next ``place_run`` at a hot level.
        self._evicted: Set[int] = set()
        super().__init__(directory)
        self._bucket.mkdir(parents=True, exist_ok=True)
        self._list_bucket()

    # -- layout ---------------------------------------------------------

    @property
    def _hot(self) -> Path:
        return self._directory / "hot"

    @property
    def _bucket(self) -> Path:
        return self._directory / "objects"

    def _path_of(self, run_id: int) -> Path:
        if run_id in self._object_runs:
            return self._bucket / f"{self._RUN_PREFIX}{run_id}.npy"
        return self._hot / f"{self._RUN_PREFIX}{run_id}.npy"

    def _tier_of(self, run_id: int) -> str:
        return OBJECT_TIER if run_id in self._object_runs else FILE_TIER

    def fsck(self) -> "list[Path]":
        """Remove crash leftovers in both tiers; counts one LIST per scan.

        Besides staging orphans, this repairs the migration crash
        window: a crash after the bucket PUT renamed into place but
        before the hot file was unlinked leaves the run in *both*
        tiers.  The PUT had committed, so the bucket copy is
        authoritative — fsck finishes the migration by dropping the
        hot duplicate.
        """
        self._hot.mkdir(parents=True, exist_ok=True)
        self._bucket.mkdir(parents=True, exist_ok=True)
        removed = remove_stale_stages(self._hot)
        removed += remove_stale_stages(self._bucket)
        report = [f"removed stale stage {path.name}" for path in removed]
        dropped_hot = False
        for entry in sorted(self._hot.glob(f"{self._RUN_PREFIX}*.npy")):
            if (self._bucket / entry.name).exists():
                entry.unlink()
                removed.append(entry)
                report.append(
                    f"dropped hot duplicate of migrated {entry.name}"
                )
                dropped_hot = True
        if dropped_hot:
            fsync_dir(self._hot)
        self.fsck_report = report
        return removed

    def _list_bucket(self) -> None:
        with self._lock:
            self._lists += 1
            for entry in sorted(self._bucket.glob(f"{self._RUN_PREFIX}*.npy")):
                try:
                    run_id = int(entry.stem[len(self._RUN_PREFIX):])
                except ValueError:
                    continue
                self._object_runs.add(run_id)

    # -- request accounting --------------------------------------------

    def _last_block_of(self, run_id: int, block_elems: int) -> Optional[int]:
        """Index of the run's final block, or ``None`` if unknown."""
        length = self._lengths.get(run_id)
        if length is None:
            layout = self._layouts.get(run_id)
            if layout is not None:
                length = layout[2]
        if length is None or length <= 0:
            return None
        per_block = max(1, block_elems)
        return (length + per_block - 1) // per_block - 1

    def _note_random_read(self, run_id: int, requests: int, blocks: int) -> None:
        if run_id not in self._object_runs:
            return
        with self._lock:
            self._gets += requests
            self._get_blocks += blocks

    def _note_range_read(
        self, handle: _FileHandle, first_block: int, last_block: int, charged: int
    ) -> None:
        run_id = handle.run_id
        with self._lock:
            if run_id not in self._object_runs:
                return
            if not self.coalesce:
                # Strict pre-coalescing accounting: one GET streaming
                # exactly the charged blocks of this range.
                self._gets += 1
                self._get_blocks += charged
                return
            fetched = self._fetched.setdefault(run_id, set())
            needed = [
                block
                for block in range(first_block, last_block + 1)
                if block not in fetched
            ]
            if not needed:
                return
            run_last = self._last_block_of(run_id, handle.block_elems)
            for lo, hi in _contiguous_spans(needed):
                hi_ext = hi + self.readahead_blocks
                if run_last is not None:
                    hi_ext = min(hi_ext, run_last)
                hi_ext = max(hi_ext, hi)
                self._gets += 1
                self._get_blocks += hi_ext - lo + 1
                fetched.update(range(lo, hi_ext + 1))

    def _note_sequential_read(self, run_id: int, blocks: int) -> None:
        if run_id not in self._object_runs:
            return
        with self._lock:
            self._gets += 1
            self._get_blocks += blocks
            if self.coalesce and blocks > 0:
                self._fetched.setdefault(run_id, set()).update(range(blocks))

    # -- ranged byte reads ---------------------------------------------

    def _npy_layout(self, run_id: int, path: Path) -> "Tuple[int, np.dtype, int]":
        """Parse (and cache) the .npy header of a bucket object.

        The bytes are identical in both tiers (migration copies the
        file verbatim), so the cached layout survives demotion and
        promotion; it is dropped on :meth:`delete_run`.
        """
        with self._lock:
            cached = self._layouts.get(run_id)
        if cached is not None:
            return cached
        with open(path, "rb") as stream:
            version = np.lib.format.read_magic(stream)
            if version >= (2, 0):
                shape, _fortran, dtype = np.lib.format.read_array_header_2_0(
                    stream
                )
            else:
                shape, _fortran, dtype = np.lib.format.read_array_header_1_0(
                    stream
                )
            offset = stream.tell()
        length = int(shape[0]) if shape else 0
        layout = (offset, np.dtype(dtype), length)
        with self._lock:
            self._layouts[run_id] = layout
        return layout

    def _ranged_object_read(
        self, handle: _FileHandle, first_block: int, last_block: int
    ) -> np.ndarray:
        """One byte-range GET: seek+read only the requested blocks."""
        run_id = handle.run_id
        path = self._bucket / f"{self._RUN_PREFIX}{run_id}.npy"
        offset, dtype, length = self._npy_layout(run_id, path)
        per_block = max(1, handle.block_elems)
        lo = first_block * per_block
        hi = min((last_block + 1) * per_block, length)
        if lo >= hi:
            return np.empty(0, dtype=dtype)
        with open(path, "rb") as stream:
            stream.seek(offset + lo * dtype.itemsize)
            payload = stream.read((hi - lo) * dtype.itemsize)
        return np.frombuffer(payload, dtype=dtype)

    def _touch_hot(self, run_id: int) -> None:
        with self._lock:
            if run_id in self._hot_lru:
                self._hot_lru.move_to_end(run_id)

    def _read_blocks(
        self, handle: _FileHandle, first_block: int, last_block: int
    ) -> np.ndarray:
        run_id = handle.run_id
        for _attempt in range(3):
            with self._lock:
                cold = run_id in self._object_runs
            if not cold:
                self._touch_hot(run_id)
                try:
                    return super()._read_blocks(handle, first_block, last_block)
                except FileNotFoundError:
                    continue  # demoted mid-read: retry via the bucket
            try:
                return self._ranged_object_read(handle, first_block, last_block)
            except FileNotFoundError:
                continue  # promoted mid-read: retry via the hot tier
        return super()._read_blocks(handle, first_block, last_block)

    # -- BlockDevice ----------------------------------------------------

    def allocate_run(self, run_id: int, data: np.ndarray) -> _FileHandle:
        self._hot.mkdir(parents=True, exist_ok=True)
        handle = super().allocate_run(run_id, data)
        size = self._path_of(run_id).stat().st_size
        with self._lock:
            self._lengths[run_id] = int(len(data))
            self._hot_bytes[run_id] = size
            self._hot_total += size
            self._hot_lru[run_id] = None
            self._hot_lru.move_to_end(run_id)
        self._enforce_hot_capacity()
        return handle

    def place_run(self, run_id: int, level: int) -> None:
        """Age a run into the bucket once its level is cold enough.

        A run already in the bucket that gets placed back at a hot
        level is re-admitted (promoted) only if it got there via
        capacity eviction — policy-tiered runs stay in the bucket.
        """
        if run_id in self._object_runs:
            if level < self.object_tier_level:
                with self._lock:
                    evicted = run_id in self._evicted
                if evicted:
                    self._promote(run_id)
            return
        if level < self.object_tier_level:
            return
        self._migrate(run_id, eviction=False)

    def _migrate(self, run_id: int, eviction: bool) -> None:
        """Move a hot run into the bucket (atomic PUT, then unlink)."""
        with self._lock:
            handle = self._handles.get(run_id)
        hot_path = self._hot / f"{self._RUN_PREFIX}{run_id}.npy"
        if not hot_path.exists():
            with self._lock:
                # Stale residency bookkeeping would loop the eviction
                # scan forever; clear it even when there is no file.
                self._hot_total -= self._hot_bytes.pop(run_id, 0)
                self._hot_lru.pop(run_id, None)
            return
        if handle is not None:
            # Drop the hot mapping before the file moves tiers.
            with handle._lock:
                handle._mapped = None
        object_path = self._bucket / f"{self._RUN_PREFIX}{run_id}.npy"
        atomic_write_bytes(object_path, hot_path.read_bytes())
        with self._lock:
            self._puts += 1
            self._migrations += 1
            self._object_runs.add(run_id)
            if eviction:
                self._evictions += 1
                self._evicted.add(run_id)
            self._hot_total -= self._hot_bytes.pop(run_id, 0)
            self._hot_lru.pop(run_id, None)
        hot_path.unlink()
        fsync_dir(self._hot)

    def _promote(self, run_id: int) -> None:
        """Re-admit an evicted run to the hot tier (one full-object GET)."""
        object_path = self._bucket / f"{self._RUN_PREFIX}{run_id}.npy"
        if not object_path.exists():
            return
        hot_path = self._hot / f"{self._RUN_PREFIX}{run_id}.npy"
        with self._lock:
            handle = self._handles.get(run_id)
            run_last = self._last_block_of(
                run_id, handle.block_elems if handle is not None else 1
            )
            self._gets += 1
            self._get_blocks += (run_last + 1) if run_last is not None else 1
        if handle is not None:
            with handle._lock:
                handle._mapped = None
        atomic_write_bytes(hot_path, object_path.read_bytes())
        size = hot_path.stat().st_size
        with self._lock:
            self._object_runs.discard(run_id)
            self._evicted.discard(run_id)
            self._fetched.pop(run_id, None)
            self._hot_bytes[run_id] = size
            self._hot_total += size
            self._hot_lru[run_id] = None
            self._hot_lru.move_to_end(run_id)
        object_path.unlink()
        fsync_dir(self._bucket)
        self._enforce_hot_capacity()

    def _enforce_hot_capacity(self) -> None:
        """Demote LRU unpinned hot runs until the tier fits its budget."""
        if self.hot_tier_bytes is None:
            return
        while True:
            with self._lock:
                if self._hot_total <= self.hot_tier_bytes:
                    return
                victim = None
                for candidate in self._hot_lru:  # least-recent first
                    if self._pins.get(candidate, 0) > 0:
                        continue
                    if candidate in self._object_runs:
                        continue
                    victim = candidate
                    break
                if victim is None:
                    # Every hot run is pinned by a live snapshot:
                    # tolerate the overage rather than break a reader.
                    return
            self._migrate(victim, eviction=True)

    def delete_run(self, run_id: int) -> None:
        super().delete_run(run_id)
        with self._lock:
            self._object_runs.discard(run_id)
            self._evicted.discard(run_id)
            self._fetched.pop(run_id, None)
            self._layouts.pop(run_id, None)
            self._lengths.pop(run_id, None)
            self._hot_total -= self._hot_bytes.pop(run_id, 0)
            self._hot_lru.pop(run_id, None)

    def stats(self) -> BackendStats:
        with self._lock:
            object_count = len(self._object_runs)
            return BackendStats(
                gets=self._gets,
                get_blocks=self._get_blocks,
                puts=self._puts,
                lists=self._lists,
                migrations=self._migrations,
                hot_runs=len(self._handles) - object_count
                if len(self._handles) >= object_count
                else 0,
                object_runs=object_count,
                evicted_runs=self._evictions,
                hot_bytes=self._hot_total,
            )

    def simulated_seconds(self) -> float:
        with self._lock:
            model = self.latency
            return (
                self._gets * model.seconds_per_get
                + self._get_blocks * model.seconds_per_get_block
                + self._puts * model.seconds_per_put
                + self._lists * model.seconds_per_list
            )


def make_backend(
    name: str,
    directory: "str | Path | None" = None,
    object_tier_level: int = 1,
    latency: Optional[ObjectStoreLatency] = None,
    readahead_blocks: Optional[int] = None,
    coalesce: bool = True,
    hot_tier_bytes: Optional[int] = None,
) -> "SimulatedBackend | MmapFileBackend":
    """Build the backend named by ``EngineConfig.storage_backend``."""
    if name == "simulated":
        return SimulatedBackend()
    if name == "mmap":
        return MmapFileBackend(directory)
    if name == "object":
        return ObjectStoreBackend(
            directory,
            object_tier_level=object_tier_level,
            latency=latency,
            readahead_blocks=readahead_blocks,
            coalesce=coalesce,
            hot_tier_bytes=hot_tier_bytes,
        )
    raise ValueError(
        f"unknown storage backend {name!r}; expected one of {BACKEND_NAMES}"
    )


__all__ = [
    "BACKEND_NAMES",
    "BackendStats",
    "BlockDevice",
    "FILE_TIER",
    "MEMORY_TIER",
    "MmapFileBackend",
    "OBJECT_TIER",
    "ObjectStoreBackend",
    "ObjectStoreLatency",
    "RunHandle",
    "SimulatedBackend",
    "make_backend",
]
