"""Pluggable block-device backends for sorted-run storage.

`SimulatedDisk` models the *cost* of block I/O; this module supplies
the *bytes*.  A :class:`BlockDevice` owns the payload of every sorted
run and hands out :class:`RunHandle` objects that `SortedRun` reads
through.  Three implementations ship:

``SimulatedBackend``
    Today's in-memory arrays, unchanged — the deterministic default.
    Zero real I/O, zero added latency.

``MmapFileBackend``
    One real file per run under a directory, committed with the
    atomic write/fsync/rename discipline of :mod:`repro.storage.fsutil`
    and read back through ``numpy`` memory maps, so block probes touch
    the page cache instead of a resident copy.

``ObjectStoreBackend``
    An S3-like emulation over a local bucket directory.  Runs are born
    in a hot file tier; the warehouse ages cold levels into the bucket
    (:meth:`place_run`), after which every *charged* block read becomes
    a GET request with per-request latency and GET/PUT/LIST counters.

The contract that keeps the repo's equivalence moat intact: backends
never change *what* is charged — `DiskStats` block counters are driven
by the existing charge paths and stay bit-identical across all three.
Backends only add request-level accounting (and real bytes) on top:
`SortedRun` calls :meth:`RunHandle.note_random_read` /
:meth:`RunHandle.note_sequential_read` exactly when blocks were
actually charged, so a shared-cache or per-query-cache hit never turns
into an object GET.
"""

from __future__ import annotations

import io
import shutil
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Protocol, runtime_checkable

import numpy as np

from .fsutil import atomic_write_bytes, fsync_dir, remove_stale_stages

#: recognised values of ``EngineConfig.storage_backend``.
BACKEND_NAMES = ("simulated", "mmap", "object")

#: tier labels reported by :attr:`RunHandle.tier`.
MEMORY_TIER = "memory"
FILE_TIER = "file"
OBJECT_TIER = "object"


@dataclass(frozen=True)
class ObjectStoreLatency:
    """Per-request latency model of the emulated object store.

    Request setup dominates object-store reads, so latency is charged
    per GET/PUT plus a small per-block streaming term — this is what
    makes ranged GETs (one request, many blocks) worth planning for.
    """

    seconds_per_get: float = 5e-3
    seconds_per_get_block: float = 1e-4
    seconds_per_put: float = 1e-2
    seconds_per_list: float = 2e-3

    def __post_init__(self) -> None:
        for field in (
            "seconds_per_get",
            "seconds_per_get_block",
            "seconds_per_put",
            "seconds_per_list",
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")


@dataclass(frozen=True)
class BackendStats:
    """Snapshot of request-level backend accounting.

    All-zero for the simulated and mmap backends; the object backend
    counts every request against the bucket.  ``get_blocks`` is the
    total blocks streamed across GETs, so ``get_blocks / gets`` is the
    mean ranged-GET width the prefetcher achieved.
    """

    gets: int = 0
    get_blocks: int = 0
    puts: int = 0
    lists: int = 0
    migrations: int = 0
    hot_runs: int = 0
    object_runs: int = 0

    def delta_since(self, earlier: "BackendStats") -> "BackendStats":
        """Counter deltas relative to an ``earlier`` snapshot."""
        return BackendStats(
            gets=self.gets - earlier.gets,
            get_blocks=self.get_blocks - earlier.get_blocks,
            puts=self.puts - earlier.puts,
            lists=self.lists - earlier.lists,
            migrations=self.migrations - earlier.migrations,
            hot_runs=self.hot_runs,
            object_runs=self.object_runs,
        )


@runtime_checkable
class RunHandle(Protocol):
    """Read path of one sorted run inside a backend."""

    run_id: int

    @property
    def tier(self) -> str:
        """Current tier label (``memory`` / ``file`` / ``object``)."""

    @property
    def data(self) -> np.ndarray:
        """The run's payload as a read-only (possibly mapped) array."""

    def note_random_read(self, requests: int, blocks: int) -> None:
        """Record ``requests`` random reads totalling ``blocks`` charged blocks."""

    def note_sequential_read(self, blocks: int) -> None:
        """Record one sequential pass over ``blocks`` charged blocks."""


@runtime_checkable
class BlockDevice(Protocol):
    """What a storage backend must provide to the engine.

    The engine allocates a run per sorted array, routes every charged
    read through the run's handle, asks :meth:`place_run` to apply the
    tiering policy when the warehouse (re)levels a run, and deletes
    runs as compaction retires them.  ``fsync`` hardens any buffered
    state; ``close`` releases resources (and removes any owned
    temporary directory).
    """

    name: str

    def allocate_run(self, run_id: int, data: np.ndarray) -> RunHandle:
        """Persist ``data`` as run ``run_id`` and return its handle."""

    def delete_run(self, run_id: int) -> None:
        """Release run ``run_id`` (pinned handles keep reading)."""

    def place_run(self, run_id: int, level: int) -> None:
        """Apply the tiering policy for a run now living at ``level``."""

    def fsync(self) -> None:
        """Harden all buffered backend state."""

    def stats(self) -> BackendStats:
        """Snapshot request-level counters."""

    def simulated_seconds(self) -> float:
        """Modeled request latency accrued so far, in seconds."""

    def close(self) -> None:
        """Release resources; owned temporary directories are removed."""


def _as_npy_bytes(data: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, data, allow_pickle=False)
    return buffer.getvalue()


class _SimulatedHandle:
    """Handle over a resident in-memory array (no request accounting)."""

    __slots__ = ("run_id", "_data")

    def __init__(self, run_id: int, data: np.ndarray) -> None:
        self.run_id = run_id
        self._data = data

    @property
    def tier(self) -> str:
        return MEMORY_TIER

    @property
    def data(self) -> np.ndarray:
        return self._data

    def note_random_read(self, requests: int, blocks: int) -> None:
        return None

    def note_sequential_read(self, blocks: int) -> None:
        return None


class SimulatedBackend:
    """The deterministic default: runs live as in-memory arrays.

    Behaviourally identical to the pre-backend engine — allocation
    copies the array once (as `SortedRun` always did) and reads return
    views of it.  Request counters stay zero.
    """

    name = "simulated"

    def __init__(self) -> None:
        self._runs: Dict[int, np.ndarray] = {}
        self._lock = threading.Lock()

    def allocate_run(self, run_id: int, data: np.ndarray) -> _SimulatedHandle:
        stored = np.array(data, copy=True)
        stored.setflags(write=False)
        with self._lock:
            self._runs[run_id] = stored
        return _SimulatedHandle(run_id, stored)

    def delete_run(self, run_id: int) -> None:
        # Handles hold their own reference, so pinned snapshot readers
        # keep working after the backend forgets the run.
        with self._lock:
            self._runs.pop(run_id, None)

    def place_run(self, run_id: int, level: int) -> None:
        return None

    def fsync(self) -> None:
        return None

    def stats(self) -> BackendStats:
        with self._lock:
            return BackendStats(hot_runs=len(self._runs))

    def simulated_seconds(self) -> float:
        return 0.0

    def close(self) -> None:
        with self._lock:
            self._runs.clear()


class _FileHandle:
    """Lazy mmap view of a run file; pins bytes in RAM once deleted."""

    __slots__ = ("run_id", "_backend", "_path", "_mapped", "_resident", "_lock")

    def __init__(self, backend: "MmapFileBackend", run_id: int, path: Path) -> None:
        self.run_id = run_id
        self._backend = backend
        self._path = path
        self._mapped: Optional[np.ndarray] = None
        self._resident: Optional[np.ndarray] = None
        self._lock = threading.Lock()

    @property
    def tier(self) -> str:
        if self._resident is not None:
            return MEMORY_TIER
        return self._backend._tier_of(self.run_id)

    @property
    def data(self) -> np.ndarray:
        with self._lock:
            if self._resident is not None:
                return self._resident
            if self._mapped is None:
                self._mapped = np.load(self._backend._path_of(self.run_id), mmap_mode="r")
            return self._mapped

    def _materialize(self) -> None:
        """Copy the mapped bytes into RAM before the file disappears."""
        with self._lock:
            if self._resident is None:
                source = self._mapped
                if source is None:
                    try:
                        source = np.load(
                            self._backend._path_of(self.run_id), mmap_mode="r"
                        )
                    except (OSError, ValueError):
                        source = None
                if source is not None:
                    resident = np.array(source, copy=True)
                    resident.setflags(write=False)
                    self._resident = resident
                self._mapped = None

    def note_random_read(self, requests: int, blocks: int) -> None:
        self._backend._note_random_read(self.run_id, requests, blocks)

    def note_sequential_read(self, blocks: int) -> None:
        self._backend._note_sequential_read(self.run_id, blocks)


class MmapFileBackend:
    """One ``run-<id>.npy`` file per sorted run, read through mmap.

    Files commit via :func:`repro.storage.fsutil.atomic_write_bytes`,
    so a crash leaves either the full previous state or the full new
    run, never a torn file.  :meth:`fsck` (run at startup) removes
    staging orphans left by a crash between write and rename.
    """

    name = "mmap"
    _RUN_PREFIX = "run-"

    def __init__(self, directory: "str | Path | None" = None) -> None:
        if directory is None:
            self._directory = Path(tempfile.mkdtemp(prefix="repro-mmap-"))
            self._owns_directory = True
        else:
            self._directory = Path(directory)
            self._directory.mkdir(parents=True, exist_ok=True)
            self._owns_directory = False
        self._handles: Dict[int, _FileHandle] = {}
        self._lock = threading.Lock()
        self.fsck()

    # -- layout ---------------------------------------------------------

    @property
    def directory(self) -> Path:
        """Root directory holding the run files."""
        return self._directory

    def _path_of(self, run_id: int) -> Path:
        return self._directory / f"{self._RUN_PREFIX}{run_id}.npy"

    def _tier_of(self, run_id: int) -> str:
        return FILE_TIER

    def fsck(self) -> "list[Path]":
        """Remove crash leftovers (staging orphans); return what was removed."""
        return remove_stale_stages(self._directory)

    # Request accounting is an object-store concern; the file tier has
    # no per-request cost (its reads are page-cache hits via mmap).
    def _note_random_read(self, run_id: int, requests: int, blocks: int) -> None:
        return None

    def _note_sequential_read(self, run_id: int, blocks: int) -> None:
        return None

    # -- BlockDevice ----------------------------------------------------

    def allocate_run(self, run_id: int, data: np.ndarray) -> _FileHandle:
        atomic_write_bytes(self._path_of(run_id), _as_npy_bytes(data))
        handle = _FileHandle(self, run_id, self._path_of(run_id))
        with self._lock:
            self._handles[run_id] = handle
        return handle

    def delete_run(self, run_id: int) -> None:
        with self._lock:
            handle = self._handles.pop(run_id, None)
        if handle is not None:
            handle._materialize()
        path = self._path_of(run_id)
        if path.exists():
            path.unlink()
            fsync_dir(self._directory)

    def place_run(self, run_id: int, level: int) -> None:
        return None

    def fsync(self) -> None:
        fsync_dir(self._directory)

    def stats(self) -> BackendStats:
        with self._lock:
            return BackendStats(hot_runs=len(self._handles))

    def simulated_seconds(self) -> float:
        return 0.0

    def close(self) -> None:
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            with handle._lock:
                handle._mapped = None
        if self._owns_directory:
            shutil.rmtree(self._directory, ignore_errors=True)


class ObjectStoreBackend(MmapFileBackend):
    """S3-like tiered store: hot run files plus a local bucket directory.

    Runs are allocated into ``hot/`` exactly like the mmap backend.
    When the warehouse places a run at a level at or beyond
    ``object_tier_level``, the run migrates into ``objects/`` (one
    atomic PUT) and its hot file is dropped.  From then on every
    *charged* read of the run is an object request: one GET per random
    probe, one ranged GET per contiguous prefetched range, with
    modeled latency from :class:`ObjectStoreLatency` folded into
    ``SimulatedDisk.simulated_seconds``.
    """

    name = "object"

    def __init__(
        self,
        directory: "str | Path | None" = None,
        object_tier_level: int = 1,
        latency: Optional[ObjectStoreLatency] = None,
    ) -> None:
        if object_tier_level < 0:
            raise ValueError("object_tier_level must be >= 0")
        self.object_tier_level = object_tier_level
        self.latency = latency if latency is not None else ObjectStoreLatency()
        self._object_runs: "set[int]" = set()
        self._gets = 0
        self._get_blocks = 0
        self._puts = 0
        self._lists = 0
        self._migrations = 0
        super().__init__(directory)
        self._bucket.mkdir(parents=True, exist_ok=True)
        self._list_bucket()

    # -- layout ---------------------------------------------------------

    @property
    def _hot(self) -> Path:
        return self._directory / "hot"

    @property
    def _bucket(self) -> Path:
        return self._directory / "objects"

    def _path_of(self, run_id: int) -> Path:
        if run_id in self._object_runs:
            return self._bucket / f"{self._RUN_PREFIX}{run_id}.npy"
        return self._hot / f"{self._RUN_PREFIX}{run_id}.npy"

    def _tier_of(self, run_id: int) -> str:
        return OBJECT_TIER if run_id in self._object_runs else FILE_TIER

    def fsck(self) -> "list[Path]":
        """Remove crash leftovers in both tiers; counts one LIST per scan."""
        self._hot.mkdir(parents=True, exist_ok=True)
        removed = remove_stale_stages(self._hot)
        removed += remove_stale_stages(self._bucket)
        return removed

    def _list_bucket(self) -> None:
        with self._lock:
            self._lists += 1
            for entry in sorted(self._bucket.glob(f"{self._RUN_PREFIX}*.npy")):
                try:
                    run_id = int(entry.stem[len(self._RUN_PREFIX):])
                except ValueError:
                    continue
                self._object_runs.add(run_id)

    # -- request accounting --------------------------------------------

    def _note_random_read(self, run_id: int, requests: int, blocks: int) -> None:
        if run_id not in self._object_runs:
            return
        with self._lock:
            self._gets += requests
            self._get_blocks += blocks

    def _note_sequential_read(self, run_id: int, blocks: int) -> None:
        if run_id not in self._object_runs:
            return
        with self._lock:
            self._gets += 1
            self._get_blocks += blocks

    # -- BlockDevice ----------------------------------------------------

    def allocate_run(self, run_id: int, data: np.ndarray) -> _FileHandle:
        self._hot.mkdir(parents=True, exist_ok=True)
        return super().allocate_run(run_id, data)

    def place_run(self, run_id: int, level: int) -> None:
        """Age a run into the bucket once its level is cold enough."""
        if level < self.object_tier_level or run_id in self._object_runs:
            return
        with self._lock:
            handle = self._handles.get(run_id)
        hot_path = self._hot / f"{self._RUN_PREFIX}{run_id}.npy"
        if not hot_path.exists():
            return
        if handle is not None:
            # Drop the hot mapping before the file moves tiers.
            with handle._lock:
                handle._mapped = None
        object_path = self._bucket / f"{self._RUN_PREFIX}{run_id}.npy"
        atomic_write_bytes(object_path, hot_path.read_bytes())
        with self._lock:
            self._puts += 1
            self._migrations += 1
            self._object_runs.add(run_id)
        hot_path.unlink()
        fsync_dir(self._hot)

    def delete_run(self, run_id: int) -> None:
        super().delete_run(run_id)
        with self._lock:
            self._object_runs.discard(run_id)

    def stats(self) -> BackendStats:
        with self._lock:
            object_count = len(self._object_runs)
            return BackendStats(
                gets=self._gets,
                get_blocks=self._get_blocks,
                puts=self._puts,
                lists=self._lists,
                migrations=self._migrations,
                hot_runs=len(self._handles) - object_count
                if len(self._handles) >= object_count
                else 0,
                object_runs=object_count,
            )

    def simulated_seconds(self) -> float:
        with self._lock:
            model = self.latency
            return (
                self._gets * model.seconds_per_get
                + self._get_blocks * model.seconds_per_get_block
                + self._puts * model.seconds_per_put
                + self._lists * model.seconds_per_list
            )


def make_backend(
    name: str,
    directory: "str | Path | None" = None,
    object_tier_level: int = 1,
    latency: Optional[ObjectStoreLatency] = None,
) -> "SimulatedBackend | MmapFileBackend":
    """Build the backend named by ``EngineConfig.storage_backend``."""
    if name == "simulated":
        return SimulatedBackend()
    if name == "mmap":
        return MmapFileBackend(directory)
    if name == "object":
        return ObjectStoreBackend(
            directory, object_tier_level=object_tier_level, latency=latency
        )
    raise ValueError(
        f"unknown storage backend {name!r}; expected one of {BACKEND_NAMES}"
    )


__all__ = [
    "BACKEND_NAMES",
    "BackendStats",
    "BlockDevice",
    "FILE_TIER",
    "MEMORY_TIER",
    "MmapFileBackend",
    "OBJECT_TIER",
    "ObjectStoreBackend",
    "ObjectStoreLatency",
    "RunHandle",
    "SimulatedBackend",
    "make_backend",
]
