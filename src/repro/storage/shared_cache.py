"""The warehouse-resident shared block cache (cross-query tier).

The paper's Section 2.4 pins blocks *per query*: a query never pays
twice for the same (run, block) pair, and :class:`~repro.storage.cache.
BlockCache` implements exactly that accounting before being thrown away
with the query.  Under the concurrent serving layer that is wasteful:
32 clients asking for the same handful of quantiles re-read the same
upper index blocks and the same residual ranges around popular phi
values, each paying full simulated random-read latency.

:class:`SharedBlockCache` is the tier between per-query caches and the
:class:`~repro.storage.disk.SimulatedDisk`: a capacity-bounded,
process-wide (one per engine) cache of resident (run, block) pairs.  A
per-query :class:`BlockCache` consults it read-through: the first touch
of a block by a query is **charged** only when the shared tier misses;
a shared hit is free and counted separately, so the paper's accounting
("blocks charged per query") becomes a cold/warm quantity the cache
ablation measures instead of a constant.

Design notes
------------

* **2Q eviction.**  Residency is managed by a simplified 2Q policy
  (Johnson & Shasha): new blocks enter a FIFO *probation* queue sized
  at a quarter of the capacity; a block re-referenced while on
  probation is promoted to the *protected* LRU segment.  One-shot
  scans (residual range fetches) therefore wash through probation
  without evicting the hot upper index blocks that every binary search
  touches.
* **Single-flight fetch coalescing (default).**  Concurrent queries
  missing on the same block dedupe into one in-flight fetch: the
  first racer claims the block in a flight registry (under the
  structure lock), charges it, and resolves the flight; everyone else
  waits on the flight and counts a coalesced hit.  Each block is
  still charged exactly once — identical aggregate accounting to the
  serialized mode below — but the backend sees one request per
  distinct range instead of one per racing client, and waiters never
  serialize behind the charging thread's backend latency.  A failed
  fetch delivers its exception to every waiter and leaves the blocks
  non-resident (nothing is poisoned; the next probe retries).
* **Per-run sharded locks (``single_flight=False``).**  Each run has
  its own shard lock that serializes the check-miss-charge-insert
  sequence for that run, so a resident block is charged exactly once
  no matter how many queries race for it — which is what keeps
  *aggregate* charge counts deterministic under a fixed seed
  (per-query attribution of a charge may move between racing queries;
  the total cannot).  Bookkeeping (queues, membership, stats) lives
  under one small structure lock; the lock order is always shard ->
  structure, never the reverse.
* **Epoch-aware invalidation.**  Compaction merges and background
  adoptions retire runs inside the layout-lock critical sections that
  bump the :class:`~repro.core.epoch.EpochRegistry`; the store's
  ``on_retire`` hook calls :meth:`invalidate_run` from those same
  sections.  Retired run ids are remembered and refused re-insertion:
  run ids are globally unique (never recycled), so a pinned
  :class:`~repro.core.epoch.SnapshotHandle` that keeps probing a
  pre-merge run simply misses (charged, correct, deterministic) and
  can never be served a block belonging to a different run's data.
  Invalidation also notifies registered *follower* per-query caches so
  their per-run lock maps and seen-sets are pruned (see
  :meth:`register_follower`).
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Set, Tuple


@dataclass(frozen=True)
class SharedCacheStats:
    """One consistent reading of a :class:`SharedBlockCache`'s counters."""

    #: configured capacity in blocks.
    capacity_blocks: int
    #: blocks currently resident.
    resident_blocks: int
    #: lookups answered from the cache (no disk charge).
    hits: int
    #: lookups that went to the (simulated) disk.
    misses: int
    #: resident blocks evicted by the 2Q policy.
    evictions: int
    #: blocks dropped because their run retired.
    invalidated_blocks: int
    #: runs invalidated (compaction victims and adoptions).
    invalidated_runs: int
    #: blocks inserted by explicit prefetch/warm range reads.
    prefetched_blocks: int
    #: lookups that joined another query's in-flight fetch instead of
    #: issuing their own (single-flight coalescing).  Each coalesced
    #: wait is a backend request saved; ``coalesced_waits / misses`` is
    #: the dedup ratio the cold-read ablation reports.
    coalesced_waits: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without a disk charge."""
        total = self.lookups
        return self.hits / total if total else 0.0


class _Shard:
    """Per-run lock plus a liveness flag (dropped on invalidation)."""

    __slots__ = ("lock", "retired")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.retired = False


class _Flight:
    """One in-flight fetch of a (run, block) pair (single-flight mode).

    The claiming thread charges the fetch, then resolves the flight;
    every other thread that raced on the block waits on ``done`` and
    shares the outcome.  ``error`` carries a failed fetch's exception
    to all waiters — the block stays non-resident, so the next probe
    retries instead of reading poisoned state.
    """

    __slots__ = ("done", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.error: "BaseException | None" = None


class SharedBlockCache:
    """Capacity-bounded cross-query cache of (run, block) residency.

    Parameters
    ----------
    capacity_blocks:
        Maximum number of resident blocks (>= 1).  Engines create this
        tier only when ``EngineConfig.shared_cache_blocks > 0``; zero
        means "no shared tier", which reproduces the historical
        per-query accounting exactly.
    single_flight:
        When ``True`` (default), concurrent queries missing on the
        same block coalesce into one in-flight fetch: the first racer
        claims and charges the block, everyone else waits on the
        flight and counts a (coalesced) hit.  Aggregate charge totals
        are identical to the shard-lock serialization of
        ``single_flight=False`` — each block is charged exactly once
        either way — but waiters no longer serialize behind the
        charging thread's backend request, and the backend sees one
        request per distinct range instead of one per racer.
    """

    def __init__(self, capacity_blocks: int, single_flight: bool = True) -> None:
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be >= 1")
        self.capacity_blocks = capacity_blocks
        self.single_flight = single_flight
        self._probation_target = max(1, capacity_blocks // 4)
        # (run_id, block) -> None, in arrival / recency order.
        self._probation: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self._protected: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self._by_run: Dict[int, Set[int]] = {}
        self._retired_runs: Set[int] = set()
        self._shards: Dict[int, _Shard] = {}
        self._shards_guard = threading.Lock()
        self._lock = threading.Lock()  # queues + membership + stats
        self._flights: "Dict[Tuple[int, int], _Flight]" = {}
        self._followers: "weakref.WeakSet" = weakref.WeakSet()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidated_blocks = 0
        self._invalidated_runs = 0
        self._prefetched_blocks = 0
        self._coalesced_waits = 0

    # ------------------------------------------------------------------
    # Shards
    # ------------------------------------------------------------------

    def _shard(self, run_id: int) -> _Shard:
        shard = self._shards.get(run_id)
        if shard is None:
            with self._shards_guard:
                shard = self._shards.setdefault(run_id, _Shard())
        return shard

    # ------------------------------------------------------------------
    # Residency bookkeeping (all under self._lock)
    # ------------------------------------------------------------------

    def _resident(self, key: Tuple[int, int]) -> bool:
        return key in self._probation or key in self._protected

    def _promote(self, key: Tuple[int, int]) -> None:
        """Re-reference: probation -> protected, or refresh LRU order."""
        if key in self._protected:
            self._protected.move_to_end(key)
        elif key in self._probation:
            del self._probation[key]
            self._protected[key] = None

    def _insert(self, key: Tuple[int, int]) -> None:
        self._probation[key] = None
        self._by_run.setdefault(key[0], set()).add(key[1])
        self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        while len(self._probation) + len(self._protected) > self.capacity_blocks:
            # 2Q: drain an over-full probation queue first, else the
            # protected segment's LRU tail.
            if self._probation and (
                len(self._probation) > self._probation_target
                or not self._protected
            ):
                victim, _ = self._probation.popitem(last=False)
            else:
                victim, _ = self._protected.popitem(last=False)
            run_blocks = self._by_run.get(victim[0])
            if run_blocks is not None:
                run_blocks.discard(victim[1])
                if not run_blocks:
                    self._by_run.pop(victim[0], None)
            self._evictions += 1

    # ------------------------------------------------------------------
    # The read-through protocol (called by per-query BlockCache)
    # ------------------------------------------------------------------

    def fetch_block(
        self, run_id: int, block: int, charge: Callable[[int], None]
    ) -> bool:
        """Look up one block; charge the disk on a miss.

        Returns ``True`` on a hit (no charge).  On a miss, ``charge(1)``
        runs before the block is recorded resident, so an injected
        :class:`~repro.faults.errors.DiskFault` leaves the block
        non-resident (a failed read must not look cached) and a
        resident block can never have been charged twice by racing
        queries (shard-lock serialization or single-flight claiming,
        depending on mode).
        """
        if self.single_flight:
            hits, _misses = self.fetch_range(run_id, block, block, charge)
            return hits > 0
        key = (run_id, block)
        shard = self._shard(run_id)
        with shard.lock:
            with self._lock:
                if self._resident(key):
                    self._promote(key)
                    self._hits += 1
                    return True
                retired = run_id in self._retired_runs
            charge(1)
            with self._lock:
                self._misses += 1
                if not retired:
                    self._insert(key)
            return False

    def fetch_range(
        self,
        run_id: int,
        first_block: int,
        last_block: int,
        charge: Callable[[int], None],
        prefetch: bool = False,
    ) -> Tuple[int, int]:
        """Look up a contiguous block range; one charge for all misses.

        Returns ``(hits, misses)``.  The missing blocks of the range are
        charged in a **single** ``charge(n)`` call (one ranged random
        read per partition, the satellite accounting requirement) and
        become resident together; blocks already resident are promoted.

        In single-flight mode blocks already being fetched by another
        thread are *joined* rather than re-charged: the caller waits
        for the owning fetch to resolve and counts them as hits (they
        are, in aggregate — the old shard-lock path would have blocked
        on the lock and then hit).  A failed fetch propagates its
        exception to every waiter and leaves the blocks non-resident.
        """
        if self.single_flight:
            return self._fetch_range_single_flight(
                run_id, first_block, last_block, charge, prefetch
            )
        shard = self._shard(run_id)
        with shard.lock:
            with self._lock:
                missing: List[int] = []
                hits = 0
                for block in range(first_block, last_block + 1):
                    key = (run_id, block)
                    if self._resident(key):
                        self._promote(key)
                        hits += 1
                    else:
                        missing.append(block)
                self._hits += hits
                retired = run_id in self._retired_runs
            if missing:
                charge(len(missing))
                with self._lock:
                    self._misses += len(missing)
                    if prefetch:
                        self._prefetched_blocks += len(missing)
                    if not retired:
                        for block in missing:
                            self._insert((run_id, block))
            return hits, len(missing)

    def _fetch_range_single_flight(
        self,
        run_id: int,
        first_block: int,
        last_block: int,
        charge: Callable[[int], None],
        prefetch: bool,
    ) -> Tuple[int, int]:
        """Range lookup with in-flight fetch coalescing.

        Deadlock-free by construction: a thread always resolves the
        flights it claimed *before* waiting on anyone else's, so every
        flight is resolved by an owner that never waits on it
        transitively.  Blocks of retired runs bypass the registry
        entirely (charged per caller, never inserted) — exactly the
        old semantics, where retired blocks are never resident.
        """
        hits = 0
        mine: List[int] = []
        theirs: List[_Flight] = []
        with self._lock:
            retired = run_id in self._retired_runs
            for block in range(first_block, last_block + 1):
                key = (run_id, block)
                if self._resident(key):
                    self._promote(key)
                    hits += 1
                    continue
                flight = self._flights.get(key) if not retired else None
                if flight is not None:
                    theirs.append(flight)
                else:
                    if not retired:
                        self._flights[key] = _Flight()
                    mine.append(block)
            self._hits += hits
        if mine:
            try:
                charge(len(mine))
            except BaseException as exc:
                with self._lock:
                    for block in mine:
                        flight = self._flights.pop((run_id, block), None)
                        if flight is not None:
                            flight.error = exc
                            flight.done.set()
                raise
            with self._lock:
                self._misses += len(mine)
                if prefetch:
                    self._prefetched_blocks += len(mine)
                # Re-check retirement at insert time: the run may have
                # retired while the fetch was in flight, and residency
                # must never outlive the run it describes.
                still_live = run_id not in self._retired_runs
                for block in mine:
                    if still_live:
                        self._insert((run_id, block))
                    flight = self._flights.pop((run_id, block), None)
                    if flight is not None:
                        flight.error = None
                        flight.done.set()
        if theirs:
            error: "BaseException | None" = None
            for flight in theirs:
                flight.done.wait()
                if flight.error is not None and error is None:
                    error = flight.error
            with self._lock:
                self._coalesced_waits += len(theirs)
                if error is None:
                    self._hits += len(theirs)
            if error is not None:
                raise error
            hits += len(theirs)
        return hits, len(mine)

    def contains(self, run_id: int, block: int) -> bool:
        """Whether a block is currently resident (introspection only)."""
        with self._lock:
            return self._resident((run_id, block))

    # ------------------------------------------------------------------
    # Epoch-aware invalidation
    # ------------------------------------------------------------------

    def register_follower(self, cache: object) -> None:
        """Register a layout-following per-query cache for pruning.

        A *follower* is a long-lived :class:`~repro.storage.cache.
        BlockCache` (e.g. the serving layer's epoch-warming cache) that
        is **not** bound to a pinned partition set: when a run retires,
        the follower's per-run lock and seen-set for it are dropped via
        ``drop_run``.  Per-query caches bound to a pinned snapshot must
        NOT follow — their seen-sets implement the paper's per-query
        accounting for runs that stay probe-able through the pin.
        References are weak; a dead follower is skipped.
        """
        self._followers.add(cache)

    def invalidate_run(self, run_id: int) -> int:
        """Drop every resident block of a retired run; refuse re-inserts.

        Called from the store's layout-lock critical sections (the same
        ones that bump the epoch registry), so residency can never
        outlive the run it describes.  Returns the number of blocks
        dropped.  Idempotent per run.
        """
        shard = self._shard(run_id)
        with shard.lock:
            shard.retired = True
            with self._lock:
                if run_id in self._retired_runs:
                    return 0
                self._retired_runs.add(run_id)
                self._invalidated_runs += 1
                blocks = self._by_run.pop(run_id, set())
                for block in blocks:
                    self._probation.pop((run_id, block), None)
                    self._protected.pop((run_id, block), None)
                self._invalidated_blocks += len(blocks)
                followers = list(self._followers)
        # Prune the shard map itself (the run never comes back) and
        # notify followers outside every cache lock: a follower's
        # drop_run takes its own per-run locks, and holding ours across
        # that call would invert the shard -> structure order.
        with self._shards_guard:
            self._shards.pop(run_id, None)
        for follower in followers:
            follower.drop_run(run_id)
        return len(blocks)

    def invalidate_runs(self, run_ids: Iterable[int]) -> int:
        """Invalidate several retired runs; returns blocks dropped."""
        return sum(self.invalidate_run(run_id) for run_id in run_ids)

    def is_retired(self, run_id: int) -> bool:
        """Whether a run has been invalidated."""
        with self._lock:
            return run_id in self._retired_runs

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def resident_blocks(self) -> int:
        """Blocks currently resident."""
        with self._lock:
            return len(self._probation) + len(self._protected)

    def stats(self) -> SharedCacheStats:
        """Snapshot every counter atomically."""
        with self._lock:
            return SharedCacheStats(
                capacity_blocks=self.capacity_blocks,
                resident_blocks=len(self._probation) + len(self._protected),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidated_blocks=self._invalidated_blocks,
                invalidated_runs=self._invalidated_runs,
                prefetched_blocks=self._prefetched_blocks,
                coalesced_waits=self._coalesced_waits,
            )

    def clear(self) -> None:
        """Drop every resident block (keeps counters and retired set)."""
        with self._lock:
            self._probation.clear()
            self._protected.clear()
            self._by_run.clear()


def shard_count(cache: SharedBlockCache) -> int:
    """Number of per-run shards currently allocated (test hook)."""
    with cache._shards_guard:
        return len(cache._shards)
