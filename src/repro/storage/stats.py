"""I/O accounting for the simulated block device.

The paper's primary performance metric is the *number of disk accesses*
(block reads and writes), split into sequential I/O (loading, sorting,
merging partitions — Lemma 6) and random I/O (query-time binary-search
probes — Lemma 7).  Every storage-layer operation in this package reports
its cost through an :class:`IoCounters` instance, and a
:class:`DiskLatencyModel` converts the counts into simulated seconds so
benchmarks can report a "time" axis comparable in shape to the paper's
wall-clock figures.

Thread safety: :class:`DiskStats` serializes every ``record_*`` call
behind a lock, so the parallel query executor (``repro.query``), the
background ingest archiver (``repro.ingest``) and callers driving one
engine from several threads never lose counts to a torn ``+=``.  The
*phase* a charge is attributed to is tracked per thread: a query thread
running in the ``"query"`` phase and the archiver thread running in the
``"merge"`` phase each keep their own attribution, so the per-phase
split stays exact under concurrency.  Snapshots
(:meth:`IoCounters.snapshot`) are taken on the coordinating thread
between fan-outs, not concurrently with them; for concurrent-safe
per-operation accounting use :meth:`DiskStats.capture`, which tallies
only the charges made by the capturing thread.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass, field
from typing import Iterator, List

from contextlib import contextmanager

PHASES = ("load", "sort", "merge", "query")


@dataclass
class IoCounters:
    """Mutable tally of block-granular disk operations.

    Attributes
    ----------
    sequential_reads:
        Blocks read as part of a sequential scan (sort / merge input).
    sequential_writes:
        Blocks written sequentially (loading a batch, writing a merged
        partition).
    random_reads:
        Blocks read at arbitrary offsets (query-time probes).
    """

    sequential_reads: int = 0
    sequential_writes: int = 0
    random_reads: int = 0

    @property
    def total(self) -> int:
        """Total number of disk accesses of any kind."""
        return self.sequential_reads + self.sequential_writes + self.random_reads

    @property
    def sequential(self) -> int:
        """Total sequential accesses (reads plus writes)."""
        return self.sequential_reads + self.sequential_writes

    def add(self, other: "IoCounters") -> None:
        """Accumulate another tally into this one."""
        self.sequential_reads += other.sequential_reads
        self.sequential_writes += other.sequential_writes
        self.random_reads += other.random_reads

    def snapshot(self) -> "IoCounters":
        """Return an independent copy of the current counts."""
        return IoCounters(
            sequential_reads=self.sequential_reads,
            sequential_writes=self.sequential_writes,
            random_reads=self.random_reads,
        )

    def delta_since(self, earlier: "IoCounters") -> "IoCounters":
        """Return the counts accumulated since ``earlier`` was snapshotted."""
        return IoCounters(
            sequential_reads=self.sequential_reads - earlier.sequential_reads,
            sequential_writes=self.sequential_writes - earlier.sequential_writes,
            random_reads=self.random_reads - earlier.random_reads,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.sequential_reads = 0
        self.sequential_writes = 0
        self.random_reads = 0


@dataclass(frozen=True)
class DiskLatencyModel:
    """Converts I/O counts into simulated seconds.

    The paper's Section 2.4 example assumes "a fast hard disk can access
    1 block per millisecond"; sequential transfers on the same class of
    disk are roughly an order of magnitude cheaper per block, which is
    the default here.
    """

    seconds_per_sequential_block: float = 1e-4
    seconds_per_random_block: float = 1e-3

    def seconds(self, counters: IoCounters) -> float:
        """Simulated seconds spent on the accesses in ``counters``."""
        return (
            counters.sequential * self.seconds_per_sequential_block
            + counters.random_reads * self.seconds_per_random_block
        )


class PhaseTally:
    """Per-phase I/O tally filled in by :meth:`DiskStats.capture`.

    One :class:`IoCounters` per maintenance phase plus a grand total —
    the same shape as :class:`DiskStats` itself, but private to the
    capturing thread, so concurrent activity on other threads never
    leaks into it.
    """

    def __init__(self) -> None:
        self.total = IoCounters()
        self.by_phase = {phase: IoCounters() for phase in PHASES}

    def phase(self, phase: str) -> IoCounters:
        """The tally of one phase."""
        return self.by_phase[phase]

    def add(self, other: "PhaseTally") -> None:
        """Accumulate another capture into this one."""
        self.total.add(other.total)
        for phase in PHASES:
            self.by_phase[phase].add(other.by_phase[phase])


@dataclass
class DiskStats:
    """Aggregated statistics for one simulated disk.

    Keeps both running totals and per-phase sub-tallies that the update
    benchmarks (Fig. 6 and Fig. 7) break out: load, sort, merge.
    """

    counters: IoCounters = field(default_factory=IoCounters)
    load: IoCounters = field(default_factory=IoCounters)
    sort: IoCounters = field(default_factory=IoCounters)
    merge: IoCounters = field(default_factory=IoCounters)
    query: IoCounters = field(default_factory=IoCounters)

    _local: threading.local = field(
        default_factory=threading.local, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set_phase(self, phase: str) -> None:
        """Direct this thread's subsequent accesses to a phase sub-tally.

        ``phase`` must be one of ``"load"``, ``"sort"``, ``"merge"`` or
        ``"query"``.  The phase is per-thread (threads that never call
        ``set_phase`` charge to ``"load"``): the archiver thread can be
        mid-merge while query threads attribute their own charges to
        ``"query"``, and neither misdirects the other's counts.
        """
        if phase not in PHASES:
            raise ValueError(f"unknown I/O phase: {phase!r}")
        self._local.phase = phase

    @property
    def current_phase(self) -> str:
        """The phase this thread currently charges to."""
        return getattr(self._local, "phase", "load")

    @contextmanager
    def phase_scope(self, phase: str) -> Iterator[None]:
        """Run a block under ``phase``, restoring this thread's phase after.

        Lets a query thread that steals staging work (see
        ``repro.ingest``) charge the sort/write correctly without
        clobbering its own ``"query"`` attribution.
        """
        previous = self.current_phase
        self.set_phase(phase)
        try:
            yield
        finally:
            self.set_phase(previous)

    def _bucket(self) -> IoCounters:
        return getattr(self, self.current_phase)

    def _captures(self) -> "List[PhaseTally]":
        stack = getattr(self._local, "captures", None)
        if stack is None:
            stack = []
            self._local.captures = stack
        return stack

    @contextmanager
    def capture(self) -> Iterator[PhaseTally]:
        """Tally the charges made *by this thread* inside the block.

        Unlike a ``snapshot``/``delta_since`` pair on the global
        counters, a capture is immune to concurrent charges from other
        threads, so the background archiver can account one time step's
        I/O exactly while queries (or another staging thread) charge the
        same disk.  Captures nest; each level sees its own charges plus
        those of any inner capture.
        """
        tally = PhaseTally()
        stack = self._captures()
        stack.append(tally)
        try:
            yield tally
        finally:
            stack.pop()

    def _record(self, kind: str, blocks: int, phase: "str | None" = None) -> None:
        bucket = getattr(self, phase) if phase is not None else self._bucket()
        effective = phase if phase is not None else self.current_phase
        with self._lock:
            setattr(self.counters, kind, getattr(self.counters, kind) + blocks)
            setattr(bucket, kind, getattr(bucket, kind) + blocks)
        for tally in self._captures():
            setattr(tally.total, kind, getattr(tally.total, kind) + blocks)
            phase_bucket = tally.by_phase[effective]
            setattr(phase_bucket, kind, getattr(phase_bucket, kind) + blocks)

    def record_sequential_read(self, blocks: int = 1) -> None:
        """Tally sequential block reads (atomic)."""
        self._record("sequential_reads", blocks)

    def record_sequential_write(self, blocks: int = 1) -> None:
        """Tally sequential block writes (atomic)."""
        self._record("sequential_writes", blocks)

    def record_random_read(self, blocks: int = 1) -> None:
        """Tally random block reads (atomic).

        Random I/O is definitionally query-phase in this system
        (Lemma 7: the only random accesses are query-time probes), so
        it is attributed to the ``query`` sub-tally directly rather
        than through the thread's current phase — keeping the per-phase
        split exact even for callers that never set a phase.
        """
        self._record("random_reads", blocks, phase="query")
