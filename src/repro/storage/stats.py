"""I/O accounting for the simulated block device.

The paper's primary performance metric is the *number of disk accesses*
(block reads and writes), split into sequential I/O (loading, sorting,
merging partitions — Lemma 6) and random I/O (query-time binary-search
probes — Lemma 7).  Every storage-layer operation in this package reports
its cost through an :class:`IoCounters` instance, and a
:class:`DiskLatencyModel` converts the counts into simulated seconds so
benchmarks can report a "time" axis comparable in shape to the paper's
wall-clock figures.

Thread safety: :class:`DiskStats` serializes every ``record_*`` call
behind a lock, so the parallel query executor (``repro.query``) and
callers driving one engine from several threads never lose counts to a
torn ``+=``.  Snapshots (:meth:`IoCounters.snapshot`) are taken on the
coordinating thread between fan-outs, not concurrently with them.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass, field


@dataclass
class IoCounters:
    """Mutable tally of block-granular disk operations.

    Attributes
    ----------
    sequential_reads:
        Blocks read as part of a sequential scan (sort / merge input).
    sequential_writes:
        Blocks written sequentially (loading a batch, writing a merged
        partition).
    random_reads:
        Blocks read at arbitrary offsets (query-time probes).
    """

    sequential_reads: int = 0
    sequential_writes: int = 0
    random_reads: int = 0

    @property
    def total(self) -> int:
        """Total number of disk accesses of any kind."""
        return self.sequential_reads + self.sequential_writes + self.random_reads

    @property
    def sequential(self) -> int:
        """Total sequential accesses (reads plus writes)."""
        return self.sequential_reads + self.sequential_writes

    def add(self, other: "IoCounters") -> None:
        """Accumulate another tally into this one."""
        self.sequential_reads += other.sequential_reads
        self.sequential_writes += other.sequential_writes
        self.random_reads += other.random_reads

    def snapshot(self) -> "IoCounters":
        """Return an independent copy of the current counts."""
        return IoCounters(
            sequential_reads=self.sequential_reads,
            sequential_writes=self.sequential_writes,
            random_reads=self.random_reads,
        )

    def delta_since(self, earlier: "IoCounters") -> "IoCounters":
        """Return the counts accumulated since ``earlier`` was snapshotted."""
        return IoCounters(
            sequential_reads=self.sequential_reads - earlier.sequential_reads,
            sequential_writes=self.sequential_writes - earlier.sequential_writes,
            random_reads=self.random_reads - earlier.random_reads,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.sequential_reads = 0
        self.sequential_writes = 0
        self.random_reads = 0


@dataclass(frozen=True)
class DiskLatencyModel:
    """Converts I/O counts into simulated seconds.

    The paper's Section 2.4 example assumes "a fast hard disk can access
    1 block per millisecond"; sequential transfers on the same class of
    disk are roughly an order of magnitude cheaper per block, which is
    the default here.
    """

    seconds_per_sequential_block: float = 1e-4
    seconds_per_random_block: float = 1e-3

    def seconds(self, counters: IoCounters) -> float:
        """Simulated seconds spent on the accesses in ``counters``."""
        return (
            counters.sequential * self.seconds_per_sequential_block
            + counters.random_reads * self.seconds_per_random_block
        )


@dataclass
class DiskStats:
    """Aggregated statistics for one simulated disk.

    Keeps both running totals and per-phase sub-tallies that the update
    benchmarks (Fig. 6 and Fig. 7) break out: load, sort, merge.
    """

    counters: IoCounters = field(default_factory=IoCounters)
    load: IoCounters = field(default_factory=IoCounters)
    sort: IoCounters = field(default_factory=IoCounters)
    merge: IoCounters = field(default_factory=IoCounters)
    query: IoCounters = field(default_factory=IoCounters)

    _phase: str = "load"
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set_phase(self, phase: str) -> None:
        """Direct subsequent accesses to the named phase sub-tally.

        ``phase`` must be one of ``"load"``, ``"sort"``, ``"merge"`` or
        ``"query"``.
        """
        if phase not in ("load", "sort", "merge", "query"):
            raise ValueError(f"unknown I/O phase: {phase!r}")
        with self._lock:
            self._phase = phase

    def _bucket(self) -> IoCounters:
        return getattr(self, self._phase)

    def record_sequential_read(self, blocks: int = 1) -> None:
        """Tally sequential block reads (atomic)."""
        with self._lock:
            self.counters.sequential_reads += blocks
            self._bucket().sequential_reads += blocks

    def record_sequential_write(self, blocks: int = 1) -> None:
        """Tally sequential block writes (atomic)."""
        with self._lock:
            self.counters.sequential_writes += blocks
            self._bucket().sequential_writes += blocks

    def record_random_read(self, blocks: int = 1) -> None:
        """Tally random block reads (atomic).

        Random I/O is definitionally query-phase in this system
        (Lemma 7: the only random accesses are query-time probes), so
        it is attributed to the ``query`` sub-tally directly rather
        than through the mutable current phase — keeping the per-phase
        split exact even when several query threads run concurrently
        while another thread's load flips the phase flag.
        """
        with self._lock:
            self.counters.random_reads += blocks
            self.query.random_reads += blocks
