"""Simulated disk substrate: block device, sorted runs, external sort.

The paper's evaluation counts disk accesses on a real laptop disk; this
package reproduces that accounting with a simulated block device (see
DESIGN.md section 3 for the substitution rationale).  Payload bytes
live behind the pluggable :mod:`~repro.storage.backends` protocol —
in-memory (default), real mmap-backed files, or an emulated object
store — without changing what the block model charges.
"""

from .backends import (
    BACKEND_NAMES,
    BackendStats,
    BlockDevice,
    MmapFileBackend,
    ObjectStoreBackend,
    ObjectStoreLatency,
    RunHandle,
    SimulatedBackend,
    make_backend,
)
from .cache import BlockCache
from .disk import SimulatedDisk
from .external_sort import ExternalSorter, merge_runs
from .runfile import SortedRun
from .shared_cache import SharedBlockCache, SharedCacheStats
from .stats import DiskLatencyModel, DiskStats, IoCounters

__all__ = [
    "BACKEND_NAMES",
    "BackendStats",
    "BlockCache",
    "BlockDevice",
    "MmapFileBackend",
    "ObjectStoreBackend",
    "ObjectStoreLatency",
    "RunHandle",
    "SharedBlockCache",
    "SharedCacheStats",
    "SimulatedBackend",
    "SimulatedDisk",
    "ExternalSorter",
    "make_backend",
    "merge_runs",
    "SortedRun",
    "DiskLatencyModel",
    "DiskStats",
    "IoCounters",
]
