"""Simulated disk substrate: block device, sorted runs, external sort.

The paper's evaluation counts disk accesses on a real laptop disk; this
package reproduces that accounting with a simulated block device (see
DESIGN.md section 3 for the substitution rationale).
"""

from .cache import BlockCache
from .disk import SimulatedDisk
from .external_sort import ExternalSorter, merge_runs
from .runfile import SortedRun
from .shared_cache import SharedBlockCache, SharedCacheStats
from .stats import DiskLatencyModel, DiskStats, IoCounters

__all__ = [
    "BlockCache",
    "SharedBlockCache",
    "SharedCacheStats",
    "SimulatedDisk",
    "ExternalSorter",
    "merge_runs",
    "SortedRun",
    "DiskLatencyModel",
    "DiskStats",
    "IoCounters",
]
