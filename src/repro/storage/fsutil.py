"""Filesystem durability helpers: the atomic write/fsync/rename dance.

Every durable artifact in this repository — checkpoint manifests, the
whole-checkpoint staging directory, sorted-run files of the mmap
backend, object-store PUTs — commits with the same discipline:

1. write the full content to a sibling ``<name>.tmp``;
2. flush and ``fsync`` the temporary file;
3. ``os.replace`` it over the final name (the commit point);
4. ``fsync`` the containing directory so the rename itself is durable.

Historically that dance lived inline in ``persistence/checkpoint.py``
and ``persistence/warehouse_store.py``; this module is the single
source of truth both they and the storage backends share.

Crash testing
-------------

The module-level :data:`crash_hook` mirrors the checkpoint module's
test seam: when set, it is called with a named point
(:data:`WRITE_CRASH_POINTS`) as each atomic write passes through it.
Raising :class:`SimulatedCrash` freezes the directory tree exactly
there — a ``.tmp`` with no final file ("kill after write"), or a
flushed ``.tmp`` that never renamed ("kill before rename") — which is
what the backend crash-safety suite drives.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Optional

#: suffix of in-flight staging files and directories.
STAGE_SUFFIX = ".tmp"
#: suffix of a retired previous version awaiting garbage collection.
RETIRED_SUFFIX = ".old"

#: named points an atomic file write passes through, in order.
WRITE_CRASH_POINTS = (
    "tmp-written",  # temporary file holds the full content, not synced
    "tmp-synced",   # temporary file fsynced, final name untouched
    "renamed",      # os.replace done, directory entry not yet synced
)


class SimulatedCrash(RuntimeError):
    """Raised by a test :data:`crash_hook` to abort a write mid-flight."""


#: Test seam: when set, called with each crash-point name as an atomic
#: write reaches it.  Raise :class:`SimulatedCrash` to simulate dying.
crash_hook: Optional[Callable[[str], None]] = None


def _reach(point: str) -> None:
    if crash_hook is not None:
        crash_hook(point)


def fsync_dir(path: "str | Path") -> None:
    """Make a directory's entry list durable (best-effort).

    Opening a directory read-only for fsync is not portable to every
    filesystem, so failures are swallowed — the rename itself already
    happened; only its durability against power loss is best-effort.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def fsync_file(path: "str | Path") -> None:
    """Flush a closed file's content to stable storage."""
    with open(path, "rb") as handle:
        os.fsync(handle.fileno())


def stage_path(path: "str | Path") -> Path:
    """The sibling staging name of ``path`` (``<path>.tmp``)."""
    path = Path(path)
    return path.parent / (path.name + STAGE_SUFFIX)


def retired_path(path: "str | Path") -> Path:
    """The sibling retired name of ``path`` (``<path>.old``)."""
    path = Path(path)
    return path.parent / (path.name + RETIRED_SUFFIX)


def atomic_write_bytes(
    path: "str | Path", data: bytes, sync_dir: bool = True
) -> Path:
    """Atomically replace ``path`` with ``data`` (tmp/fsync/rename).

    A crash at any instant leaves either the previous content of
    ``path`` (possibly with a stray ``.tmp`` sibling — see
    :func:`remove_stale_stages`) or the new content, never a torn
    mixture.  Returns the final path.
    """
    path = Path(path)
    temp = stage_path(path)
    with open(temp, "wb") as handle:
        handle.write(data)
        _reach("tmp-written")
        handle.flush()
        os.fsync(handle.fileno())
    _reach("tmp-synced")
    os.replace(temp, path)  # commit point
    _reach("renamed")
    if sync_dir:
        fsync_dir(path.parent)
    return path


def atomic_write_json(
    path: "str | Path", document: object, sync_dir: bool = True
) -> Path:
    """Atomically replace ``path`` with ``document`` serialized as JSON."""
    payload = (json.dumps(document, indent=2) + "\n").encode("utf-8")
    return atomic_write_bytes(path, payload, sync_dir=sync_dir)


def remove_stale_stages(directory: "str | Path") -> "list[Path]":
    """Delete leftover ``*.tmp`` staging files in ``directory``.

    The recovery half of :func:`atomic_write_bytes`: a staging file
    that never renamed is garbage by construction (the final name still
    holds the previous committed content, or never existed).  Returns
    the paths removed, for fsck-style reporting.
    """
    directory = Path(directory)
    removed = []
    if not directory.is_dir():
        return removed
    for stale in sorted(directory.glob(f"*{STAGE_SUFFIX}")):
        if stale.is_file():
            stale.unlink()
            removed.append(stale)
    if removed:
        fsync_dir(directory)
    return removed
