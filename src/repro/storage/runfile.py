"""Sorted on-disk runs.

A :class:`SortedRun` is the unit the warehouse stores: one sorted array
of int64 values living on a :class:`~repro.storage.disk.SimulatedDisk`.
All random access goes through a :class:`~repro.storage.cache.BlockCache`
so queries are charged block-granular I/O, and the block-confinement
optimization of Section 2.4 falls out of the cache for free.

The payload bytes live in the disk's pluggable storage backend
(:mod:`repro.storage.backends`): the run allocates a
:class:`~repro.storage.backends.RunHandle` at construction and reads
through it, so the same access paths work whether the bytes are a
resident array (simulated), a memory-mapped file, or an emulated
object-store bucket.  Whenever a read actually *charges* blocks (i.e.
it was not absorbed by a cache tier), the run reports the request to
the handle — that is how cold object-tier reads become GETs while
cache hits stay free.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from .cache import BlockCache
from .disk import SimulatedDisk

_run_ids = itertools.count()


class SortedRun:
    """One sorted partition of historical data on the simulated disk.

    Parameters
    ----------
    disk:
        Backing device; all I/O is charged to its stats.
    data:
        The values of the run.  Must already be sorted ascending; a
        copy is stored so the caller's array stays independent.
    charge_write:
        When ``True`` (default) the constructor charges the sequential
        writes needed to persist the run.  Pass ``False`` when the
        caller has already accounted for the write (e.g. the external
        sorter charges its own passes).
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        data: np.ndarray,
        charge_write: bool = True,
    ) -> None:
        arr = np.asarray(data, dtype=np.int64)
        if len(arr) > 1 and np.any(arr[1:] < arr[:-1]):
            raise ValueError("SortedRun requires sorted input")
        self._disk = disk
        self._length = len(arr)
        self.run_id = next(_run_ids)
        self._handle = disk.backend.allocate_run(self.run_id, arr)
        # Bind the disk's block geometry to the handle so backends can
        # serve ranged block reads (and clamp readahead) without a
        # back-reference to the disk.
        self._handle.block_elems = disk.block_elems
        if charge_write:
            disk.charge_sequential_write(self._length)

    def __len__(self) -> int:
        return self._length

    @property
    def disk(self) -> SimulatedDisk:
        """The simulated device backing this run."""
        return self._disk

    @property
    def tier(self) -> str:
        """Storage tier currently holding the run's bytes."""
        return self._handle.tier

    @property
    def _data(self) -> np.ndarray:
        return self._handle.data

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the run contents (no I/O charged).

        Intended for tests and for operations that account for their
        own I/O (sequential merges, summary construction at write
        time).
        """
        view = self._data.view()
        view.flags.writeable = False
        return view

    def min_value(self) -> int:
        """Smallest element (exact)."""
        if not self._length:
            raise ValueError("empty run has no minimum")
        return int(self._handle.read_blocks(0, 0)[0])

    def max_value(self) -> int:
        """Largest element (exact)."""
        if not self._length:
            raise ValueError("empty run has no maximum")
        last_block = self._disk.block_of(self._length - 1)
        payload = self._handle.read_blocks(last_block, last_block)
        return int(payload[self._length - 1 - last_block * self._disk.block_elems])

    def element_at(self, index: int, cache: Optional[BlockCache] = None) -> int:
        """Return the element at ``index`` (0-based), charging one block.

        With a cache, re-reads of an already-charged block are free.
        The read itself is block-ranged: only the probed block is
        fetched from the backend, never the whole run.
        """
        if not 0 <= index < self._length:
            raise IndexError(index)
        block = self._disk.block_of(index)
        self._charge_block(block, cache)
        payload = self._handle.read_blocks(block, block)
        return int(payload[index - block * self._disk.block_elems])

    def read_range(
        self,
        lo: int,
        hi: int,
        cache: Optional[BlockCache] = None,
    ) -> np.ndarray:
        """Read elements with indices in ``[lo, hi)``, charging block I/O."""
        lo = max(lo, 0)
        hi = min(hi, self._length)
        if lo >= hi:
            return np.empty(0, dtype=np.int64)
        first = self._disk.block_of(lo)
        last = self._disk.block_of(hi - 1)
        if cache is not None:
            charged = cache.touch_range(self.run_id, first, last)
        else:
            charged = last - first + 1
            self._disk.charge_random_read(charged)
        if charged:
            self._handle.note_range_read(first, last, charged)
        payload = self._handle.read_blocks(first, last)
        base = first * self._disk.block_elems
        return np.array(payload[lo - base : hi - base], dtype=np.int64)

    def read_block_range(
        self,
        first_block: int,
        last_block: int,
        cache: Optional[BlockCache] = None,
    ) -> np.ndarray:
        """Read a contiguous *block* range in one charged ranged read.

        The batched counterpart of per-block probing: residual fetches
        and accurate-path prefetch issue one charged range per
        partition instead of a Python loop of single-block reads.  The
        charged block count is identical to touching each block
        individually (the cache dedupes per block); only the number of
        disk *operations* shrinks.  Returns the elements stored in the
        range (clamped to the run's extent).
        """
        if first_block > last_block or not self._length:
            return np.empty(0, dtype=np.int64)
        last_valid = self._disk.block_of(self._length - 1)
        first_block = max(first_block, 0)
        last_block = min(last_block, last_valid)
        if first_block > last_block:
            # Entirely past the end of the run (or an empty clamp):
            # nothing to read, nothing charged.
            return np.empty(0, dtype=np.int64)
        if cache is not None:
            charged = cache.touch_range(self.run_id, first_block, last_block)
        else:
            charged = last_block - first_block + 1
            self._disk.charge_random_read(charged)
        if charged:
            self._handle.note_range_read(first_block, last_block, charged)
        lo = first_block * self._disk.block_elems
        hi = min((last_block + 1) * self._disk.block_elems, self._length)
        payload = self._handle.read_blocks(first_block, last_block)
        return np.array(payload[: hi - lo], dtype=np.int64)

    def rank_of(
        self,
        value: int,
        lo: int = 0,
        hi: Optional[int] = None,
        cache: Optional[BlockCache] = None,
    ) -> int:
        """Number of elements ``<= value``, by block-counted binary search.

        ``lo`` and ``hi`` bound the element indices searched (the
        summaries supply these bounds at query time — Alg. 8 line 5),
        so the search costs ``O(log((hi - lo) / B))`` block reads.
        """
        if hi is None:
            hi = self._length
        lo = max(lo, 0)
        hi = min(hi, self._length)
        # Classic binary search for the first index whose element
        # exceeds ``value``; each probe touches (and fetches) exactly
        # one block — cold probes never materialize the whole run.
        block_elems = self._disk.block_elems
        while lo < hi:
            mid = (lo + hi) // 2
            block = self._disk.block_of(mid)
            self._charge_block(block, cache)
            payload = self._handle.read_blocks(block, block)
            if int(payload[mid - block * block_elems]) <= value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def in_memory_rank(self, value: int) -> int:
        """Rank without I/O accounting (summary construction only)."""
        return int(np.searchsorted(self._data, value, side="right"))

    def scan(self) -> np.ndarray:
        """Sequentially read the whole run, charging sequential I/O."""
        self._disk.charge_sequential_read(self._length)
        self._handle.note_sequential_read(self._disk.blocks_for(self._length))
        return self._data.copy()

    def _charge_block(self, block: int, cache: Optional[BlockCache]) -> None:
        if cache is not None:
            charged = cache.touch(self.run_id, block)
        else:
            self._disk.charge_random_read(1)
            charged = 1
        if charged:
            self._handle.note_range_read(block, block, charged)
