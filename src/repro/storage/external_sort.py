"""External multi-way merge sort with block-accurate I/O accounting.

The warehouse sorts each incoming batch before storing it as a level-0
partition (Alg. 3 line 6) and merges the sorted partitions of an
overfull level into one larger partition (line 10).  Both operations are
sequential-I/O bound; Lemma 6 charges ``O(eta / B)`` accesses to sort a
batch of size ``eta`` (a constant number of passes, per Aggarwal &
Vitter) and one read-plus-write pass over all merged data per level.

The *data* is sorted with NumPy — what the simulation must get right is
the I/O count, which this module computes from the run-formation /
merge-pass structure of a real external sort.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .disk import SimulatedDisk
from .runfile import SortedRun


class ExternalSorter:
    """Sorts batches into :class:`SortedRun` objects.

    Parameters
    ----------
    disk:
        Device charged for the sort passes.
    memory_elems:
        Size of the sort workspace in elements.  Batches no larger than
        this are sorted in memory (charged a single sequential write of
        the output run).  Larger batches pay one read-plus-write pass
        for run formation and one per merge level.
    fan_in:
        Maximum number of runs merged per pass.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        memory_elems: int = 1 << 22,
        fan_in: int = 64,
    ) -> None:
        if memory_elems < 1:
            raise ValueError("memory_elems must be >= 1")
        if fan_in < 2:
            raise ValueError("fan_in must be >= 2")
        self._disk = disk
        self._memory_elems = memory_elems
        self._fan_in = fan_in

    def passes_needed(self, num_elems: int) -> int:
        """Number of read+write passes an external sort would take.

        Zero passes means a pure in-memory sort (only the final output
        write is charged).
        """
        if num_elems <= self._memory_elems:
            return 0
        initial_runs = math.ceil(num_elems / self._memory_elems)
        # Run formation is one pass; each merge level reduces the run
        # count by the fan-in.
        merge_levels = math.ceil(math.log(initial_runs, self._fan_in))
        return 1 + merge_levels

    def sorted_array(self, data: np.ndarray) -> np.ndarray:
        """Sort ``data``, charging the external-sort passes only.

        The caller persists the result (e.g. as a :class:`SortedRun`)
        and accounts for that final write itself.
        """
        arr = np.asarray(data, dtype=np.int64)
        for _ in range(self.passes_needed(len(arr))):
            self._disk.charge_sequential_read(len(arr))
            self._disk.charge_sequential_write(len(arr))
        return np.sort(arr, kind="stable")

    def sort(self, data: np.ndarray) -> SortedRun:
        """Sort ``data`` and return it as an on-disk run.

        Charges ``passes_needed`` read+write passes plus the final
        output write.
        """
        return SortedRun(self._disk, self.sorted_array(data), charge_write=True)


def _merge_two_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted arrays in one vectorized interleaving pass.

    Each element of ``b`` lands at ``searchsorted(a, b) + its own
    index`` in the output; the remaining slots take ``a`` in order.
    Equal values keep ``a``'s copies first (``side="right"``), which is
    irrelevant for the int64 values stored here but keeps the operation
    a textbook stable merge.
    """
    if not len(a):
        return b
    if not len(b):
        return a
    out = np.empty(len(a) + len(b), dtype=np.int64)
    positions = np.searchsorted(a, b, side="right")
    positions += np.arange(len(b), dtype=positions.dtype)
    from_a = np.ones(len(out), dtype=bool)
    from_a[positions] = False
    out[positions] = b
    out[from_a] = a
    return out


def kway_merge(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Merge already-sorted arrays into one sorted array.

    A balanced tournament of pairwise merges: ``ceil(log2 k)`` rounds,
    each moving every element once — ``O(n log k)`` work instead of the
    ``O(n log n)`` of concatenating and fully re-sorting, and the gap
    widens exactly where it matters (high-fan-in level merges with
    large kappa).
    """
    parts = [np.asarray(a, dtype=np.int64) for a in arrays if len(a)]
    if not parts:
        return np.empty(0, dtype=np.int64)
    while len(parts) > 1:
        merged = [
            _merge_two_sorted(parts[i], parts[i + 1])
            for i in range(0, len(parts) - 1, 2)
        ]
        if len(parts) % 2:
            merged.append(parts[-1])
        parts = merged
    return parts[0]


def merge_runs(disk: SimulatedDisk, runs: Sequence[SortedRun]) -> SortedRun:
    """Multi-way merge sorted runs into a single run (Alg. 3 line 10).

    One sequential pass: every input block is read once, every output
    block written once.  The in-memory data movement is a true k-way
    merge (:func:`kway_merge`) of the already-sorted inputs.
    """
    if not runs:
        raise ValueError("nothing to merge")
    parts = []
    for run in runs:
        disk.charge_sequential_read(len(run))
        parts.append(run.values)
    merged = kway_merge(parts)
    return SortedRun(disk, merged, charge_write=True)
