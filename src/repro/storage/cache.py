"""Per-query block cache.

Section 2.4's optimization: once the recursive search within a partition
is confined to a single disk block, that block is pinned in memory and
all further probes are free.  More generally, a query never pays twice
for the same block.  :class:`BlockCache` implements exactly that
accounting: it is created per query, remembers which (run, block) pairs
have been charged, and charges the disk once per new pair.

The cache is thread-safe so the parallel query executor
(:mod:`repro.query`) can probe partitions concurrently: each run's
seen-set is guarded by its own lock (concurrent probes into *different*
partitions never contend), and the aggregate tallies are guarded by a
single counter lock.  Because concurrent probes within one query always
target distinct runs, the set of charged (run, block) pairs — and hence
every counter — is identical to a serial execution of the same query.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict, Set

from .disk import SimulatedDisk


class BlockCache:
    """Remembers blocks already read by the current query.

    Parameters
    ----------
    disk:
        The disk to charge for first-time block reads.
    enabled:
        When ``False`` the cache degrades to "charge every probe",
        which is the un-optimized variant measured by the block-cache
        ablation benchmark.
    """

    def __init__(self, disk: SimulatedDisk, enabled: bool = True) -> None:
        self._disk = disk
        self._enabled = enabled
        self._seen: Dict[int, Set[int]] = {}
        self._run_locks: Dict[int, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._count_lock = threading.Lock()
        self.blocks_charged = 0
        #: charged blocks per run — the deepest chain is the realized
        #: critical path when the executor reads partitions in parallel.
        self.blocks_per_run: "Counter[int]" = Counter()

    def _lock_for(self, run_id: int) -> threading.Lock:
        """The per-run (per-partition) lock guarding one seen-set."""
        lock = self._run_locks.get(run_id)
        if lock is None:
            with self._locks_guard:
                lock = self._run_locks.setdefault(run_id, threading.Lock())
        return lock

    def touch(self, run_id: int, block: int) -> None:
        """Charge a random read of ``block`` in run ``run_id`` if new."""
        with self._lock_for(run_id):
            seen = self._seen.setdefault(run_id, set())
            if self._enabled and block in seen:
                return
            # Charge before recording: the charge may raise an injected
            # DiskFault, and a block whose read failed must not look
            # cached to the retried probe.
            self._disk.charge_random_read(1)
            seen.add(block)
            with self._count_lock:
                self.blocks_charged += 1
                self.blocks_per_run[run_id] += 1

    def max_blocks_per_run(self) -> int:
        """Deepest per-partition read chain (parallel critical path)."""
        with self._count_lock:
            if not self.blocks_per_run:
                return 0
            return max(self.blocks_per_run.values())

    def touch_range(self, run_id: int, first_block: int, last_block: int) -> None:
        """Charge reads for every block in [first_block, last_block]."""
        for block in range(first_block, last_block + 1):
            self.touch(run_id, block)
