"""Per-query block cache.

Section 2.4's optimization: once the recursive search within a partition
is confined to a single disk block, that block is pinned in memory and
all further probes are free.  More generally, a query never pays twice
for the same block.  :class:`BlockCache` implements exactly that
accounting: it is created per query, remembers which (run, block) pairs
have been charged, and charges the disk once per new pair.
"""

from __future__ import annotations

from collections import Counter
from typing import Set, Tuple

from .disk import SimulatedDisk


class BlockCache:
    """Remembers blocks already read by the current query.

    Parameters
    ----------
    disk:
        The disk to charge for first-time block reads.
    enabled:
        When ``False`` the cache degrades to "charge every probe",
        which is the un-optimized variant measured by the block-cache
        ablation benchmark.
    """

    def __init__(self, disk: SimulatedDisk, enabled: bool = True) -> None:
        self._disk = disk
        self._enabled = enabled
        self._seen: Set[Tuple[int, int]] = set()
        self.blocks_charged = 0
        #: charged blocks per run — feeds the parallel-read latency
        #: model (Section 4: partitions can be read concurrently).
        self.blocks_per_run: "Counter[int]" = Counter()

    def touch(self, run_id: int, block: int) -> None:
        """Charge a random read of ``block`` in run ``run_id`` if new."""
        key = (run_id, block)
        if self._enabled and key in self._seen:
            return
        self._seen.add(key)
        self._disk.charge_random_read(1)
        self.blocks_charged += 1
        self.blocks_per_run[run_id] += 1

    def max_blocks_per_run(self) -> int:
        """Deepest per-partition read chain (parallel critical path)."""
        if not self.blocks_per_run:
            return 0
        return max(self.blocks_per_run.values())

    def touch_range(self, run_id: int, first_block: int, last_block: int) -> None:
        """Charge reads for every block in [first_block, last_block]."""
        for block in range(first_block, last_block + 1):
            self.touch(run_id, block)
