"""Per-query block cache.

Section 2.4's optimization: once the recursive search within a partition
is confined to a single disk block, that block is pinned in memory and
all further probes are free.  More generally, a query never pays twice
for the same block.  :class:`BlockCache` implements exactly that
accounting: it is created per query, remembers which (run, block) pairs
have been charged, and charges the disk once per new pair.

The cache is thread-safe so the parallel query executor
(:mod:`repro.query`) can probe partitions concurrently: each run's
seen-set is guarded by its own lock (concurrent probes into *different*
partitions never contend), and the aggregate tallies are guarded by a
single counter lock.  Because concurrent probes within one query always
target distinct runs, the set of charged (run, block) pairs — and hence
every counter — is identical to a serial execution of the same query.

When a :class:`~repro.storage.shared_cache.SharedBlockCache` is
attached, the per-query cache becomes a thin read-through layer: the
first touch of a block by this query consults the shared tier, and only
a shared-tier **miss** is charged to the disk (and counted in
``blocks_charged``).  A shared hit is free and tallied separately in
``shared_hits``, so the paper's per-query accounting is preserved in the
cold case and visibly relaxed in the warm case.  With no shared tier
attached the code path is exactly the historical one.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict, Optional, Set

from .disk import SimulatedDisk
from .shared_cache import SharedBlockCache


class BlockCache:
    """Remembers blocks already read by the current query.

    Parameters
    ----------
    disk:
        The disk to charge for first-time block reads.
    enabled:
        When ``False`` the cache degrades to "charge every probe",
        which is the un-optimized variant measured by the block-cache
        ablation benchmark.
    shared:
        Optional process-wide shared tier to read through.  ``None``
        (the default) reproduces the historical per-query accounting
        exactly.
    follow_invalidation:
        When ``True`` this cache registers with the shared tier and has
        its per-run state pruned when runs retire (``drop_run``) — the
        fix for long-lived caches whose lock map and seen-sets
        otherwise grow without bound across compactions.  Per-query
        caches bound to a pinned snapshot must leave this ``False``:
        their runs stay probe-able through the pin, and dropping a
        pinned run's seen-state would re-charge re-probes and break the
        serial-replay accounting parity.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        enabled: bool = True,
        shared: Optional[SharedBlockCache] = None,
        follow_invalidation: bool = False,
    ) -> None:
        self._disk = disk
        self._enabled = enabled
        self._shared = shared
        self._seen: Dict[int, Set[int]] = {}
        self._run_locks: Dict[int, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._count_lock = threading.Lock()
        self.blocks_charged = 0
        #: first-touches answered by the shared tier (free, not charged).
        self.shared_hits = 0
        #: charged blocks per run — the deepest chain is the realized
        #: critical path when the executor reads partitions in parallel.
        self.blocks_per_run: "Counter[int]" = Counter()
        if follow_invalidation and shared is not None:
            shared.register_follower(self)

    @property
    def shared(self) -> Optional[SharedBlockCache]:
        """The attached shared tier, if any."""
        return self._shared

    def _lock_for(self, run_id: int) -> threading.Lock:
        """The per-run (per-partition) lock guarding one seen-set."""
        lock = self._run_locks.get(run_id)
        if lock is None:
            with self._locks_guard:
                lock = self._run_locks.setdefault(run_id, threading.Lock())
        return lock

    def _charge(self, run_id: int, blocks: int) -> None:
        """Record ``blocks`` charged reads against ``run_id``."""
        with self._count_lock:
            self.blocks_charged += blocks
            self.blocks_per_run[run_id] += blocks

    def touch(self, run_id: int, block: int) -> int:
        """Charge a random read of ``block`` in run ``run_id`` if new.

        Returns the number of blocks actually charged to the disk (0 on
        a per-query or shared-tier hit, 1 on a miss).  Callers use the
        return value to decide whether the read reached the storage
        backend — a cache hit must never become an object-store GET.
        """
        with self._lock_for(run_id):
            seen = self._seen.setdefault(run_id, set())
            if self._enabled and block in seen:
                return 0
            # Charge before recording: the charge may raise an injected
            # DiskFault, and a block whose read failed must not look
            # cached to the retried probe.
            if self._shared is not None:
                hit = self._shared.fetch_block(
                    run_id, block, self._disk.charge_random_read
                )
                seen.add(block)
                if hit:
                    with self._count_lock:
                        self.shared_hits += 1
                    return 0
            else:
                self._disk.charge_random_read(1)
                seen.add(block)
            self._charge(run_id, 1)
            return 1

    def touch_range(self, run_id: int, first_block: int, last_block: int) -> int:
        """Charge reads for every new block in [first_block, last_block].

        The unseen blocks of the range are charged in a single ranged
        random read (one ``charge_random_read(n)`` call), so residual
        fetches and prefetch pay one disk *operation* per partition
        while the charged block count stays identical to the historical
        block-at-a-time loop.  Returns the total blocks charged (cache
        hits excluded), mirroring :meth:`touch`.
        """
        with self._lock_for(run_id):
            seen = self._seen.setdefault(run_id, set())
            blocks = range(first_block, last_block + 1)
            if self._enabled:
                new = [b for b in blocks if b not in seen]
            else:
                new = list(blocks)
            if not new:
                return 0
            charged = 0
            if self._shared is not None:
                # Contiguous sub-ranges of the unseen blocks, so the
                # shared tier sees ranged lookups (and charges each
                # missing sub-range as one ranged read).
                for lo, hi in _contiguous(new):
                    hits, misses = self._shared.fetch_range(
                        run_id, lo, hi, self._disk.charge_random_read
                    )
                    seen.update(range(lo, hi + 1))
                    if hits:
                        with self._count_lock:
                            self.shared_hits += hits
                    if misses:
                        self._charge(run_id, misses)
                        charged += misses
            else:
                # Charge-before-record, as in touch(): a DiskFault in
                # the ranged read leaves every block of it uncached.
                self._disk.charge_random_read(len(new))
                seen.update(new)
                self._charge(run_id, len(new))
                charged = len(new)
            return charged

    def max_blocks_per_run(self) -> int:
        """Deepest per-partition read chain (parallel critical path)."""
        with self._count_lock:
            if not self.blocks_per_run:
                return 0
            return max(self.blocks_per_run.values())

    def drop_run(self, run_id: int) -> None:
        """Forget a retired run's lock and seen-set.

        Called by the shared tier's invalidation for caches registered
        with ``follow_invalidation=True``.  Aggregate charge counters
        are deliberately left intact — they describe work already paid
        for.  Only valid for runs outside the cache's pinned scope: a
        follower cache spans epochs and never probes retired runs
        again, so dropping the state is pure leak repair.
        """
        with self._lock_for(run_id):
            self._seen.pop(run_id, None)
        with self._locks_guard:
            self._run_locks.pop(run_id, None)

    def tracked_runs(self) -> int:
        """Number of runs with live per-run state (leak introspection)."""
        with self._locks_guard:
            return len(self._run_locks)


def _contiguous(blocks):
    """Yield (lo, hi) for each maximal contiguous run of sorted ints."""
    lo = prev = blocks[0]
    for b in blocks[1:]:
        if b != prev + 1:
            yield lo, prev
            lo = b
        prev = b
    yield lo, prev
