"""repro: quantiles over the union of historical and streaming data.

A faithful, laptop-scale reproduction of Singh, Srivastava &
Tirthapura, "Estimating Quantiles from the Union of Historical and
Streaming Data" (PVLDB 10(4), 2016).

Quickstart::

    from repro import HybridQuantileEngine

    engine = HybridQuantileEngine(epsilon=1e-3, kappa=10)
    engine.stream_update_batch(todays_values)   # live stream
    median = engine.quantile(0.5)               # query any time
    engine.end_time_step()                      # archive the batch

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for the paper-versus-measured record.
"""

from .baselines import PureStreamingEngine, StrawmanEngine
from .cluster import (
    ClusterEngine,
    ClusterSnapshot,
    ShardRouter,
    load_cluster,
    save_cluster,
)
from .frequent import HeavyHittersEngine, MisraGriesSketch
from .core import (
    EngineConfig,
    EngineSnapshot,
    HybridQuantileEngine,
    MemoryBudget,
    MemoryReport,
    QuantileWatcher,
    QueryResult,
    ServingConfig,
    SnapshotHandle,
    StepReport,
    WindowNotAlignedError,
    epsilon_for_budget,
)
from .faults import (
    CorruptedBlockError,
    DiskFault,
    FaultPlan,
    FaultyDisk,
    ReliabilityReport,
    RetryPolicy,
    TransientReadError,
    TransientWriteError,
)
from .query import QueryExecutor, QueryPlanner
from .serving import (
    LoadGenerator,
    MetricsSnapshot,
    Overloaded,
    QueryService,
    ServiceMetrics,
)
from .sketches import (
    ExactQuantiles,
    GKSketch,
    KLLSketch,
    MRL99Sketch,
    QDigestSketch,
    RandomSamplerSketch,
)
from .storage import SimulatedDisk
from .workloads import (
    NetworkTraceWorkload,
    NormalWorkload,
    UniformWorkload,
    WikipediaWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "PureStreamingEngine",
    "StrawmanEngine",
    "ClusterEngine",
    "ClusterSnapshot",
    "ShardRouter",
    "load_cluster",
    "save_cluster",
    "HeavyHittersEngine",
    "MisraGriesSketch",
    "EngineConfig",
    "EngineSnapshot",
    "QuantileWatcher",
    "HybridQuantileEngine",
    "MemoryBudget",
    "MemoryReport",
    "QueryResult",
    "StepReport",
    "WindowNotAlignedError",
    "epsilon_for_budget",
    "CorruptedBlockError",
    "DiskFault",
    "FaultPlan",
    "FaultyDisk",
    "ReliabilityReport",
    "RetryPolicy",
    "TransientReadError",
    "TransientWriteError",
    "QueryExecutor",
    "QueryPlanner",
    "LoadGenerator",
    "MetricsSnapshot",
    "Overloaded",
    "QueryService",
    "ServiceMetrics",
    "ServingConfig",
    "SnapshotHandle",
    "ExactQuantiles",
    "GKSketch",
    "KLLSketch",
    "MRL99Sketch",
    "QDigestSketch",
    "RandomSamplerSketch",
    "SimulatedDisk",
    "NetworkTraceWorkload",
    "NormalWorkload",
    "UniformWorkload",
    "WikipediaWorkload",
    "__version__",
]
