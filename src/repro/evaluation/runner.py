"""Experiment runner: drives engines over workloads and collects metrics.

One :class:`ExperimentRunner` owns a workload and a set of engines (the
hybrid engine plus any baselines), feeds them identical data — ``T``
archived time steps followed by a live stream batch — and measures the
quantities the paper plots: per-step update cost, per-query disk
accesses and runtime, and oracle-measured relative error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.engine import StepReport
from ..sketches.exact import ExactQuantiles
from ..workloads.base import Workload
from .metrics import QueryAccuracy, measure

DEFAULT_PHIS = (0.05, 0.25, 0.5, 0.75, 0.95, 0.99)


@dataclass
class EngineRun:
    """Everything measured for one engine over one experiment."""

    name: str
    step_reports: List[StepReport] = field(default_factory=list)
    queries: List[QueryAccuracy] = field(default_factory=list)
    ingest_seconds: float = 0.0

    @property
    def median_relative_error(self) -> float:
        """Median relative error across queries."""
        errors = sorted(q.relative_error for q in self.queries)
        if not errors:
            return float("nan")
        return errors[len(errors) // 2]

    @property
    def mean_relative_error(self) -> float:
        """Mean relative error across queries."""
        if not self.queries:
            return float("nan")
        return sum(q.relative_error for q in self.queries) / len(self.queries)

    @property
    def max_relative_error(self) -> float:
        """Worst relative error across queries."""
        if not self.queries:
            return float("nan")
        return max(q.relative_error for q in self.queries)

    @property
    def mean_update_io(self) -> float:
        """Average disk accesses per archived step."""
        if not self.step_reports:
            return 0.0
        return sum(r.io_total for r in self.step_reports) / len(self.step_reports)

    @property
    def mean_query_disk_accesses(self) -> float:
        """Average random block reads per query."""
        if not self.queries:
            return 0.0
        return sum(q.result.disk_accesses for q in self.queries) / len(self.queries)

    @property
    def mean_query_seconds(self) -> float:
        """Average wall + simulated seconds per query."""
        if not self.queries:
            return 0.0
        return sum(
            q.result.wall_seconds + q.result.sim_seconds for q in self.queries
        ) / len(self.queries)

    def update_io_per_step(self) -> List[int]:
        """Per-step disk-access totals, in step order."""
        return [r.io_total for r in self.step_reports]

    def mean_update_seconds(self) -> Dict[str, float]:
        """Average per-step update time by phase (CPU + simulated I/O)."""
        if not self.step_reports:
            return {}
        phases: Dict[str, float] = {"load": 0.0, "sort": 0.0,
                                    "merge": 0.0, "summary": 0.0}
        sim_total = 0.0
        for report in self.step_reports:
            for phase, seconds in report.cpu_seconds.items():
                phases[phase] = phases.get(phase, 0.0) + seconds
            sim_total += report.sim_seconds
        steps = len(self.step_reports)
        averaged = {phase: value / steps for phase, value in phases.items()}
        averaged["sim_io"] = sim_total / steps
        return averaged


@dataclass
class ExperimentResult:
    """Results for all engines of one experiment, keyed by engine name."""

    workload_name: str
    num_steps: int
    batch_elems: int
    stream_elems: int
    runs: Dict[str, EngineRun] = field(default_factory=dict)

    def __getitem__(self, name: str) -> EngineRun:
        return self.runs[name]


class ExperimentRunner:
    """Feed identical data to several engines and measure them.

    Parameters
    ----------
    workload:
        Batch generator (reset before the run for determinism).
    num_steps:
        Number of archived time steps T.
    batch_elems:
        Elements per archived batch.
    stream_elems:
        Size m of the live (unarchived) stream present at query time;
        defaults to ``batch_elems``.
    keep_oracle:
        Retain the exact oracle after the run (tests use it).
    """

    def __init__(
        self,
        workload: Workload,
        num_steps: int,
        batch_elems: int,
        stream_elems: Optional[int] = None,
        keep_oracle: bool = True,
    ) -> None:
        self.workload = workload
        self.num_steps = num_steps
        self.batch_elems = batch_elems
        self.stream_elems = (
            stream_elems if stream_elems is not None else batch_elems
        )
        self.keep_oracle = keep_oracle
        self.oracle: Optional[ExactQuantiles] = None

    def run(
        self,
        engines: Dict[str, object],
        phis: Sequence[float] = DEFAULT_PHIS,
        query_modes: Optional[Dict[str, str]] = None,
    ) -> ExperimentResult:
        """Drive every engine through the experiment.

        ``engines`` maps display names to engine objects implementing
        the driver protocol (``stream_update_batch``, ``end_time_step``,
        ``quantile``).  ``query_modes`` optionally overrides the query
        mode per engine name (default ``"accurate"``).
        """
        self.workload.reset()
        oracle = ExactQuantiles()
        result = ExperimentResult(
            workload_name=self.workload.name,
            num_steps=self.num_steps,
            batch_elems=self.batch_elems,
            stream_elems=self.stream_elems,
            runs={name: EngineRun(name=name) for name in engines},
        )
        modes = query_modes or {}

        for batch in self.workload.batches(self.num_steps, self.batch_elems):
            oracle.update_batch(batch)
            for name, engine in engines.items():
                run = result.runs[name]
                started = time.perf_counter()
                engine.stream_update_batch(batch)
                report = engine.end_time_step()
                run.ingest_seconds += time.perf_counter() - started
                run.step_reports.append(report)

        live = self.workload.generate(self.stream_elems)
        oracle.update_batch(live)
        for name, engine in engines.items():
            run = result.runs[name]
            started = time.perf_counter()
            engine.stream_update_batch(live)
            run.ingest_seconds += time.perf_counter() - started

        for phi in phis:
            for name, engine in engines.items():
                mode = modes.get(name, "accurate")
                query = engine.quantile(phi, mode=mode)
                result.runs[name].queries.append(measure(query, oracle))

        if self.keep_oracle:
            self.oracle = oracle
        return result
