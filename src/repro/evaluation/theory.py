"""Theoretical bounds from the paper, as executable formulas.

These power the "Relative Error in Theory" curve of Figure 5, sanity
checks in the test suite, and the Section 2.4 worked example (10 TB/day
for three years).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def accurate_relative_error_bound(
    epsilon: float, stream_size: int, phi: float, total_size: int
) -> float:
    """Theory bound on relative error of the accurate response.

    Lemma 5: rank error is ``O(eps * m)``; relative error divides by
    ``phi * N``.
    """
    if total_size <= 0:
        raise ValueError("total_size must be positive")
    return epsilon * stream_size / max(1.0, phi * total_size)


def quick_relative_error_bound(epsilon: float, phi: float) -> float:
    """Lemma 3: quick-response rank error is at most ``1.5 eps N``."""
    return 1.5 * epsilon / phi


def memory_words_bound(
    epsilon: float, stream_size: int, kappa: int, num_steps: int
) -> float:
    """Observation 1: ``O((1/eps)(log(eps m) + kappa log_kappa T))``."""
    m = max(2, stream_size)
    steps = max(2, num_steps)
    stream_part = max(1.0, math.log2(max(2.0, epsilon * m)))
    hist_part = kappa * math.ceil(math.log(steps, kappa))
    return (stream_part + hist_part) / epsilon


def update_disk_accesses_bound(
    historical_elems: int, block_elems: int, kappa: int, num_steps: int
) -> float:
    """Lemma 6: amortized ``O((n / (B T)) log_kappa T)`` per time step."""
    steps = max(2, num_steps)
    blocks = historical_elems / block_elems
    return (blocks / steps) * max(1.0, math.log(steps, kappa))


def query_disk_accesses_bound(
    historical_elems: int,
    block_elems: int,
    kappa: int,
    num_steps: int,
    universe_log2: int,
) -> float:
    """Lemma 7: ``O(log_kappa T * log(n/B) * log U)`` per query."""
    steps = max(2, num_steps)
    blocks = max(2.0, historical_elems / block_elems)
    return (
        max(1.0, math.log(steps, kappa))
        * math.log2(blocks)
        * universe_log2
    )


@dataclass(frozen=True)
class WorkedExample:
    """The Section 2.4 illustration, recomputed."""

    update_accesses_per_day: float
    update_seconds_per_day: float
    query_accesses: float
    memory_words: float


def section_2_4_example() -> WorkedExample:
    """Reproduce the paper's 10 TB/day, 3-year worked example.

    10 TB/day for 3 years, 100 KB blocks (10**8 blocks per batch),
    eps = 1e-6, 1 ms per block.  The paper quotes ~10**6 amortized
    accesses per day (about 1000 seconds), a few hundred query
    accesses, and ~3*10**5 words of memory.
    """
    blocks_per_batch = 10**8
    days = 3 * 365
    epsilon = 1e-6
    kappa = 10
    # Paper's arithmetic: (10**8 / (3*365)) * log10(10**8).
    update = blocks_per_batch / days * math.log(blocks_per_batch, kappa)
    query = query_disk_accesses_bound(
        historical_elems=blocks_per_batch * days,  # in blocks already
        block_elems=1,
        kappa=kappa,
        num_steps=days,
        universe_log2=20,
    )
    memory = memory_words_bound(
        epsilon=epsilon,
        stream_size=10**12,
        kappa=kappa,
        num_steps=days,
    )
    return WorkedExample(
        update_accesses_per_day=update,
        update_seconds_per_day=update * 1e-3,
        query_accesses=query,
        memory_words=memory,
    )
