"""Fixed-width table rendering for benchmark output.

The benchmark harness prints the same rows the paper's figures plot;
these helpers keep that output aligned and consistent across benches.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Sequence


def format_cell(value: object) -> str:
    """Render one cell: compact scientific notation for small floats."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e7:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a fixed-width text table with a header rule."""
    rendered: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Print a titled table (flushes so pytest -s interleaves sanely)."""
    print(f"\n=== {title} ===")
    print(format_table(headers, rows), flush=True)


def write_csv(
    path: "str | Path",
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    """Write a table as CSV, for plotting the figures externally."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
