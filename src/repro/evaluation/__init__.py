"""Experiment harness: runner, metrics, theory bounds, reporting."""

from .calibration import CalibrationPoint, calibrate_gk, calibrate_qdigest
from .metrics import QueryAccuracy, measure, rank_error_is_inherent
from .reporting import format_table, print_table, write_csv
from .runner import (
    DEFAULT_PHIS,
    EngineRun,
    ExperimentResult,
    ExperimentRunner,
)
from .theory import (
    WorkedExample,
    accurate_relative_error_bound,
    memory_words_bound,
    query_disk_accesses_bound,
    quick_relative_error_bound,
    section_2_4_example,
    update_disk_accesses_bound,
)

__all__ = [
    "CalibrationPoint",
    "calibrate_gk",
    "calibrate_qdigest",
    "QueryAccuracy",
    "measure",
    "rank_error_is_inherent",
    "format_table",
    "print_table",
    "write_csv",
    "DEFAULT_PHIS",
    "EngineRun",
    "ExperimentResult",
    "ExperimentRunner",
    "WorkedExample",
    "accurate_relative_error_bound",
    "memory_words_bound",
    "query_disk_accesses_bound",
    "quick_relative_error_bound",
    "section_2_4_example",
    "update_disk_accesses_bound",
]
