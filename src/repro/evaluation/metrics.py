"""Accuracy metrics (Section 3.1).

The paper measures *relative error*: ``|r - r_hat| / (phi * N)`` where
``r`` is the rank a phi-quantile query targets and ``r_hat`` is the
true rank (in T) of the element the algorithm returned.  True ranks
come from the :class:`~repro.sketches.exact.ExactQuantiles` oracle the
runner feeds alongside the engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import QueryResult
from ..sketches.exact import ExactQuantiles


@dataclass(frozen=True)
class QueryAccuracy:
    """A query result annotated with its oracle-measured accuracy."""

    result: QueryResult
    true_rank: int
    rank_error: int
    relative_error: float


def measure(result: QueryResult, oracle: ExactQuantiles) -> QueryAccuracy:
    """Annotate a query result with its true rank error.

    The oracle must cover exactly the data the query did (full dataset
    or window).  An element ``e`` occupies the whole rank interval
    ``[#(< e) + 1, #(<= e)]``; the rank error is the distance from the
    target rank to that interval, which is zero exactly when ``e`` is a
    correct answer (this matches the paper's ``|r - r_hat|`` on
    duplicate-free data and stays fair on duplicate-heavy data, where
    even the exact quantile element spans many ranks).
    """
    rank_high = oracle.rank(result.value)
    rank_low = oracle.rank_strict(result.value) + 1
    target = result.target_rank
    rank_error = max(0, rank_low - target, target - rank_high)
    denominator = max(1, target)
    return QueryAccuracy(
        result=result,
        true_rank=rank_high,
        rank_error=rank_error,
        relative_error=rank_error / denominator,
    )


def rank_error_is_inherent(
    result: QueryResult, oracle: ExactQuantiles
) -> bool:
    """Whether the measured rank error is due to duplicates alone.

    With heavy duplication even the *exact* phi-quantile element can
    have a true rank far above the target (Definition 1 returns the
    smallest element whose rank reaches the target).  This helper
    checks whether the returned element equals the exact answer, so
    tests can distinguish algorithmic error from inherent data error.
    """
    return result.value == oracle.query_rank(result.target_rank)
