"""Empirical calibration of the sketch memory models.

The benchmark harness sizes every contender from the same invertible
memory models (``repro.core.memory``); the memory axis is only fair if
those models track what the sketches *actually* use.  This module
measures real usage across an epsilon/size grid and reports the
model-to-measured ratio, so the calibration claim in the memory module
is executable rather than folklore.  The accompanying test pins the
ratios into a band; if an implementation change shifts a sketch's
footprint, the test fails and the model constants must be re-fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.memory import pure_gk_words, qdigest_words
from ..sketches.gk import GKSketch
from ..sketches.qdigest import QDigestSketch


@dataclass(frozen=True)
class CalibrationPoint:
    """Model-versus-measured memory at one configuration."""

    sketch: str
    epsilon: float
    stream_size: int
    measured_words: int
    model_words: float

    @property
    def ratio(self) -> float:
        """model / measured; > 1 means the model is conservative."""
        return self.model_words / max(1, self.measured_words)


def calibrate_gk(
    epsilons: Sequence[float] = (0.02, 0.005, 0.001),
    sizes: Sequence[int] = (50_000, 500_000),
    seed: int = 0,
) -> List[CalibrationPoint]:
    """Measure GK footprints across a grid and compare to the model."""
    rng = np.random.default_rng(seed)
    points = []
    for epsilon in epsilons:
        for size in sizes:
            sketch = GKSketch(epsilon)
            remaining = size
            while remaining > 0:
                chunk = min(remaining, 100_000)
                sketch.update_many(rng.integers(0, 10**9, chunk))
                remaining -= chunk
            points.append(
                CalibrationPoint(
                    sketch="gk",
                    epsilon=epsilon,
                    stream_size=size,
                    measured_words=sketch.memory_words(),
                    model_words=pure_gk_words(epsilon, size),
                )
            )
    return points


def calibrate_qdigest(
    epsilons: Sequence[float] = (0.02, 0.005),
    sizes: Sequence[int] = (50_000, 500_000),
    universe_log2: int = 20,
    seed: int = 1,
) -> List[CalibrationPoint]:
    """Measure Q-Digest footprints across a grid."""
    rng = np.random.default_rng(seed)
    points = []
    for epsilon in epsilons:
        for size in sizes:
            sketch = QDigestSketch(epsilon, universe_log2=universe_log2)
            remaining = size
            while remaining > 0:
                chunk = min(remaining, 100_000)
                sketch.update_many(
                    rng.integers(0, 2**universe_log2, chunk)
                )
                remaining -= chunk
            points.append(
                CalibrationPoint(
                    sketch="qdigest",
                    epsilon=epsilon,
                    stream_size=size,
                    measured_words=sketch.memory_words(),
                    model_words=qdigest_words(epsilon, universe_log2),
                )
            )
    return points
