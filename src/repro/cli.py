"""Command-line interface: a tiny data-stream warehouse shell.

Operates a persistent engine checkpoint directory::

    python -m repro init  /tmp/wh --epsilon 0.001 --kappa 10
    python -m repro ingest /tmp/wh data.npy            # stream a batch
    python -m repro ingest /tmp/wh data.npy --archive  # ...and end the step
    python -m repro query  /tmp/wh --phi 0.5 0.95 0.99
    python -m repro query  /tmp/wh --phi 0.5 --window 7
    python -m repro status /tmp/wh
    python -m repro fsck   /tmp/wh --repair            # verify checkpoint
    python -m repro fsck   /tmp/wh --wal /tmp/wal      # ...and the ingest WAL
    python -m repro cache-stats /tmp/wh --warm         # shared-cache counters
    python -m repro demo --steps 20                    # self-contained tour
    python -m repro demo --shards 4                    # sharded-cluster tour

``ingest`` accepts ``.npy`` files, whitespace/newline-separated text
files, or ``-`` for numbers on stdin.

Fault injection: ``ingest``, ``query`` and ``demo`` accept
``--fault-plan`` (inline JSON or a file path — see
:class:`repro.faults.FaultPlan`) to run the command against a disk that
fails on a deterministic seeded schedule; ``--fault-transcript`` dumps
the fired faults for replay or as a CI artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from .core.config import EngineConfig
from .core.engine import HybridQuantileEngine
from .faults import DiskFault, FaultPlan, FaultyDisk, RetryPolicy
from .ingest.archiver import ArchiveFailedError
from .persistence import (
    PersistenceError,
    load_engine,
    recover_checkpoint,
    save_engine,
)
from .storage.disk import SimulatedDisk
from .workloads import NormalWorkload


def _read_values(source: str) -> np.ndarray:
    """Load int64 values from .npy, a text file, or '-' (stdin)."""
    if source == "-":
        text = sys.stdin.read()
        return np.asarray(
            [int(token) for token in text.split()], dtype=np.int64
        )
    path = Path(source)
    if not path.exists():
        raise FileNotFoundError(source)
    if path.suffix == ".npy":
        return np.load(path).astype(np.int64)
    return np.asarray(
        [int(token) for token in path.read_text().split()], dtype=np.int64
    )


def _cmd_init(args: argparse.Namespace) -> int:
    directory = Path(args.warehouse)
    if (directory / "engine.json").exists() and not args.force:
        print(f"error: {directory} already holds an engine "
              "(use --force to overwrite)", file=sys.stderr)
        return 1
    storage_dir = args.storage_dir
    if storage_dir is None and args.storage_backend != "simulated":
        # A persistent warehouse gets a persistent run directory beside
        # the checkpoint (never inside: the checkpoint commit dance
        # renames the directory out from under anything stored there).
        storage_dir = str(directory) + ".runs"
    config = EngineConfig(
        epsilon=args.epsilon,
        kappa=args.kappa,
        block_elems=args.block_elems,
        query_workers=args.query_workers,
        ingest_mode=args.ingest_mode,
        shared_cache_blocks=args.shared_cache_blocks,
        prefetch_blocks=args.prefetch_blocks,
        sketch_backend=args.sketch_backend,
        storage_backend=args.storage_backend,
        storage_dir=storage_dir,
        object_tier_level=args.object_tier_level,
    )
    engine = HybridQuantileEngine(config=config)
    save_engine(engine, directory)
    print(f"initialized warehouse at {directory} "
          f"(epsilon={args.epsilon}, kappa={args.kappa}, "
          f"storage={args.storage_backend})")
    return 0


def _fault_plan_of(args: argparse.Namespace) -> Optional[FaultPlan]:
    spec = getattr(args, "fault_plan", None)
    return FaultPlan.from_spec(spec) if spec is not None else None


def _load_engine_cli(args: argparse.Namespace) -> HybridQuantileEngine:
    """Load the warehouse engine, on a fault-injecting disk if asked."""
    plan = _fault_plan_of(args)
    if plan is None:
        return load_engine(args.warehouse)
    # The disk must match the persisted block size, which lives in the
    # (recovered) checkpoint's engine state.
    directory = recover_checkpoint(args.warehouse)
    config = json.loads(
        (directory / "engine.json").read_text(encoding="utf-8")
    )["config"]
    disk = FaultyDisk(plan, block_elems=int(config["block_elems"]))
    # The recovery scan itself runs on the faulty disk; retry transient
    # faults with the warehouse's own policy (a fresh load each attempt
    # draws fresh fault decisions).
    policy = RetryPolicy(
        max_retries=int(config.get("archive_retries", 32)),
        backoff_seconds=float(config.get("retry_backoff_seconds", 0.002)),
        backoff_cap_seconds=float(
            config.get("retry_backoff_cap_seconds", 0.25)
        ),
    )
    try:
        return policy.call(lambda: load_engine(args.warehouse, disk=disk))
    except DiskFault:
        # The transcript matters most when the load itself gave up.
        _dump_transcript(args, disk)
        raise


def _dump_transcript(args: argparse.Namespace, disk: SimulatedDisk) -> None:
    path = getattr(args, "fault_transcript", None)
    if path is not None and isinstance(disk, FaultyDisk):
        disk.dump_transcript(path)
        print(f"fault transcript -> {path} "
              f"({disk.faults_fired} faults over {disk.operations} ops)")


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Stream a file of values into the warehouse (vectorized path)."""
    engine = _load_engine_cli(args)
    values = _read_values(args.source)
    if args.batch_size and args.batch_size > 0:
        for lo in range(0, len(values), args.batch_size):
            engine.stream_update_many(values[lo : lo + args.batch_size])
    else:
        engine.stream_update_many(values)
    message = f"streamed {len(values):,} elements"
    if args.archive:
        report = engine.end_time_step()
        # Background mode returns a provisional report; the checkpoint
        # flushes anyway, so surface the authoritative numbers.
        if not report.archived:
            flushed = engine.flush()
            if flushed:
                report = flushed[-1]
        message += (
            f"; archived step {report.step} "
            f"({report.io_total:,} disk accesses"
            + (", merged partitions" if report.merged_levels else "")
            + ")"
        )
    save_engine(engine, args.warehouse)
    stats = engine.ingest_stats
    if stats is not None and (stats.fault_retries or stats.disk_faults):
        message += (f" [{stats.disk_faults} disk faults, "
                    f"{stats.fault_retries} retries]")
    print(message)
    _dump_transcript(args, engine.disk)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    engine = _load_engine_cli(args)
    if engine.n_total == 0:
        print("error: warehouse is empty", file=sys.stderr)
        return 1
    if args.query_workers is not None:
        # Runtime override for this invocation only; the persisted
        # config keeps whatever `init --query-workers` chose.
        engine.set_query_workers(args.query_workers)
    print(f"{'phi':>6} {'value':>16} {'rank target':>12} {'disk I/O':>9}")
    # One pinned snapshot answers every phi: quick mode shares a single
    # TS merge across the list, accurate mode shares the block cache.
    results = engine.quantile_many(
        args.phi, mode=args.mode, window_steps=args.window
    )
    for phi, result in zip(args.phi, results):
        print(f"{phi:>6} {result.value:>16,} {result.target_rank:>12,} "
              f"{result.disk_accesses:>9}"
              + ("  DEGRADED" if result.degraded else ""))
    report = engine.reliability
    if not report.healthy:
        print(f"reliability: {report.disk_faults} disk faults, "
              f"{report.total_retries} retries, "
              f"{report.degraded_queries} degraded queries")
    _dump_transcript(args, engine.disk)
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    engine = load_engine(args.warehouse, repair=args.repair)
    layout = [len(p) for p in engine.store.partitions()]
    print(f"checkpoint OK: {len(layout)} partitions, "
          f"{engine.n_historical:,} historical elements over "
          f"{engine.steps_loaded} steps, "
          f"{engine.m_stream:,} buffered stream elements"
          + (" (repair mode)" if args.repair else ""))
    # File-backed storage backends fsck at construction (staging
    # orphans, and for the object tier a run duplicated across hot and
    # bucket by a crash mid-migration); surface what they repaired.
    report = getattr(engine.disk.backend, "fsck_report", None)
    if report is not None:
        if report:
            for line in report:
                print(f"storage fsck: {line}")
        else:
            print("storage fsck: clean")
    engine.close()
    if args.wal is not None:
        return _fsck_wal(args)
    return 0


def _fsck_wal(args: argparse.Namespace) -> int:
    """Validate (and with ``--repair`` salvage) an ingest WAL."""
    from .ingest.wal import WalError, scan_wal

    state = json.loads(
        (Path(args.warehouse) / "engine.json").read_text(encoding="utf-8")
    )
    watermark = int(state.get("wal_lsn", 0))
    try:
        scan = scan_wal(args.wal, salvage=args.repair)
    except WalError as exc:
        print(f"error: WAL corrupt: {exc} "
              "(rerun with --repair to truncate at the damage)",
              file=sys.stderr)
        return 1
    batches = sum(1 for r in scan.records if r.kind == "batch")
    seals = sum(1 for r in scan.records if r.kind == "seal")
    pending = sum(1 for r in scan.records if r.lsn > watermark)
    print(f"WAL OK: {scan.segments} segments, "
          f"{batches} batch frames, {seals} seal frames, "
          f"last LSN {scan.last_lsn} "
          f"(checkpoint watermark {watermark}, "
          f"{pending} records pending replay)"
          + (" [torn tail]" if scan.torn_tail else ""))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    engine = load_engine(args.warehouse)
    memory = engine.memory_report()
    print(f"warehouse        : {args.warehouse}")
    print(f"epsilon / kappa  : {engine.config.epsilon} / "
          f"{engine.config.kappa}")
    print(f"historical elems : {engine.n_historical:,} "
          f"({engine.steps_loaded} steps)")
    print(f"live stream elems: {engine.m_stream:,}")
    print(f"storage backend  : {engine.config.storage_backend}"
          + (
              f" ({engine.config.storage_dir})"
              if engine.config.storage_dir is not None
              else ""
          ))
    print(f"memory words     : {memory.total_words:,} "
          f"({memory.total_megabytes:.3f} MB)")
    print(f"window sizes     : {engine.available_window_sizes()}")
    layout = [
        f"L{p.level}[{p.start_step}-{p.end_step}]x{len(p):,}"
        for p in engine.store.partitions()
    ]
    print(f"partitions       : {' '.join(layout) if layout else '(none)'}")
    return 0


def _print_backend_stats(engine: HybridQuantileEngine) -> None:
    """Object-tier request counters (only when the tier is live)."""
    stats = engine.disk.backend.stats()
    if not (stats.gets or stats.puts or stats.lists or stats.object_runs):
        return
    print(f"object tier      : {stats.object_runs:,} runs cold, "
          f"{stats.hot_runs:,} hot")
    print(f"object requests  : {stats.gets:,} GETs "
          f"({stats.get_blocks:,} blocks), {stats.puts:,} PUTs, "
          f"{stats.lists:,} LISTs, {stats.migrations:,} migrations")


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    engine = load_engine(args.warehouse)
    cache = engine.shared_cache
    if cache is None:
        print("shared cache     : disabled "
              "(re-init with --shared-cache-blocks N to enable)")
        _print_backend_stats(engine)
        return 0
    if args.warm:
        if engine.n_total == 0:
            print("error: warehouse is empty", file=sys.stderr)
            return 1
        charged = engine.warm_shared_cache(args.phi)
        print(f"warm pass        : {charged} blocks charged "
              f"for phis {args.phi}")
    stats = cache.stats()
    print(f"capacity blocks  : {stats.capacity_blocks:,}")
    print(f"resident blocks  : {stats.resident_blocks:,}")
    print(f"lookups          : {stats.lookups:,} "
          f"({stats.hits:,} hits, {stats.misses:,} misses, "
          f"hit rate {stats.hit_rate:.3f})")
    print(f"evictions        : {stats.evictions:,}")
    print(f"invalidated      : {stats.invalidated_blocks:,} blocks over "
          f"{stats.invalidated_runs:,} retired runs")
    print(f"prefetch width   : {engine.config.prefetch_blocks} blocks/run")
    _print_backend_stats(engine)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    if args.shards > 1:
        return _cmd_demo_cluster(args)
    config = EngineConfig(
        epsilon=args.epsilon, kappa=args.kappa, block_elems=100,
        query_workers=args.query_workers, ingest_mode=args.ingest_mode,
        shared_cache_blocks=args.shared_cache_blocks,
        sketch_backend=args.sketch_backend,
        storage_backend=args.storage_backend,
    )
    plan = _fault_plan_of(args)
    disk: Optional[SimulatedDisk] = None
    if plan is not None:
        disk = FaultyDisk(plan, block_elems=config.block_elems)
    engine = HybridQuantileEngine(config=config, disk=disk)
    workload = NormalWorkload(seed=7)
    update_batch = (
        args.batch_size if args.batch_size and args.batch_size > 0 else None
    )
    print(f"demo: {args.steps} steps x {args.batch:,} elements (Normal, "
          f"{args.ingest_mode} ingest"
          + (f", update batch {update_batch:,}" if update_batch else "")
          + (", fault injection on" if plan is not None else "")
          + (
              f", {args.storage_backend} storage"
              if args.storage_backend != "simulated"
              else ""
          )
          + ")")
    workload.feed(
        engine, args.steps, args.batch, update_batch=update_batch
    )
    engine.flush()
    engine.stream_update_many(workload.generate(args.batch))
    for phi in (0.25, 0.5, 0.75, 0.95, 0.99):
        result = engine.quantile(phi)
        print(f"  phi={phi:<5} -> {result.value:>12,} "
              f"({result.disk_accesses} disk accesses"
              + (", degraded" if result.degraded else "")
              + ")")
    memory = engine.memory_report()
    print(f"memory: {memory.total_words:,} words over "
          f"{engine.n_total:,} elements")
    if engine.shared_cache is not None:
        cache = engine.shared_cache.stats()
        print(f"shared cache: {cache.hits}/{cache.lookups} hits "
              f"({cache.resident_blocks}/{cache.capacity_blocks} blocks "
              f"resident, {cache.evictions} evictions)")
    backend_stats = engine.disk.backend.stats()
    if backend_stats.gets or backend_stats.puts or backend_stats.object_runs:
        print(f"object tier: {backend_stats.gets} GETs "
              f"({backend_stats.get_blocks} blocks), "
              f"{backend_stats.puts} PUTs, "
              f"{backend_stats.migrations} migrations, "
              f"{backend_stats.object_runs} runs cold / "
              f"{backend_stats.hot_runs} hot")
    stats = engine.ingest_stats
    if stats is not None:
        print(f"ingest: stalled {stats.stall_seconds * 1e3:.1f} ms over "
              f"{stats.batches_archived} steps "
              f"(max queue depth {stats.max_queue_depth})")
    report = engine.reliability
    if not report.healthy:
        print(f"reliability: {report.disk_faults} disk faults, "
              f"{report.archive_retries} archive retries, "
              f"{report.probe_retries} probe retries, "
              f"{report.degraded_queries} degraded queries")
    _dump_transcript(args, engine.disk)
    engine.close()
    return 0


def _cmd_demo_cluster(args: argparse.Namespace) -> int:
    """Sharded demo: fan a workload across N shards, gather quantiles."""
    from .cluster import ClusterEngine

    config = EngineConfig(
        epsilon=args.epsilon, kappa=args.kappa, block_elems=100,
        query_workers=args.query_workers,
        sketch_backend=args.sketch_backend,
    )
    plan = _fault_plan_of(args)
    cluster = ClusterEngine(
        shards=args.shards, config=config, fault_plan=plan
    )
    workload = NormalWorkload(seed=7)
    update_batch = (
        args.batch_size if args.batch_size and args.batch_size > 0 else None
    )
    print(f"demo: {args.steps} steps x {args.batch:,} elements over "
          f"{args.shards} shards ({args.sketch_backend} sketches"
          + (f", update batch {update_batch:,}" if update_batch else "")
          + (
              ", fault injection on"
              + (
                  f" (shards {list(plan.shard_scope)})"
                  if plan is not None and plan.shard_scope is not None
                  else ""
              )
              if plan is not None
              else ""
          )
          + ")")
    workload.feed(
        cluster, args.steps, args.batch, update_batch=update_batch
    )
    cluster.flush()
    cluster.stream_update_many(workload.generate(args.batch))
    for phi in (0.25, 0.5, 0.75, 0.95, 0.99):
        result = cluster.quantile(phi)
        print(f"  phi={phi:<5} -> {result.value:>12,} "
              f"({result.disk_accesses} disk accesses)")
    sims = cluster.per_shard_sim_seconds()
    print(f"elements: {cluster.n_total:,} over {args.shards} shards; "
          f"simulated I/O critical path {max(sims) * 1e3:.1f} ms "
          f"(single-device equivalent {sum(sims) * 1e3:.1f} ms)")
    for report in cluster.shard_reports():
        print(f"  shard {report['shard']}: "
              f"{report['n_historical'] + report['m_stream']:,} elems, "
              f"{report['io_total']:,} block I/Os, "
              f"{report['sim_seconds'] * 1e3:.1f} ms simulated")
    transcript_dir = getattr(args, "fault_transcript", None)
    if transcript_dir is not None and plan is not None:
        written = cluster.dump_fault_transcripts(transcript_dir)
        print(f"fault transcripts -> {transcript_dir} "
              f"({len(written)} shards)")
    cluster.close()
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .serving import run_serving_bench

    clients = tuple(args.clients)
    print(f"serve-bench: {args.steps} steps x {args.batch:,} elements, "
          f"clients {list(clients)}, {args.requests} requests/client")
    doc = run_serving_bench(
        steps=args.steps,
        batch=args.batch,
        clients=clients,
        requests_per_client=args.requests,
        seed=args.seed,
    )
    print(f"{'clients':>7} {'coalesce':>8} {'served':>7} {'merges':>7} "
          f"{'ratio':>6} {'qps':>9} {'p50 ms':>7} {'p99 ms':>7}")
    for row in doc["closed_loop"]:
        print(f"{row['clients']:>7} {str(row['coalesce']):>8} "
              f"{row['served']:>7} {row['ts_merges']:>7} "
              f"{row['coalescing_ratio']:>6.3f} "
              f"{row['throughput_qps']:>9.0f} {row['p50_ms']:>7.2f} "
              f"{row['p99_ms']:>7.2f}"
              + ("" if row["bit_identical"] else "  MISMATCH"))
    for row in doc["overload"]:
        print(f"overload[{row['mode']}]: {row['served']}/{row['requests']} "
              f"served, {row['rejected']} rejected, "
              f"{row['degraded']} degraded, "
              f"peak queue {row['peak_queue_depth']} "
              f"(bound {row['queue_bound']}), p99 {row['p99_ms']:.1f} ms")
    if args.output is not None:
        Path(args.output).write_text(
            json.dumps(doc, indent=2) + "\n", encoding="utf-8"
        )
        print(f"results -> {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantiles over the union of historical and "
                    "streaming data (VLDB 2016 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    init = commands.add_parser("init", help="create a warehouse directory")
    init.add_argument("warehouse")
    init.add_argument("--epsilon", type=float, default=1e-3)
    init.add_argument("--kappa", type=int, default=10)
    init.add_argument("--block-elems", type=int, default=1024)
    init.add_argument(
        "--query-workers", type=int, default=1,
        help="threads probing partitions in parallel (default 1: serial)",
    )
    init.add_argument(
        "--ingest-mode", choices=("sync", "background"), default="sync",
        help="archive batches synchronously (default) or on a "
             "background thread that overlaps with updates and queries",
    )
    init.add_argument(
        "--shared-cache-blocks", type=int, default=0,
        help="capacity of the process-wide shared block cache "
             "(default 0: disabled, per-query accounting only)",
    )
    init.add_argument(
        "--prefetch-blocks", type=int, default=4,
        help="max contiguous blocks the accurate path prefetches per "
             "run once its filters narrow (needs a shared cache)",
    )
    init.add_argument(
        "--sketch-backend", choices=("gk", "kll"), default="gk",
        help="stream sketch: gk (deterministic, default) or kll "
             "(randomized, mergeable across shards)",
    )
    init.add_argument(
        "--storage-backend", choices=("simulated", "mmap", "object"),
        default="simulated",
        help="where run payloads live: simulated (in-memory, default), "
             "mmap (one file per run), or object (tiered hot files + "
             "emulated object bucket with GET/PUT accounting)",
    )
    init.add_argument(
        "--storage-dir", metavar="DIR", default=None,
        help="directory for mmap/object run files "
             "(default: <warehouse>.runs)",
    )
    init.add_argument(
        "--object-tier-level", type=int, default=1,
        help="warehouse level at which runs age into the object tier "
             "(object backend only; default 1)",
    )
    init.add_argument("--force", action="store_true")
    init.set_defaults(handler=_cmd_init)

    def add_fault_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--fault-plan", metavar="SPEC", default=None,
            help="inject disk faults: inline JSON or a JSON file "
                 '(e.g. \'{"seed": 7, "read_error_rate": 0.05}\')',
        )
        sub.add_argument(
            "--fault-transcript", metavar="PATH", default=None,
            help="write the fired faults (plan + events) as JSON",
        )

    ingest = commands.add_parser("ingest", help="stream a batch of values")
    ingest.add_argument("warehouse")
    ingest.add_argument("source", help=".npy / text file / '-' for stdin")
    ingest.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="chunk the source into vectorized updates of this many "
        "elements (0 = one update for the whole source)",
    )
    ingest.add_argument(
        "--archive", action="store_true",
        help="end the time step after streaming",
    )
    add_fault_options(ingest)
    ingest.set_defaults(handler=_cmd_ingest)

    query = commands.add_parser("query", help="ask for quantiles")
    query.add_argument("warehouse")
    query.add_argument("--phi", type=float, nargs="+", default=[0.5])
    query.add_argument(
        "--mode", choices=("accurate", "quick"), default="accurate"
    )
    query.add_argument("--window", type=int, default=None)
    query.add_argument(
        "--query-workers", type=int, default=None,
        help="override the warehouse's probe parallelism for this query",
    )
    add_fault_options(query)
    query.set_defaults(handler=_cmd_query)

    status = commands.add_parser("status", help="show warehouse state")
    status.add_argument("warehouse")
    status.set_defaults(handler=_cmd_status)

    fsck = commands.add_parser(
        "fsck", help="verify (and optionally repair) a checkpoint",
    )
    fsck.add_argument("warehouse")
    fsck.add_argument(
        "--repair", action="store_true",
        help="salvage checksum-mismatched partitions that are still "
             "structurally valid sorted runs, rewriting the manifest; "
             "with --wal, also truncate the log at mid-log corruption",
    )
    fsck.add_argument(
        "--wal", metavar="DIR", default=None,
        help="also validate the ingest write-ahead log in DIR against "
             "the checkpoint's replay watermark",
    )
    fsck.set_defaults(handler=_cmd_fsck)

    demo = commands.add_parser("demo", help="self-contained demonstration")
    demo.add_argument("--steps", type=int, default=10)
    demo.add_argument("--batch", type=int, default=20_000)
    demo.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="chunk each step's elements into vectorized updates of "
        "this many elements (0 = one update per step)",
    )
    demo.add_argument("--epsilon", type=float, default=0.01)
    demo.add_argument("--kappa", type=int, default=10)
    demo.add_argument(
        "--query-workers", type=int, default=1,
        help="threads probing partitions in parallel (default 1: serial)",
    )
    demo.add_argument(
        "--ingest-mode", choices=("sync", "background"), default="sync",
        help="archive batches synchronously (default) or in the background",
    )
    demo.add_argument(
        "--shared-cache-blocks", type=int, default=0,
        help="capacity of the process-wide shared block cache "
             "(default 0: disabled)",
    )
    demo.add_argument(
        "--shards", type=int, default=1,
        help="run the demo over a sharded cluster of this many engines "
             "(default 1: a single engine); --fault-plan may carry a "
             "shard_scope to target specific shards, and "
             "--fault-transcript names a directory for per-shard dumps",
    )
    demo.add_argument(
        "--sketch-backend", choices=("gk", "kll"), default="gk",
        help="stream sketch: gk (deterministic, default) or kll "
             "(randomized, mergeable across shards)",
    )
    demo.add_argument(
        "--storage-backend", choices=("simulated", "mmap", "object"),
        default="simulated",
        help="run the demo on real storage: mmap files or the emulated "
             "object store (a private tempdir, removed on exit)",
    )
    add_fault_options(demo)
    demo.set_defaults(handler=_cmd_demo)

    cache_stats = commands.add_parser(
        "cache-stats",
        help="show the shared block-cache counters of a warehouse",
    )
    cache_stats.add_argument("warehouse")
    cache_stats.add_argument(
        "--warm", action="store_true",
        help="run one warming pass for --phi before reading the stats",
    )
    cache_stats.add_argument(
        "--phi", type=float, nargs="+", default=[0.5, 0.95, 0.99],
        help="phis the --warm pass prefetches block ranges for",
    )
    cache_stats.set_defaults(handler=_cmd_cache_stats)

    serve = commands.add_parser(
        "serve-bench",
        help="benchmark the concurrent query service (ablation A8)",
    )
    serve.add_argument("--steps", type=int, default=6)
    serve.add_argument("--batch", type=int, default=20_000)
    serve.add_argument(
        "--clients", type=int, nargs="+", default=[1, 8, 32],
        help="closed-loop client counts to sweep",
    )
    serve.add_argument(
        "--requests", type=int, default=25,
        help="requests per closed-loop client",
    )
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the full result document as JSON",
    )
    serve.set_defaults(handler=_cmd_serve_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (
        PersistenceError,
        FileNotFoundError,
        ValueError,
        DiskFault,
        ArchiveFailedError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
