"""The strawman baseline (Section 2).

Keep H fully sorted on disk at all times and run a streaming sketch on
R.  Accuracy matches the hybrid engine (error proportional to the
stream only), but every time step pays a full read-plus-write pass over
*all* historical data to merge in the new batch — the disk-I/O cost the
hybrid engine's leveled merging amortizes away.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional

import numpy as np

from ..core.bounds import CombinedSummary
from ..core.config import EngineConfig
from ..core.engine import QueryResult, StepReport
from ..core.filters import AccurateSearch
from ..core.summaries import PartitionSummary, StreamSummary
from ..sketches.base import rank_for_phi
from ..sketches.gk import GKSketch
from ..storage.disk import SimulatedDisk
from ..storage.runfile import SortedRun
from ..warehouse.partition import Partition


class StrawmanEngine:
    """Fully sorted historical data plus a GK stream sketch.

    Implements the same driver protocol as the hybrid engine, so the
    experiment runner can compare all three approaches directly.
    """

    def __init__(
        self,
        epsilon: float,
        block_elems: int = 1024,
        disk: Optional[SimulatedDisk] = None,
    ) -> None:
        self.config = EngineConfig(epsilon=epsilon, block_elems=block_elems)
        self.disk = disk if disk is not None else SimulatedDisk(
            block_elems=block_elems
        )
        self._gk = GKSketch(self.config.epsilon2 / 2.0)
        self._stream_chunks: List[np.ndarray] = []
        self._m = 0
        self._step = 0
        self._partition: Optional[Partition] = None

    def stream_update(self, value: int) -> None:
        """Process one live stream element."""
        self._gk.update(value)
        self._stream_chunks.append(np.asarray([value], dtype=np.int64))
        self._m += 1

    def stream_update_batch(self, values: Iterable[int]) -> None:
        """Process many live stream elements at once."""
        arr = np.asarray(
            values if isinstance(values, np.ndarray) else list(values),
            dtype=np.int64,
        )
        if arr.size == 0:
            return
        self._gk.update_many(arr)
        self._stream_chunks.append(arr.copy())
        self._m += int(arr.size)

    def end_time_step(self) -> StepReport:
        """Merge the batch into the single sorted historical run."""
        self._step += 1
        batch = (
            np.concatenate(self._stream_chunks)
            if self._stream_chunks
            else np.empty(0, dtype=np.int64)
        )
        before = self.disk.stats.counters.snapshot()
        before_merge = self.disk.stats.merge.snapshot()
        started = time.perf_counter()
        sorted_batch = np.sort(batch)
        if self._partition is None:
            self.disk.stats.set_phase("load")
            run = SortedRun(self.disk, sorted_batch)
        else:
            # Read all of history, merge the in-memory batch in, and
            # write the combined run back: the full pass the hybrid
            # engine's leveled merging amortizes away.
            self.disk.stats.set_phase("merge")
            self.disk.charge_sequential_read(len(self._partition.run))
            merged = np.sort(
                np.concatenate([self._partition.run.values, sorted_batch])
            )
            run = SortedRun(self.disk, merged, charge_write=True)
            self.disk.stats.set_phase("load")
        partition = Partition(
            level=0, start_step=1, end_step=self._step, run=run
        )
        partition.summary = PartitionSummary.build(
            partition, self.config.epsilon1
        )
        self._partition = partition
        wall = time.perf_counter() - started
        self._stream_chunks = []
        self._m = 0
        self._gk = GKSketch(self.config.epsilon2 / 2.0)
        io_delta = self.disk.stats.counters.delta_since(before)
        merge_delta = self.disk.stats.merge.delta_since(before_merge)
        return StepReport(
            step=self._step,
            batch_elems=int(batch.size),
            io_total=io_delta.total,
            io_load=io_delta.total - merge_delta.total,
            io_sort=0,
            io_merge=merge_delta.total,
            cpu_seconds={"load": wall, "sort": 0.0, "merge": 0.0,
                         "summary": 0.0},
            sim_seconds=self.disk.latency.seconds(io_delta),
            merged_levels=merge_delta.total > 0,
        )

    @property
    def n_historical(self) -> int:
        """Number of archived historical elements n."""
        return len(self._partition) if self._partition else 0

    @property
    def m_stream(self) -> int:
        """Number of live (unarchived) stream elements m."""
        return self._m

    @property
    def n_total(self) -> int:
        """Total number of elements N = n + m."""
        return self.n_historical + self._m

    def query_rank(self, rank: int, mode: str = "accurate") -> QueryResult:
        """Return a value whose true rank approximates ``rank``."""
        started = time.perf_counter()
        io_before = self.disk.stats.counters.snapshot()
        self.disk.stats.set_phase("query")
        ss = StreamSummary.extract(self._gk, self.config.epsilon2)
        partitions = [self._partition] if self._partition else []
        summaries = [p.summary for p in partitions]
        combined = CombinedSummary.build(summaries, ss)
        total = combined.total_size
        rank = max(1, min(int(rank), total))
        def stream_rank(value: int) -> float:
            """Rank of ``value`` in R from the live sketch bracket."""
            if self._gk.n == 0:
                return 0.0
            lo, hi = self._gk.rank_bounds(int(value))
            return (lo + hi) / 2.0

        search = AccurateSearch(
            partitions=partitions,
            stream_summary=ss,
            combined=combined,
            config=self.config,
            rank=rank,
            stream_rank_fn=stream_rank,
        )
        outcome = search.run()
        self.disk.stats.set_phase("load")
        io_delta = self.disk.stats.counters.delta_since(io_before)
        return QueryResult(
            value=outcome.value,
            target_rank=rank,
            total_size=total,
            mode="strawman",
            estimated_rank=outcome.estimated_rank,
            disk_accesses=outcome.random_blocks,
            iterations=outcome.iterations,
            truncated=outcome.truncated,
            wall_seconds=time.perf_counter() - started,
            sim_seconds=self.disk.latency.seconds(io_delta),
        )

    def quantile(self, phi: float, mode: str = "accurate") -> QueryResult:
        """Return an approximate ``phi``-quantile (Definition 1)."""
        return self.query_rank(rank_for_phi(phi, self.n_total))

    def memory_words(self) -> int:
        """Current memory footprint in 8-byte words."""
        words = self._gk.memory_words() + self.config.beta2 + 2
        if self._partition is not None and self._partition.summary:
            words += self._partition.summary.memory_words()
        return words
