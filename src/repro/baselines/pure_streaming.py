"""The pure-streaming baseline (Section 2).

A single streaming sketch (GK or Q-Digest; RANDOM as an extension)
processes *every* element of T — historical and live alike — and
answers quantile queries from memory with error proportional to
``eps * N``, the full dataset size.  This is the approach the paper's
figures compare against.

For the update-cost comparison (Figure 6/7) the baseline follows the
same loading paradigm as the hybrid engine: batches are written to the
warehouse and partitions are merged on the identical leveled schedule —
but without sorting, so it pays load and merge I/O only.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional

import numpy as np

from ..core.engine import QueryResult, StepReport
from ..sketches.base import QuantileSketch, rank_for_phi
from ..sketches.gk import GKSketch
from ..sketches.mrl import MRL99Sketch
from ..sketches.qdigest import QDigestSketch
from ..sketches.random_sampler import RandomSamplerSketch
from ..storage.disk import SimulatedDisk


class _RawLeveledLoader:
    """Mirrors LeveledStore's I/O schedule for unsorted batches.

    Tracks partition sizes only; charges the same load writes and
    merge read+write passes as the hybrid store, minus sorting.
    """

    def __init__(self, disk: SimulatedDisk, kappa: int) -> None:
        self._disk = disk
        self._kappa = kappa
        self._levels: List[List[int]] = [[]]

    def add_batch(self, num_elems: int) -> None:
        """Charge the load write for one unsorted batch."""
        self._make_room(0)
        self._disk.stats.set_phase("load")
        self._disk.charge_sequential_write(num_elems)
        self._levels[0].append(num_elems)

    def _make_room(self, level: int) -> None:
        if len(self._levels[level]) < self._kappa:
            return
        if level + 1 >= len(self._levels):
            self._levels.append([])
        self._make_room(level + 1)
        sizes = self._levels[level]
        self._disk.stats.set_phase("merge")
        for size in sizes:
            self._disk.charge_sequential_read(size)
        total = sum(sizes)
        self._disk.charge_sequential_write(total)
        self._disk.stats.set_phase("load")
        self._levels[level] = []
        self._levels[level + 1].append(total)


def make_sketch(
    kind: str,
    epsilon: float,
    universe_log2: int = 34,
    seed: Optional[int] = None,
) -> QuantileSketch:
    """Build a streaming sketch by name: 'gk', 'qdigest', 'random' or 'mrl'."""
    if kind == "gk":
        return GKSketch(epsilon)
    if kind == "qdigest":
        return QDigestSketch(epsilon, universe_log2=universe_log2)
    if kind == "random":
        return RandomSamplerSketch.for_epsilon(epsilon, seed=seed)
    if kind == "mrl":
        return MRL99Sketch.for_epsilon(epsilon, seed=seed)
    raise ValueError(f"unknown sketch kind: {kind!r}")


class PureStreamingEngine:
    """Answer quantiles on T with a single streaming sketch.

    Implements the same driver protocol as the hybrid engine
    (``stream_update_batch`` / ``end_time_step`` / ``quantile``), so
    experiments can swap baselines in transparently.
    """

    def __init__(
        self,
        kind: str = "gk",
        epsilon: float = 1e-3,
        kappa: int = 10,
        block_elems: int = 1024,
        universe_log2: int = 34,
        disk: Optional[SimulatedDisk] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.epsilon = epsilon
        self.disk = disk if disk is not None else SimulatedDisk(
            block_elems=block_elems
        )
        self.sketch = make_sketch(
            kind, epsilon, universe_log2=universe_log2, seed=seed
        )
        self._loader = _RawLeveledLoader(self.disk, kappa)
        self._pending_elems = 0
        self._step = 0
        self._n_total = 0

    def stream_update(self, value: int) -> None:
        """Process one live stream element."""
        self.sketch.update(value)
        self._pending_elems += 1
        self._n_total += 1

    def stream_update_batch(self, values: Iterable[int]) -> None:
        """Process many live stream elements at once."""
        arr = np.asarray(
            values if isinstance(values, np.ndarray) else list(values),
            dtype=np.int64,
        )
        if arr.size == 0:
            return
        self.sketch.update_many(arr)
        self._pending_elems += int(arr.size)
        self._n_total += int(arr.size)

    def end_time_step(self) -> StepReport:
        """Archive the batch (I/O only); the sketch is never reset."""
        self._step += 1
        before = self.disk.stats.counters.snapshot()
        before_load = self.disk.stats.load.snapshot()
        before_merge = self.disk.stats.merge.snapshot()
        started = time.perf_counter()
        self._loader.add_batch(self._pending_elems)
        wall = time.perf_counter() - started
        batch = self._pending_elems
        self._pending_elems = 0
        io_delta = self.disk.stats.counters.delta_since(before)
        load_delta = self.disk.stats.load.delta_since(before_load)
        merge_delta = self.disk.stats.merge.delta_since(before_merge)
        return StepReport(
            step=self._step,
            batch_elems=batch,
            io_total=io_delta.total,
            io_load=load_delta.total,
            io_sort=0,
            io_merge=merge_delta.total,
            cpu_seconds={"load": wall, "sort": 0.0, "merge": 0.0,
                         "summary": 0.0},
            sim_seconds=self.disk.latency.seconds(io_delta),
            merged_levels=merge_delta.total > 0,
        )

    @property
    def n_total(self) -> int:
        """Total number of elements N = n + m."""
        return self._n_total

    @property
    def m_stream(self) -> int:
        """Number of live (unarchived) stream elements m."""
        return self._pending_elems

    def query_rank(self, rank: int, mode: str = "accurate") -> QueryResult:
        """Answer from the sketch; error is ``eps * N`` regardless of mode."""
        started = time.perf_counter()
        rank = max(1, min(int(rank), self._n_total))
        value = self.sketch.query_rank(rank)
        return QueryResult(
            value=int(value),
            target_rank=rank,
            total_size=self._n_total,
            mode="streaming",
            estimated_rank=float(rank),
            disk_accesses=0,
            iterations=0,
            truncated=False,
            wall_seconds=time.perf_counter() - started,
            sim_seconds=0.0,
        )

    def quantile(self, phi: float, mode: str = "accurate") -> QueryResult:
        """Return an approximate ``phi``-quantile (Definition 1)."""
        return self.query_rank(rank_for_phi(phi, self._n_total))

    def memory_words(self) -> int:
        """Current memory footprint in 8-byte words."""
        return self.sketch.memory_words()
