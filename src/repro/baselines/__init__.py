"""Baselines the paper compares against: pure streaming and strawman."""

from .pure_streaming import PureStreamingEngine, make_sketch
from .strawman import StrawmanEngine

__all__ = ["PureStreamingEngine", "StrawmanEngine", "make_sketch"]
