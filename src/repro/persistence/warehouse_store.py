"""Durable storage for the historical warehouse HD.

The simulated block device measures I/O; this module makes the
warehouse *durable*: every partition is written to a ``.npy`` file in a
directory, described by a versioned JSON manifest that is replaced
atomically (write-to-temp then ``os.replace``), so a crash mid-save
leaves the previous state intact.  CRC32 checksums in the manifest
detect corrupted or tampered partition files on load; ``repair`` mode
salvages files that are still structurally valid sorted runs and
rewrites the manifest.  (Whole-checkpoint atomicity — staging the
complete directory and committing it with one rename — lives one level
up, in :mod:`repro.persistence.checkpoint`.)
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from pathlib import Path
from typing import List, Optional

import numpy as np

from ..storage.disk import SimulatedDisk
from ..storage.fsutil import atomic_write_json, fsync_dir, fsync_file
from ..storage.runfile import SortedRun
from ..warehouse.leveled_store import LeveledStore, SummaryBuilder
from ..warehouse.partition import Partition

MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_FORMAT = "repro-warehouse-v1"


class PersistenceError(RuntimeError):
    """Raised when a warehouse directory is missing, corrupt or stale."""


def _partition_filename(partition: Partition) -> str:
    return (
        f"part-L{partition.level}"
        f"-{partition.start_step:06d}-{partition.end_step:06d}.npy"
    )


def _crc32_of(path: Path) -> int:
    checksum = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            checksum = zlib.crc32(chunk, checksum)
    return checksum


def save_store(
    store: LeveledStore,
    directory: "str | Path",
    reuse_from: "Optional[str | Path]" = None,
) -> Path:
    """Persist every partition of ``store`` plus an atomic manifest.

    Partition files already present from a previous save are rewritten
    only if their content changed (same name implies same step range,
    but a merged layout produces new names); files no longer referenced
    are removed after the new manifest is in place.  Returns the
    manifest path.

    ``reuse_from`` names a previous checkpoint's warehouse directory:
    partitions whose file already exists there are hard-linked (copied
    when linking fails) instead of rewritten — partition files are
    immutable, so sharing them across checkpoints is safe and makes
    incremental checkpoints cheap.  Checksums always cover the bytes
    actually on disk.
    """
    directory = Path(directory)
    reuse = Path(reuse_from) if reuse_from is not None else None
    directory.mkdir(parents=True, exist_ok=True)
    manifest_levels = []
    wanted_files = {MANIFEST_NAME}
    for level_index in range(store.num_levels):
        level_entries = []
        for partition in store.level(level_index):
            filename = _partition_filename(partition)
            path = directory / filename
            if not path.exists():
                source = reuse / filename if reuse is not None else None
                if source is not None and source.exists():
                    try:
                        os.link(source, path)
                    except OSError:
                        shutil.copy2(source, path)
                else:
                    np.save(path, partition.run.values)
                    fsync_file(path)
            level_entries.append(
                {
                    "file": filename,
                    "level": partition.level,
                    "start_step": partition.start_step,
                    "end_step": partition.end_step,
                    "num_elems": len(partition),
                    "crc32": _crc32_of(path),
                }
            )
            wanted_files.add(filename)
        manifest_levels.append(level_entries)
    manifest = {
        "format": _MANIFEST_FORMAT,
        "kappa": store.kappa,
        "steps_loaded": store.steps_loaded,
        "levels": manifest_levels,
    }
    manifest_path = _write_manifest(directory, manifest)
    for stale in directory.glob("part-*.npy"):
        if stale.name not in wanted_files:
            stale.unlink()
    fsync_dir(directory)
    return manifest_path


def _write_manifest(directory: Path, manifest: dict) -> Path:
    """Atomically replace the manifest (the shared fsutil dance)."""
    return atomic_write_json(
        directory / MANIFEST_NAME, manifest, sync_dir=False
    )


def _salvage_partition(path: Path, entry: dict) -> Optional[np.ndarray]:
    """Try to adopt a checksum-mismatched partition file.

    The file is acceptable iff it still parses as an integer array of
    exactly the manifest's length, sorted ascending — i.e. a
    structurally valid sorted run whose recorded checksum is merely
    stale.  Returns the array, or ``None`` when the file is truly
    corrupt (unparseable, wrong shape, wrong dtype, or out of order).
    """
    try:
        data = np.load(path)
    except Exception:
        return None
    if data.ndim != 1 or not np.issubdtype(data.dtype, np.integer):
        return None
    if len(data) != int(entry["num_elems"]):
        return None
    if len(data) > 1 and not bool(np.all(np.diff(data) >= 0)):
        return None
    return data


def load_store(
    directory: "str | Path",
    disk: SimulatedDisk,
    kappa: Optional[int] = None,
    summary_builder: Optional[SummaryBuilder] = None,
    verify_checksums: bool = True,
    store_cls: type = LeveledStore,
    repair: bool = False,
) -> LeveledStore:
    """Rebuild a :class:`LeveledStore` from a saved directory.

    Raises :class:`PersistenceError` on a missing/garbled manifest, a
    kappa mismatch, or (with ``verify_checksums``) corrupted partition
    files.  Loading charges sequential reads for every partition, as a
    real recovery scan would.  ``store_cls`` selects the store flavour
    (e.g. LeveledCompactionStore) the layout should be adopted into.

    With ``repair=True``, a partition whose checksum disagrees with the
    manifest is adopted anyway when its content is still a structurally
    valid sorted run of the recorded length (see
    :func:`_salvage_partition`), and the manifest is rewritten with the
    corrected checksum; an unsalvageable file still raises.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise PersistenceError(f"no manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"garbled manifest: {exc}") from exc
    if manifest.get("format") != _MANIFEST_FORMAT:
        raise PersistenceError(
            f"unknown manifest format {manifest.get('format')!r}"
        )
    stored_kappa = int(manifest["kappa"])
    if kappa is not None and kappa != stored_kappa:
        raise PersistenceError(
            f"store was saved with kappa={stored_kappa}, requested {kappa}"
        )
    store = store_cls(
        disk, kappa=stored_kappa, summary_builder=summary_builder
    )
    levels: List[List[Partition]] = []
    repaired = 0
    for level_entries in manifest["levels"]:
        level: List[Partition] = []
        for entry in level_entries:
            path = directory / entry["file"]
            if not path.exists():
                raise PersistenceError(f"missing partition file {path}")
            if verify_checksums and _crc32_of(path) != entry["crc32"]:
                data = _salvage_partition(path, entry) if repair else None
                if data is None:
                    raise PersistenceError(
                        f"checksum mismatch in {path}"
                        + (" (unrepairable)" if repair else "")
                    )
                entry["crc32"] = _crc32_of(path)
                repaired += 1
            else:
                try:
                    data = np.load(path)
                except Exception as exc:
                    raise PersistenceError(
                        f"unreadable partition file {path}: {exc}"
                    ) from exc
            if len(data) != entry["num_elems"]:
                raise PersistenceError(
                    f"{path} holds {len(data)} elements, manifest says "
                    f"{entry['num_elems']}"
                )
            disk.charge_sequential_read(len(data))
            run = SortedRun(disk, data, charge_write=False)
            level.append(
                Partition(
                    level=entry["level"],
                    start_step=entry["start_step"],
                    end_step=entry["end_step"],
                    run=run,
                )
            )
        levels.append(level)
    if repaired:
        # Persist the corrected checksums so the next load is clean.
        _write_manifest(directory, manifest)
    store.load_partitions(levels)
    return store
