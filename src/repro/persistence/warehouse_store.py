"""Durable storage for the historical warehouse HD.

The simulated block device measures I/O; this module makes the
warehouse *durable*: every partition is written to a ``.npy`` file in a
directory, described by a versioned JSON manifest that is replaced
atomically (write-to-temp then ``os.replace``), so a crash mid-save
leaves the previous state intact.  CRC32 checksums in the manifest
detect corrupted or tampered partition files on load.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import List, Optional

import numpy as np

from ..storage.disk import SimulatedDisk
from ..storage.runfile import SortedRun
from ..warehouse.leveled_store import LeveledStore, SummaryBuilder
from ..warehouse.partition import Partition

MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_FORMAT = "repro-warehouse-v1"


class PersistenceError(RuntimeError):
    """Raised when a warehouse directory is missing, corrupt or stale."""


def _partition_filename(partition: Partition) -> str:
    return (
        f"part-L{partition.level}"
        f"-{partition.start_step:06d}-{partition.end_step:06d}.npy"
    )


def _crc32_of(path: Path) -> int:
    checksum = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            checksum = zlib.crc32(chunk, checksum)
    return checksum


def save_store(store: LeveledStore, directory: "str | Path") -> Path:
    """Persist every partition of ``store`` plus an atomic manifest.

    Partition files already present from a previous save are rewritten
    only if their content changed (same name implies same step range,
    but a merged layout produces new names); files no longer referenced
    are removed after the new manifest is in place.  Returns the
    manifest path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_levels = []
    wanted_files = {MANIFEST_NAME}
    for level_index in range(store.num_levels):
        level_entries = []
        for partition in store.level(level_index):
            filename = _partition_filename(partition)
            path = directory / filename
            if not path.exists():
                np.save(path, partition.run.values)
            level_entries.append(
                {
                    "file": filename,
                    "level": partition.level,
                    "start_step": partition.start_step,
                    "end_step": partition.end_step,
                    "num_elems": len(partition),
                    "crc32": _crc32_of(path),
                }
            )
            wanted_files.add(filename)
        manifest_levels.append(level_entries)
    manifest = {
        "format": _MANIFEST_FORMAT,
        "kappa": store.kappa,
        "steps_loaded": store.steps_loaded,
        "levels": manifest_levels,
    }
    manifest_path = directory / MANIFEST_NAME
    temp_path = directory / (MANIFEST_NAME + ".tmp")
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, manifest_path)
    for stale in directory.glob("part-*.npy"):
        if stale.name not in wanted_files:
            stale.unlink()
    return manifest_path


def load_store(
    directory: "str | Path",
    disk: SimulatedDisk,
    kappa: Optional[int] = None,
    summary_builder: Optional[SummaryBuilder] = None,
    verify_checksums: bool = True,
    store_cls: type = LeveledStore,
) -> LeveledStore:
    """Rebuild a :class:`LeveledStore` from a saved directory.

    Raises :class:`PersistenceError` on a missing/garbled manifest, a
    kappa mismatch, or (with ``verify_checksums``) corrupted partition
    files.  Loading charges sequential reads for every partition, as a
    real recovery scan would.  ``store_cls`` selects the store flavour
    (e.g. LeveledCompactionStore) the layout should be adopted into.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise PersistenceError(f"no manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"garbled manifest: {exc}") from exc
    if manifest.get("format") != _MANIFEST_FORMAT:
        raise PersistenceError(
            f"unknown manifest format {manifest.get('format')!r}"
        )
    stored_kappa = int(manifest["kappa"])
    if kappa is not None and kappa != stored_kappa:
        raise PersistenceError(
            f"store was saved with kappa={stored_kappa}, requested {kappa}"
        )
    store = store_cls(
        disk, kappa=stored_kappa, summary_builder=summary_builder
    )
    levels: List[List[Partition]] = []
    for level_entries in manifest["levels"]:
        level: List[Partition] = []
        for entry in level_entries:
            path = directory / entry["file"]
            if not path.exists():
                raise PersistenceError(f"missing partition file {path}")
            if verify_checksums and _crc32_of(path) != entry["crc32"]:
                raise PersistenceError(f"checksum mismatch in {path}")
            data = np.load(path)
            if len(data) != entry["num_elems"]:
                raise PersistenceError(
                    f"{path} holds {len(data)} elements, manifest says "
                    f"{entry['num_elems']}"
                )
            disk.charge_sequential_read(len(data))
            run = SortedRun(disk, data, charge_write=False)
            level.append(
                Partition(
                    level=entry["level"],
                    start_step=entry["start_step"],
                    end_step=entry["end_step"],
                    run=run,
                )
            )
        levels.append(level)
    store.load_partitions(levels)
    return store
