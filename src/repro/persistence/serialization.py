"""Binary serialization for the streaming sketches.

A data-stream warehouse restarts: the stream sketch's state must
survive, or the current time step's accuracy guarantee is lost.  These
functions serialize the GK and Q-Digest sketches to compact,
versioned byte strings (NumPy archives under the hood) and restore
them exactly — a round-tripped sketch answers every query identically.
"""

from __future__ import annotations

import io
import json

import numpy as np

from ..sketches.gk import GKSketch
from ..sketches.qdigest import QDigestSketch

_GK_FORMAT = "repro-gk-v1"
_QDIGEST_FORMAT = "repro-qdigest-v1"


class SerializationError(ValueError):
    """Raised when a payload is not a valid serialized sketch."""


def _pack(header: dict, arrays: "dict[str, np.ndarray]") -> bytes:
    buffer = io.BytesIO()
    np.savez(
        buffer,
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )
    return buffer.getvalue()


def _unpack(data: bytes, expected_format: str):
    try:
        archive = np.load(io.BytesIO(data), allow_pickle=False)
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
    except Exception as exc:
        raise SerializationError(f"not a serialized sketch: {exc}") from exc
    if header.get("format") != expected_format:
        raise SerializationError(
            f"expected {expected_format}, found {header.get('format')!r}"
        )
    return header, archive


def dump_gk(sketch: GKSketch) -> bytes:
    """Serialize a GK sketch (tuples plus counters) to bytes."""
    header = {
        "format": _GK_FORMAT,
        "epsilon": sketch.epsilon,
        "n": sketch.n,
    }
    return _pack(
        header,
        {
            "values": np.asarray(sketch._values, dtype=np.int64),
            "g": np.asarray(sketch._g, dtype=np.int64),
            "delta": np.asarray(sketch._delta, dtype=np.int64),
        },
    )


def load_gk(data: bytes) -> GKSketch:
    """Restore a GK sketch serialized by :func:`dump_gk`."""
    header, archive = _unpack(data, _GK_FORMAT)
    sketch = GKSketch(header["epsilon"])
    sketch._values = [int(v) for v in archive["values"]]
    sketch._g = [int(v) for v in archive["g"]]
    sketch._delta = [int(v) for v in archive["delta"]]
    sketch._n = int(header["n"])
    if sum(sketch._g) > sketch._n:
        raise SerializationError("inconsistent GK payload: sum(g) > n")
    return sketch


def dump_qdigest(sketch: QDigestSketch) -> bytes:
    """Serialize a Q-Digest (node ids and counts) to bytes."""
    nodes = np.asarray(sorted(sketch._counts), dtype=np.int64)
    counts = np.asarray(
        [sketch._counts[int(node)] for node in nodes], dtype=np.int64
    )
    header = {
        "format": _QDIGEST_FORMAT,
        "epsilon": sketch.epsilon,
        "universe_log2": sketch.universe_log2,
        "n": sketch.n,
    }
    return _pack(header, {"nodes": nodes, "counts": counts})


def load_qdigest(data: bytes) -> QDigestSketch:
    """Restore a Q-Digest serialized by :func:`dump_qdigest`."""
    header, archive = _unpack(data, _QDIGEST_FORMAT)
    sketch = QDigestSketch(
        header["epsilon"], universe_log2=int(header["universe_log2"])
    )
    nodes = archive["nodes"]
    counts = archive["counts"]
    if np.any(counts < 0):
        raise SerializationError("negative node count in payload")
    sketch._counts = {
        int(node): int(count) for node, count in zip(nodes, counts)
    }
    sketch._n = int(header["n"])
    if sum(sketch._counts.values()) != sketch._n:
        raise SerializationError("inconsistent Q-Digest payload counts")
    return sketch
