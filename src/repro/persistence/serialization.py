"""Binary serialization for the streaming sketches.

A data-stream warehouse restarts: the stream sketch's state must
survive, or the current time step's accuracy guarantee is lost.  These
functions serialize the GK, KLL and Q-Digest sketches to compact,
versioned byte strings (NumPy archives under the hood) and restore
them exactly — a round-tripped sketch answers every query identically
(for KLL that includes the compaction RNG state, so post-restore
ingest also replays bit-for-bit).

``dump_sketch``/``load_stream_sketch`` are the backend-agnostic entry
points the checkpoint layer uses: the dump dispatches on the sketch
type, the load sniffs the format tag.
"""

from __future__ import annotations

import copy
import io
import json

import numpy as np

from ..sketches.gk import GKSketch
from ..sketches.kll import KLLSketch
from ..sketches.qdigest import QDigestSketch

_GK_FORMAT = "repro-gk-v1"
_KLL_FORMAT = "repro-kll-v1"
_QDIGEST_FORMAT = "repro-qdigest-v1"


class SerializationError(ValueError):
    """Raised when a payload is not a valid serialized sketch."""


def _pack(header: dict, arrays: "dict[str, np.ndarray]") -> bytes:
    buffer = io.BytesIO()
    np.savez(
        buffer,
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )
    return buffer.getvalue()


def _unpack(data: bytes, expected_format: str):
    try:
        archive = np.load(io.BytesIO(data), allow_pickle=False)
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
    except Exception as exc:
        raise SerializationError(f"not a serialized sketch: {exc}") from exc
    if header.get("format") != expected_format:
        raise SerializationError(
            f"expected {expected_format}, found {header.get('format')!r}"
        )
    return header, archive


def dump_gk(sketch: GKSketch) -> bytes:
    """Serialize a GK sketch (tuples plus counters) to bytes."""
    header = {
        "format": _GK_FORMAT,
        "epsilon": sketch.epsilon,
        "n": sketch.n,
    }
    return _pack(
        header,
        {
            "values": np.asarray(sketch._values, dtype=np.int64),
            "g": np.asarray(sketch._g, dtype=np.int64),
            "delta": np.asarray(sketch._delta, dtype=np.int64),
        },
    )


def load_gk(data: bytes) -> GKSketch:
    """Restore a GK sketch serialized by :func:`dump_gk`."""
    header, archive = _unpack(data, _GK_FORMAT)
    sketch = GKSketch(header["epsilon"])
    sketch._values = [int(v) for v in archive["values"]]
    sketch._g = [int(v) for v in archive["g"]]
    sketch._delta = [int(v) for v in archive["delta"]]
    sketch._n = int(header["n"])
    if sum(sketch._g) > sketch._n:
        raise SerializationError("inconsistent GK payload: sum(g) > n")
    return sketch


def dump_kll(sketch: KLLSketch) -> bytes:
    """Serialize a KLL sketch (level buffers plus RNG state) to bytes.

    The compaction generator's full bit-generator state rides in the
    header, so a restored sketch continues the exact coin-flip sequence
    the original would have drawn — post-restore ingest is bit-identical
    to an uninterrupted run.
    """
    header = {
        "format": _KLL_FORMAT,
        "epsilon": sketch.epsilon,
        "k": sketch.k,
        "seed": sketch._seed,
        "n": sketch.n,
        "min": sketch._min,
        "max": sketch._max,
        "levels": len(sketch._levels),
        "rng_state": sketch._rng.bit_generator.state,
    }
    arrays = {
        f"level_{h}": np.asarray(level, dtype=np.int64)
        for h, level in enumerate(sketch._levels)
    }
    return _pack(header, arrays)


def load_kll(data: bytes) -> KLLSketch:
    """Restore a KLL sketch serialized by :func:`dump_kll`."""
    header, archive = _unpack(data, _KLL_FORMAT)
    sketch = KLLSketch(
        header["epsilon"], k=int(header["k"]), seed=int(header["seed"])
    )
    sketch._levels = [
        [int(v) for v in archive[f"level_{h}"]]
        for h in range(int(header["levels"]))
    ]
    if not sketch._levels:
        sketch._levels = [[]]
    sketch._n = int(header["n"])
    sketch._min = None if header["min"] is None else int(header["min"])
    sketch._max = None if header["max"] is None else int(header["max"])
    sketch._rng.bit_generator.state = copy.deepcopy(header["rng_state"])
    retained = sum(len(level) for level in sketch._levels)
    if retained > sketch._n:
        raise SerializationError(
            "inconsistent KLL payload: retained > n"
        )
    if sketch._n > 0 and sketch._min is None:
        raise SerializationError("inconsistent KLL payload: n > 0, no min")
    return sketch


def dump_qdigest(sketch: QDigestSketch) -> bytes:
    """Serialize a Q-Digest (node ids and counts) to bytes."""
    nodes = np.asarray(sorted(sketch._counts), dtype=np.int64)
    counts = np.asarray(
        [sketch._counts[int(node)] for node in nodes], dtype=np.int64
    )
    header = {
        "format": _QDIGEST_FORMAT,
        "epsilon": sketch.epsilon,
        "universe_log2": sketch.universe_log2,
        "n": sketch.n,
    }
    return _pack(header, {"nodes": nodes, "counts": counts})


def load_qdigest(data: bytes) -> QDigestSketch:
    """Restore a Q-Digest serialized by :func:`dump_qdigest`."""
    header, archive = _unpack(data, _QDIGEST_FORMAT)
    sketch = QDigestSketch(
        header["epsilon"], universe_log2=int(header["universe_log2"])
    )
    nodes = archive["nodes"]
    counts = archive["counts"]
    if np.any(counts < 0):
        raise SerializationError("negative node count in payload")
    sketch._counts = {
        int(node): int(count) for node, count in zip(nodes, counts)
    }
    sketch._n = int(header["n"])
    if sum(sketch._counts.values()) != sketch._n:
        raise SerializationError("inconsistent Q-Digest payload counts")
    return sketch


def dump_sketch(sketch) -> bytes:
    """Serialize any supported stream sketch (dispatch on type)."""
    if isinstance(sketch, GKSketch):
        return dump_gk(sketch)
    if isinstance(sketch, KLLSketch):
        return dump_kll(sketch)
    if isinstance(sketch, QDigestSketch):
        return dump_qdigest(sketch)
    raise SerializationError(
        f"no serializer for sketch type {type(sketch).__name__}"
    )


def sniff_format(data: bytes) -> str:
    """Format tag of a serialized sketch payload (without loading it)."""
    try:
        archive = np.load(io.BytesIO(data), allow_pickle=False)
        header = json.loads(bytes(archive["header"]).decode("utf-8"))
    except Exception as exc:
        raise SerializationError(f"not a serialized sketch: {exc}") from exc
    return str(header.get("format"))


def load_stream_sketch(data: bytes):
    """Restore a serialized sketch, dispatching on its format tag."""
    loaders = {
        _GK_FORMAT: load_gk,
        _KLL_FORMAT: load_kll,
        _QDIGEST_FORMAT: load_qdigest,
    }
    tag = sniff_format(data)
    if tag not in loaders:
        raise SerializationError(f"unknown sketch format {tag!r}")
    return loaders[tag](data)
