"""Whole-engine checkpoints: warehouse + stream state + configuration.

``save_engine`` writes everything a restart needs into one directory:

* the warehouse partitions and manifest (``warehouse/``);
* the live GK sketch (``stream_sketch.bin``);
* the raw, not-yet-archived stream buffer (``stream_buffer.npy`` —
  in a real deployment this is the spooled stream capture);
* the engine configuration and step counter (``engine.json``).

``load_engine`` restores an engine that answers every query exactly as
the saved one did and continues ingesting from the same time step.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Optional

import numpy as np

from ..core.aggregates import AggregateStats
from ..core.config import EngineConfig
from ..core.engine import HybridQuantileEngine
from ..storage.disk import SimulatedDisk
from .serialization import dump_gk, load_gk
from .warehouse_store import PersistenceError, load_store, save_store

_ENGINE_FORMAT = "repro-engine-v1"
ENGINE_FILE = "engine.json"
SKETCH_FILE = "stream_sketch.bin"
BUFFER_FILE = "stream_buffer.npy"
WAREHOUSE_DIR = "warehouse"


def save_engine(engine: HybridQuantileEngine, directory: "str | Path") -> Path:
    """Checkpoint ``engine`` into ``directory``; returns its path.

    Background-mode engines are flushed first, so every sealed batch is
    fully archived before the warehouse is written; the checkpoint has
    no notion of in-flight archive work.
    """
    engine.flush()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_store(engine.store, directory / WAREHOUSE_DIR)
    (directory / SKETCH_FILE).write_bytes(dump_gk(engine._gk))
    np.save(directory / BUFFER_FILE, np.asarray(engine._buffer.view()))
    state = {
        "format": _ENGINE_FORMAT,
        "config": asdict(engine.config),
        "step": engine._step,
        "stream_elems": engine.m_stream,
    }
    temp = directory / (ENGINE_FILE + ".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(state, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, directory / ENGINE_FILE)
    return directory


def load_engine(
    directory: "str | Path",
    disk: Optional[SimulatedDisk] = None,
) -> HybridQuantileEngine:
    """Restore an engine checkpointed by :func:`save_engine`."""
    directory = Path(directory)
    state_path = directory / ENGINE_FILE
    if not state_path.exists():
        raise PersistenceError(f"no engine state at {state_path}")
    try:
        state = json.loads(state_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"garbled engine state: {exc}") from exc
    if state.get("format") != _ENGINE_FORMAT:
        raise PersistenceError(
            f"unknown engine format {state.get('format')!r}"
        )
    config = EngineConfig(**state["config"])
    engine = HybridQuantileEngine(config=config, disk=disk)
    engine.store = load_store(
        directory / WAREHOUSE_DIR,
        engine.disk,
        kappa=config.kappa,
        summary_builder=engine._build_partition_summary,
        # Restore into the same store flavour the config prescribes.
        store_cls=type(engine.store),
    )
    engine._gk = load_gk((directory / SKETCH_FILE).read_bytes())
    buffer = np.load(directory / BUFFER_FILE)
    engine._buffer.extend(buffer)
    engine._stream_stats = AggregateStats.of_array(buffer)
    engine._m = int(buffer.size)
    if engine._m != int(state["stream_elems"]):
        raise PersistenceError(
            "stream buffer size disagrees with engine state"
        )
    if engine._gk.n != engine._m:
        raise PersistenceError(
            "stream sketch count disagrees with stream buffer"
        )
    engine._step = int(state["step"])
    return engine
