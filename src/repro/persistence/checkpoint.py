"""Whole-engine checkpoints: warehouse + stream state + configuration.

``save_engine`` writes everything a restart needs into one directory:

* the warehouse partitions and manifest (``warehouse/``);
* the live GK sketch (``stream_sketch.bin``);
* the raw, not-yet-archived stream buffer (``stream_buffer.npy`` —
  in a real deployment this is the spooled stream capture);
* the engine configuration and step counter (``engine.json``).

``load_engine`` restores an engine that answers every query exactly as
the saved one did and continues ingesting from the same time step.

Crash consistency
-----------------

The checkpoint is atomic *as a whole*, not merely per file.  A save
stages the complete state into a sibling ``<dir>.tmp`` (hard-linking
partition files unchanged since the previous checkpoint), fsyncs it,
and then promotes it with a rename dance::

    <dir>       -> <dir>.old      (retire the previous checkpoint)
    <dir>.tmp   -> <dir>          (commit point)
    rmtree(<dir>.old)             (garbage-collect)

A crash at any point leaves the directory tree in one of a small set
of states that :func:`load_engine` recognizes and repairs before
loading: a complete ``.tmp`` with no committed directory rolls
*forward*, a retired ``.old`` with no committed directory rolls
*back*, and stray staging leftovers next to a committed checkpoint are
deleted.  The restored engine always answers exactly as either the old
or the new checkpoint — never a mixture, never silently wrong.

The module-level :data:`crash_hook` is the test seam: the crash
recovery harness installs a callable raising :class:`SimulatedCrash`
at a chosen named point (see :data:`CRASH_POINTS`) to freeze the
directory tree mid-save.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from ..core.aggregates import AggregateStats
from ..core.config import EngineConfig
from ..core.engine import HybridQuantileEngine
from ..ingest.wal import WriteAheadLog, replay_wal
from ..storage.disk import SimulatedDisk
from ..storage.fsutil import (
    RETIRED_SUFFIX,
    STAGE_SUFFIX,
    fsync_dir,
    retired_path,
    stage_path,
)
from .serialization import dump_sketch, load_stream_sketch
from .warehouse_store import PersistenceError, load_store, save_store

_ENGINE_FORMAT = "repro-engine-v1"
ENGINE_FILE = "engine.json"
SKETCH_FILE = "stream_sketch.bin"
BUFFER_FILE = "stream_buffer.npy"
WAREHOUSE_DIR = "warehouse"

__all__ = [
    "BUFFER_FILE",
    "CRASH_POINTS",
    "ENGINE_FILE",
    "RETIRED_SUFFIX",
    "SKETCH_FILE",
    "STAGE_SUFFIX",
    "SimulatedCrash",
    "WAREHOUSE_DIR",
    "load_engine",
    "recover_checkpoint",
    "save_engine",
]

#: Named points the save protocol passes through, in order.  The crash
#: harness kills a save at each one and asserts recovery.
CRASH_POINTS = (
    "stage-created",  # empty staging directory exists
    "mid-stage",      # warehouse + sketch + buffer staged, no engine.json
    "staged",         # staging complete and fsynced, nothing renamed
    "retired-old",    # previous checkpoint renamed away, new not yet in
    "promoted",       # new checkpoint committed, old not yet removed
)


class SimulatedCrash(RuntimeError):
    """Raised by a test :data:`crash_hook` to abort a save mid-flight."""


#: Test seam: when set, called with each crash-point name as the save
#: reaches it.  Raise :class:`SimulatedCrash` to simulate dying there.
crash_hook: Optional[Callable[[str], None]] = None


def _reach(point: str) -> None:
    if crash_hook is not None:
        crash_hook(point)


def _stage_path(directory: Path) -> Path:
    return stage_path(directory)


def _retired_path(directory: Path) -> Path:
    return retired_path(directory)


def _is_complete(directory: Path) -> bool:
    """A checkpoint directory is complete iff its engine state file
    exists — it is written (and fsynced) last during staging."""
    return (directory / ENGINE_FILE).exists()


def save_engine(engine: HybridQuantileEngine, directory: "str | Path") -> Path:
    """Checkpoint ``engine`` into ``directory``; returns its path.

    Background-mode engines are flushed first, so every sealed batch is
    fully archived before the warehouse is written; the checkpoint has
    no notion of in-flight archive work.

    The save is crash-consistent: state is staged into a sibling
    ``<directory>.tmp`` and committed with a single rename, so a crash
    at any instant leaves either the previous checkpoint or the new one
    recoverable by :func:`load_engine` — never a torn mixture.
    Partition files unchanged since the previous checkpoint are
    hard-linked into the stage rather than rewritten.

    When the engine has a :class:`~repro.ingest.wal.WriteAheadLog`
    attached, the log's current LSN is recorded in ``engine.json`` as
    the replay watermark, and segments fully covered by this checkpoint
    are truncated only *after* the commit point — a crash anywhere in
    between merely leaves extra segments whose records replay as no-ops
    (their LSNs sit at or below the watermark).
    """
    engine.flush()
    wal = getattr(engine, "_wal", None)
    wal_lsn = wal.last_lsn if wal is not None else None
    directory = Path(directory)
    if directory.parent != Path(""):
        directory.parent.mkdir(parents=True, exist_ok=True)
    if (
        directory.exists()
        and any(directory.iterdir())
        and not _is_complete(directory)
    ):
        # The commit dance retires (and later deletes) the existing
        # directory; refuse to do that to contents we do not own.
        raise PersistenceError(
            f"refusing to replace {directory}: it is non-empty but not "
            "a checkpoint"
        )
    stage = _stage_path(directory)
    retired = _retired_path(directory)
    # Leftovers from an earlier crashed save: a stale stage is always
    # garbage; a retired checkpoint is only garbage while the committed
    # directory exists (otherwise it is the rollback target and
    # load_engine's recovery owns it).
    if stage.exists():
        shutil.rmtree(stage)
    if retired.exists() and directory.exists():
        shutil.rmtree(retired)
    stage.mkdir(parents=True)
    _reach("stage-created")
    previous_warehouse = directory / WAREHOUSE_DIR
    save_store(
        engine.store,
        stage / WAREHOUSE_DIR,
        reuse_from=(
            previous_warehouse if previous_warehouse.is_dir() else None
        ),
    )
    # stream_sketch() absorbs any buffered-but-unabsorbed tail first,
    # so the saved sketch count always equals the saved buffer size.
    (stage / SKETCH_FILE).write_bytes(
        dump_sketch(engine.stream_sketch())
    )
    np.save(stage / BUFFER_FILE, np.asarray(engine._buffer.view()))
    _reach("mid-stage")
    state = {
        "format": _ENGINE_FORMAT,
        "config": asdict(engine.config),
        "step": engine._step,
        "stream_elems": engine.m_stream,
    }
    if wal_lsn is not None:
        state["wal_lsn"] = wal_lsn
    # engine.json is the completeness marker, so it is written last and
    # made durable before any rename.
    with open(stage / ENGINE_FILE, "w", encoding="utf-8") as handle:
        json.dump(state, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    fsync_dir(stage)
    _reach("staged")
    if directory.exists():
        os.rename(directory, retired)
        _reach("retired-old")
    os.rename(stage, directory)  # commit point
    fsync_dir(directory.parent)
    _reach("promoted")
    if retired.exists():
        shutil.rmtree(retired)
    if wal is not None:
        wal.truncate(wal_lsn)
    return directory


def recover_checkpoint(directory: "str | Path") -> Path:
    """Roll an interrupted :func:`save_engine` forward or back.

    Idempotent; called automatically by :func:`load_engine`.  After it
    returns, ``directory`` (if any checkpoint ever committed) is a
    complete checkpoint and no ``.tmp``/``.old`` siblings remain.
    Raises :class:`PersistenceError` only for states the protocol
    cannot produce (e.g. every candidate directory incomplete).
    """
    directory = Path(directory)
    stage = _stage_path(directory)
    retired = _retired_path(directory)
    if directory.exists() and _is_complete(directory):
        # Committed checkpoint in place; anything beside it is debris
        # from a save that died before (stage) or after (retired) the
        # commit point.
        if stage.exists():
            shutil.rmtree(stage)
        if retired.exists():
            shutil.rmtree(retired)
        return directory
    if directory.exists():
        # Only external tampering produces this: the protocol never
        # commits an incomplete directory.
        raise PersistenceError(
            f"checkpoint {directory} is incomplete (no {ENGINE_FILE})"
        )
    if stage.exists() and _is_complete(stage):
        # Crash between retiring the old checkpoint and committing the
        # stage: the stage was fully fsynced (engine.json is written
        # last), so roll forward.
        os.rename(stage, directory)
        fsync_dir(directory.parent)
        if retired.exists():
            shutil.rmtree(retired)
        return directory
    if retired.exists() and _is_complete(retired):
        # Crash with an incomplete (or absent) stage after the old
        # checkpoint was retired: roll back to it.
        if stage.exists():
            shutil.rmtree(stage)
        os.rename(retired, directory)
        fsync_dir(directory.parent)
        return directory
    if stage.exists() or retired.exists():
        raise PersistenceError(
            f"no recoverable checkpoint at {directory}: every candidate "
            "is incomplete"
        )
    raise PersistenceError(f"no engine state at {directory / ENGINE_FILE}")


def load_engine(
    directory: "str | Path",
    disk: Optional[SimulatedDisk] = None,
    repair: bool = False,
    wal_dir: "str | Path | None" = None,
) -> HybridQuantileEngine:
    """Restore an engine checkpointed by :func:`save_engine`.

    Interrupted saves are rolled forward or back first (see
    :func:`recover_checkpoint`).  With ``repair=True``, partition files
    whose checksum disagrees with the manifest are salvaged when their
    content is still a structurally valid sorted run (and the manifest
    is rewritten); otherwise any inconsistency raises a typed
    :class:`PersistenceError` — a checkpoint never loads silently
    wrong.

    With ``wal_dir``, the restored engine is rolled *forward* through
    every write-ahead-log record past the checkpoint's LSN watermark
    (acked batches and seals that never made it into a checkpoint), and
    a reopened :class:`~repro.ingest.wal.WriteAheadLog` is attached so
    subsequent ingest stays durable.
    """
    directory = recover_checkpoint(directory)
    state_path = directory / ENGINE_FILE
    try:
        state = json.loads(state_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"garbled engine state: {exc}") from exc
    if state.get("format") != _ENGINE_FORMAT:
        raise PersistenceError(
            f"unknown engine format {state.get('format')!r}"
        )
    config = EngineConfig(**state["config"])
    engine = HybridQuantileEngine(config=config, disk=disk)
    engine.store = load_store(
        directory / WAREHOUSE_DIR,
        engine.disk,
        kappa=config.kappa,
        summary_builder=engine._build_partition_summary,
        # Restore into the same store flavour the config prescribes.
        store_cls=type(engine.store),
        repair=repair,
    )
    # The store was replaced after construction: re-wire the retirement
    # hook so compaction merges keep invalidating the shared cache.
    engine.store.on_retire = engine._on_runs_retired
    engine._gk = load_stream_sketch(
        (directory / SKETCH_FILE).read_bytes()
    )
    buffer = np.load(directory / BUFFER_FILE)
    engine._buffer.extend(buffer)
    engine._stream_stats = AggregateStats.of_array(buffer)
    engine._m = int(buffer.size)
    # The saved sketch had absorbed the whole saved buffer.
    engine._gk_absorbed = int(buffer.size)
    if engine._m != int(state["stream_elems"]):
        raise PersistenceError(
            "stream buffer size disagrees with engine state"
        )
    if engine._gk.n != engine._m:
        raise PersistenceError(
            "stream sketch count disagrees with stream buffer"
        )
    engine._step = int(state["step"])
    if wal_dir is not None:
        replay_wal(engine, wal_dir, after_lsn=int(state.get("wal_lsn", 0)))
        engine.attach_wal(
            WriteAheadLog(wal_dir, fsync=config.wal_fsync)
        )
    return engine
