"""Durability: warehouse directories, sketch serialization, checkpoints."""

from .checkpoint import (
    SimulatedCrash,
    load_engine,
    recover_checkpoint,
    save_engine,
)
from .serialization import (
    SerializationError,
    dump_gk,
    dump_kll,
    dump_qdigest,
    dump_sketch,
    load_gk,
    load_kll,
    load_qdigest,
    load_stream_sketch,
)
from .warehouse_store import PersistenceError, load_store, save_store

__all__ = [
    "SimulatedCrash",
    "load_engine",
    "recover_checkpoint",
    "save_engine",
    "SerializationError",
    "dump_gk",
    "dump_kll",
    "dump_qdigest",
    "dump_sketch",
    "load_gk",
    "load_kll",
    "load_qdigest",
    "load_stream_sketch",
    "PersistenceError",
    "load_store",
    "save_store",
]
