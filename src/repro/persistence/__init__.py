"""Durability: warehouse directories, sketch serialization, checkpoints."""

from .checkpoint import (
    SimulatedCrash,
    load_engine,
    recover_checkpoint,
    save_engine,
)
from .serialization import (
    SerializationError,
    dump_gk,
    dump_qdigest,
    load_gk,
    load_qdigest,
)
from .warehouse_store import PersistenceError, load_store, save_store

__all__ = [
    "SimulatedCrash",
    "load_engine",
    "recover_checkpoint",
    "save_engine",
    "SerializationError",
    "dump_gk",
    "dump_qdigest",
    "load_gk",
    "load_qdigest",
    "PersistenceError",
    "load_store",
    "save_store",
]
