"""Durability: warehouse directories, sketch serialization, checkpoints."""

from .checkpoint import load_engine, save_engine
from .serialization import (
    SerializationError,
    dump_gk,
    dump_qdigest,
    load_gk,
    load_qdigest,
)
from .warehouse_store import PersistenceError, load_store, save_store

__all__ = [
    "load_engine",
    "save_engine",
    "SerializationError",
    "dump_gk",
    "dump_qdigest",
    "load_gk",
    "load_qdigest",
    "PersistenceError",
    "load_store",
    "save_store",
]
