"""The on-disk historical warehouse HD: leveled sorted partitions."""

from .compaction import LeveledCompactionStore
from .leveled_store import LeveledStore
from .partition import Partition

__all__ = ["LeveledStore", "LeveledCompactionStore", "Partition"]
