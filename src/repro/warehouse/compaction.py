"""Alternative compaction policy: leveled (LevelDB-style) merging.

The paper's HD is *tiered*: up to ``kappa`` partitions accumulate per
level and merge upward in one shot — cheap updates, but queries touch
up to ``kappa * log_kappa(T)`` partitions.  The paper's Section 4 asks
how "improved data structures" could shift the accuracy/memory/disk
tradeoff; the classic counterpart from the LSM literature is *leveled*
compaction: each level beyond 0 keeps a single sorted partition, and
incoming data merges into it.  Updates rewrite that partition over and
over (higher amortized I/O, the LSM write amplification), but a query
consults only ``~log_kappa(T)`` partitions, each with a denser summary
under a fixed memory budget.

:class:`LeveledCompactionStore` is a drop-in replacement for
:class:`~repro.warehouse.leveled_store.LeveledStore`; the
``benchmarks/test_ablation_compaction.py`` ablation measures the
tradeoff on identical workloads.  It inherits the stage/adopt split
used by the background ingest pipeline (``repro.ingest``) unchanged:
``stage_partition`` never touches the layout, and ``adopt_partition``
drives this class's overridden ``_make_room``, so leveled compaction
cascades run off the hot path exactly like tiered merges do.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..storage.external_sort import merge_runs
from .leveled_store import LeveledStore
from .partition import Partition


class LeveledCompactionStore(LeveledStore):
    """HD with leveled (single-partition-per-level) compaction.

    Level 0 buffers up to ``kappa`` single-step partitions, exactly as
    the tiered store does.  Every level ``l >= 1`` holds at most one
    partition covering at most ``kappa**(l+1)`` time steps; when an
    incoming merge would overflow that capacity, the partition is first
    pushed down into level ``l + 1`` (recursively), then the newcomer
    merges in.
    """

    def level_capacity_steps(self, level: int) -> int:
        """Maximum time steps a partition at ``level >= 1`` may cover."""
        return self.kappa ** (level + 1)

    def _make_room(self, level: int) -> None:
        if level != 0:
            raise AssertionError(
                "leveled compaction only buffers at level 0"
            )
        if len(self._levels[0]) < self.kappa:
            return
        incoming_steps = sum(p.num_steps for p in self._levels[0])
        self._ensure_capacity(1, incoming_steps)
        self._compact_into(1, list(self._levels[0]))
        self._levels[0] = []

    def _ensure_capacity(self, level: int, incoming_steps: int) -> None:
        """Push level's resident partition down if it cannot absorb."""
        while level + 1 > len(self._levels) - 1:
            self._levels.append([])
        resident = self._resident(level)
        if resident is None:
            return
        if resident.num_steps + incoming_steps <= self.level_capacity_steps(
            level
        ):
            return
        self._ensure_capacity(level + 1, resident.num_steps)
        self._compact_into(level + 1, [resident])
        self._levels[level] = []

    def _resident(self, level: int) -> Optional[Partition]:
        if level >= len(self._levels) or not self._levels[level]:
            return None
        if len(self._levels[level]) != 1:
            raise AssertionError(
                f"leveled compaction keeps one partition at level {level}"
            )
        return self._levels[level][0]

    def _compact_into(self, level: int, newcomers: List[Partition]) -> None:
        """Merge ``newcomers`` (older-first) into ``level``'s partition."""
        while level > len(self._levels) - 1:
            self._levels.append([])
        resident = self._resident(level)
        victims = ([resident] if resident else []) + newcomers
        self.disk.stats.set_phase("merge")
        started = time.perf_counter()
        merged_run = merge_runs(self.disk, [p.run for p in victims])
        self._note_cpu("merge", time.perf_counter() - started)
        self.disk.stats.set_phase("load")
        merged = Partition(
            level=level,
            start_step=victims[0].start_step,
            end_step=victims[-1].end_step,
            run=merged_run,
        )
        self._attach_summary(merged)
        self._levels[level] = [merged]
        # Same tiering hook as the tiered store: the compacted run's
        # level decides whether the backend ages it to the object tier.
        self.disk.backend.place_run(merged_run.run_id, level)
        if self.on_retire is not None:
            self.on_retire([p.run.run_id for p in victims])

    def check_invariant(self) -> None:
        """Assert the structural invariants of this store."""
        super().check_invariant()
        for level_index in range(1, len(self._levels)):
            level = self._levels[level_index]
            if len(level) > 1:
                raise AssertionError(
                    f"level {level_index} holds {len(level)} partitions; "
                    "leveled compaction allows one"
                )
            if level and level[0].num_steps > self.level_capacity_steps(
                level_index
            ):
                raise AssertionError(
                    f"level {level_index} exceeds its step capacity"
                )
