"""Partitions: the unit of storage in the historical warehouse HD."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..storage.runfile import SortedRun


@dataclass
class Partition:
    """One sorted partition of historical data.

    Attributes
    ----------
    level:
        The partition's level in HD (0 = newest, smallest).
    start_step, end_step:
        Inclusive range of time steps whose data this partition holds
        (the ``P_{i,j}`` notation of Figure 2).
    run:
        The on-disk sorted data.
    summary:
        The in-memory summary HS entry for this partition (built by the
        engine's summary factory at partition-creation time, so it
        costs no extra disk access — Section 2.1).
    """

    level: int
    start_step: int
    end_step: int
    run: SortedRun
    summary: Optional[Any] = None
    #: exact aggregate stats, computed at write time like the summary
    stats: Optional[Any] = None

    def __len__(self) -> int:
        return len(self.run)

    @property
    def num_steps(self) -> int:
        """Number of time steps covered by this partition."""
        return self.end_step - self.start_step + 1

    def covers(self, step: int) -> bool:
        """Whether data from ``step`` lives in this partition."""
        return self.start_step <= step <= self.end_step

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Partition(level={self.level}, steps={self.start_step}"
            f"..{self.end_step}, n={len(self.run)})"
        )
