"""HD: the leveled on-disk store for historical data (Section 2.1).

Each level holds at most ``kappa`` sorted partitions.  A new batch is
sorted and stored at level 0; when a level is already full as a new
partition is about to enter it, all ``kappa`` of its partitions are
first multi-way merged into a single partition one level up (recursing
upward if that level is full too).

Merge semantics note.  Algorithm 3's pseudocode and Figure 2's
illustration suggest merging after the insertion (kappa + 1 partitions
at once), but the paper's own measured disk-access counts in Figure 8
(10K / 190K / 1810K accesses per step for kappa = 9; 1130K for
kappa = 7 with B = 100 KB, 1 GB batches) are reproduced exactly by
merge-*before*-add of exactly ``kappa`` partitions.  We implement the
measured behaviour; see DESIGN.md.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..storage.disk import SimulatedDisk
from ..storage.external_sort import ExternalSorter, merge_runs
from ..storage.runfile import SortedRun
from ..storage.stats import PhaseTally
from .partition import Partition

SummaryBuilder = Callable[[Partition], Any]


def window_from(
    ordered: Sequence[Partition], last_step: int, window_steps: int
) -> Optional[List[Partition]]:
    """Suffix of ``ordered`` covering exactly the last ``window_steps``.

    The list-based core of :meth:`LeveledStore.window_partitions`, also
    used by the engine over a consistent snapshot that appends pending
    (sealed but not yet merged) partitions to the store's layout.
    """
    if window_steps == 0:
        return []
    target_start = last_step - window_steps + 1
    if target_start < 1:
        return None
    suffix: List[Partition] = []
    for partition in reversed(ordered):
        suffix.append(partition)
        if partition.start_step == target_start:
            suffix.reverse()
            return suffix
        if partition.start_step < target_start:
            return None
    return None


def range_from(
    ordered: Sequence[Partition], start_step: int, end_step: int
) -> Optional[List[Partition]]:
    """Partitions of ``ordered`` covering exactly ``[start_step, end_step]``."""
    if start_step < 1 or end_step < start_step:
        return None
    selected: List[Partition] = []
    for partition in ordered:
        if partition.end_step < start_step:
            continue
        if partition.start_step > end_step:
            break
        selected.append(partition)
    if not selected:
        return None
    if selected[0].start_step != start_step:
        return None
    if selected[-1].end_step != end_step:
        return None
    return selected


def window_sizes_from(ordered: Sequence[Partition]) -> List[int]:
    """Suffix sums of partition step-counts, newest first (Figure 11)."""
    sizes: List[int] = []
    total = 0
    for partition in reversed(ordered):
        total += partition.num_steps
        sizes.append(total)
    return sizes


class LeveledStore:
    """The on-disk historical structure HD.

    Parameters
    ----------
    disk:
        Simulated device holding every partition.
    kappa:
        Merge threshold: the maximum number of partitions per level.
    sorter:
        External sorter used for incoming batches.  Defaults to one
        whose workspace holds any batch (matching the paper's
        accounting, where a plain no-merge step costs exactly one
        sequential write of the batch — Figure 8).
    summary_builder:
        Called with each newly created :class:`Partition` to attach its
        in-memory summary.  Building happens while the partition data
        is being written, so it charges no additional disk access.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        kappa: int,
        sorter: Optional[ExternalSorter] = None,
        summary_builder: Optional[SummaryBuilder] = None,
    ) -> None:
        if kappa < 2:
            raise ValueError("kappa (merge threshold) must be >= 2")
        self.disk = disk
        self.kappa = kappa
        self._sorter = sorter if sorter is not None else ExternalSorter(disk)
        self._summary_builder = summary_builder
        self._levels: List[List[Partition]] = [[]]
        self._steps_loaded = 0
        # Guards the level layout: mutations (add_batch's cascade,
        # load_partitions) and layout reads (partitions()) serialize on
        # it, so a query thread always sees a complete cascade, never a
        # half-merged one.  Partitions themselves are immutable once
        # attached, so the snapshot list partitions() returns stays
        # valid however far the store advances afterwards.
        self._layout_lock = threading.RLock()
        # Cumulative wall-clock seconds by maintenance phase; the
        # engine snapshots this to break update time into the
        # load/sort/merge/summary components of Figure 6.  Staging can
        # run on whichever thread needs the partition first (archiver
        # or a query stealing the work — see repro.ingest), so the
        # accumulation is guarded by its own small lock.
        self.cpu_seconds: Dict[str, float] = defaultdict(float)
        self._cpu_lock = threading.Lock()
        # Invoked with the run ids retired by a merge, inside the same
        # layout-lock critical section that removes them from the
        # layout.  The engine wires this to shared-cache invalidation
        # so a retired run's blocks can never outlive the run.
        self.on_retire: Optional[Callable[[Sequence[int]], None]] = None

    @property
    def layout_lock(self) -> threading.RLock:
        """The lock serializing layout mutations and snapshots.

        Exposed so the background archiver can make "adopt a staged
        partition + unlink it from the pending set" one atomic step
        relative to query snapshots.
        """
        return self._layout_lock

    def _note_cpu(self, phase: str, seconds: float) -> None:
        with self._cpu_lock:
            self.cpu_seconds[phase] += seconds

    # ------------------------------------------------------------------
    # Maintenance (Algorithm 3)
    # ------------------------------------------------------------------

    def add_batch(self, data: np.ndarray, step: Optional[int] = None) -> Partition:
        """Sort a batch and store it as a new level-0 partition.

        Cascading merges run first if level 0 is full.  Returns the new
        partition.
        """
        with self._layout_lock:
            if step is None:
                step = self._steps_loaded + 1
            self._make_room(0)
            self.disk.stats.set_phase("sort")
            started = time.perf_counter()
            sorted_batch = self._sorter.sorted_array(
                np.asarray(data, dtype=np.int64)
            )
            self._note_cpu("sort", time.perf_counter() - started)
            self.disk.stats.set_phase("load")
            run = SortedRun(self.disk, sorted_batch, charge_write=True)
            partition = Partition(
                level=0, start_step=step, end_step=step, run=run
            )
            self._attach_summary(partition)
            self._levels[0].append(partition)
            self._steps_loaded = max(self._steps_loaded, step)
            return partition

    def stage_partition(
        self, data: np.ndarray, step: int
    ) -> "tuple[Partition, PhaseTally, Dict[str, float]]":
        """Sort, persist and summarize a batch *without* inserting it.

        The background ingest path (``repro.ingest``): a sealed batch
        becomes a fully queryable level-0 partition — sorted run on
        disk, summary and aggregates attached — while the leveled
        layout stays untouched, so no layout lock is taken and queries
        can keep snapshotting.  :meth:`adopt_partition` later splices
        it into the layout (triggering any cascade) under the lock.

        Charges exactly the sort passes and the sequential write that
        :meth:`add_batch` charges, and returns the partition together
        with this thread's I/O tally and per-phase CPU seconds so the
        archiver can assemble a per-step report that matches the
        synchronous path bit for bit.
        """
        cpu: Dict[str, float] = {}
        with self.disk.stats.capture() as tally:
            with self.disk.stats.phase_scope("sort"):
                started = time.perf_counter()
                sorted_batch = self._sorter.sorted_array(
                    np.asarray(data, dtype=np.int64)
                )
                cpu["sort"] = time.perf_counter() - started
            with self.disk.stats.phase_scope("load"):
                started = time.perf_counter()
                run = SortedRun(self.disk, sorted_batch, charge_write=True)
                partition = Partition(
                    level=0, start_step=step, end_step=step, run=run
                )
                cpu["load"] = time.perf_counter() - started
                started = time.perf_counter()
                self._attach_summary(partition)
                cpu["summary"] = time.perf_counter() - started
        self._note_cpu("sort", cpu["sort"])
        return partition, tally, cpu

    def adopt_partition(self, partition: Partition) -> None:
        """Insert a staged level-0 partition into the layout.

        Runs the same cascade :meth:`add_batch` would (merging full
        levels before the insertion), under the layout lock so
        concurrent snapshots see either the pre- or post-adoption
        layout, never a half-merged one.
        """
        if partition.level != 0:
            raise ValueError("only level-0 partitions can be adopted")
        with self._layout_lock:
            self._make_room(0)
            self.disk.stats.set_phase("load")
            self._levels[0].append(partition)
            self._steps_loaded = max(self._steps_loaded, partition.end_step)

    def _make_room(self, level: int) -> None:
        """Ensure ``level`` has a free slot, merging upward if needed."""
        if len(self._levels[level]) < self.kappa:
            return
        if level + 1 >= len(self._levels):
            self._levels.append([])
        self._make_room(level + 1)
        self._merge_level(level)

    def _merge_level(self, level: int) -> None:
        """Merge all partitions of ``level`` into one at ``level + 1``."""
        victims = self._levels[level]
        self.disk.stats.set_phase("merge")
        started = time.perf_counter()
        merged_run = merge_runs(self.disk, [p.run for p in victims])
        self._note_cpu("merge", time.perf_counter() - started)
        self.disk.stats.set_phase("load")
        merged = Partition(
            level=level + 1,
            start_step=victims[0].start_step,
            end_step=victims[-1].end_step,
            run=merged_run,
        )
        self._attach_summary(merged)
        self._levels[level] = []
        self._levels[level + 1].append(merged)
        # Tiering policy: the merged run now lives at a deeper (colder)
        # level — let the storage backend age it out (e.g. migrate it
        # into the object tier once past ``object_tier_level``).
        self.disk.backend.place_run(merged_run.run_id, level + 1)
        if self.on_retire is not None:
            self.on_retire([p.run.run_id for p in victims])

    def _attach_summary(self, partition: Partition) -> None:
        if self._summary_builder is not None:
            started = time.perf_counter()
            partition.summary = self._summary_builder(partition)
            self._note_cpu("summary", time.perf_counter() - started)

    def load_partitions(
        self, partitions_by_level: List[List[Partition]]
    ) -> None:
        """Adopt a previously persisted partition layout.

        Used by the persistence layer to restore HD after a restart.
        Summaries are (re)built through the configured builder and the
        structural invariants are verified before adoption.
        """
        with self._layout_lock:
            if self.partition_count():
                raise ValueError("store already holds partitions")
            self._levels = [list(level) for level in partitions_by_level]
            if not self._levels:
                self._levels = [[]]
            for level in self._levels:
                for partition in level:
                    if partition.summary is None:
                        self._attach_summary(partition)
                    # Restored runs resume their tier placement: cold
                    # levels age straight back into the object tier.
                    self.disk.backend.place_run(
                        partition.run.run_id, partition.level
                    )
            self._steps_loaded = max(
                (p.end_step for p in self.partitions()), default=0
            )
            self.check_invariant()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Number of levels currently allocated (including empty ones)."""
        return len(self._levels)

    @property
    def steps_loaded(self) -> int:
        """Highest time step whose batch has been loaded."""
        return self._steps_loaded

    def level(self, index: int) -> Sequence[Partition]:
        """Partitions at a level, oldest first."""
        return tuple(self._levels[index])

    def partitions(self) -> List[Partition]:
        """All partitions in chronological order (oldest data first).

        Returns a snapshot list taken under the layout lock: safe to
        iterate (and to probe through the query executor) while another
        thread loads batches into the store.
        """
        with self._layout_lock:
            ordered: List[Partition] = []
            for level in reversed(self._levels):
                ordered.extend(level)
            return ordered

    def total_elements(self) -> int:
        """Total number of historical elements n."""
        return sum(len(p) for p in self.partitions())

    def partition_count(self) -> int:
        """Total number of partitions across all levels."""
        return sum(len(level) for level in self._levels)

    def check_invariant(self) -> None:
        """Assert the structural invariants of HD.

        Every level holds at most ``kappa`` partitions, and the
        chronological ordering of partitions is contiguous and gapless
        from step 1 through the last loaded step.
        """
        for index, level in enumerate(self._levels):
            if len(level) > self.kappa:
                raise AssertionError(
                    f"level {index} holds {len(level)} > kappa={self.kappa}"
                )
        ordered = self.partitions()
        expected_start = None
        for partition in ordered:
            if expected_start is not None and partition.start_step != expected_start:
                raise AssertionError(
                    f"gap before partition {partition!r}: expected start "
                    f"{expected_start}"
                )
            expected_start = partition.end_step + 1

    # ------------------------------------------------------------------
    # Windows (Section 2.4, "Queries Over Windows")
    # ------------------------------------------------------------------

    def window_partitions(self, window_steps: int) -> Optional[List[Partition]]:
        """Partitions exactly covering the last ``window_steps`` steps.

        Windowed queries are only possible when the window boundary is
        aligned with a partition boundary; returns ``None`` otherwise.
        A window of 0 steps is the empty list (stream only).
        """
        return window_from(self.partitions(), self._steps_loaded, window_steps)

    def range_partitions(
        self, start_step: int, end_step: int
    ) -> Optional[List[Partition]]:
        """Partitions covering exactly steps ``[start_step, end_step]``.

        A generalization of suffix windows to arbitrary historical
        ranges; returns ``None`` unless both endpoints align with
        partition boundaries.
        """
        return range_from(self.partitions(), start_step, end_step)

    def available_window_sizes(self) -> List[int]:
        """All historical window sizes answerable at the current state.

        These are the suffix sums of partition step-counts, newest
        first — the x-axis of Figure 11.
        """
        return window_sizes_from(self.partitions())
