"""Common interface for streaming quantile sketches.

Every sketch in this package consumes a stream of int64 values one at a
time (``update``), from an arbitrary iterable (``update_batch``), or as
a numpy array (``update_many``), and answers rank queries: given a
target rank ``r`` (1-indexed, rank = number of elements less than or
equal to the answer), return a value whose true rank is within the
sketch's error bound of ``r``.

``update_many`` is the vectorized entry point of the batched ingest
path: implementations that can merge a sorted batch in one pass (GK,
the exact oracle) override it; everything else (MRL, Q-Digest) inherits
a per-element loop, so every sketch accepts arrays uniformly.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np


class QuantileSketch(ABC):
    """Abstract streaming quantile sketch."""

    @abstractmethod
    def update(self, value: int) -> None:
        """Process one stream element."""

    def update_batch(self, values: Iterable[int]) -> None:
        """Process many elements; subclasses may override with fast paths."""
        for value in values:
            self.update(int(value))

    def update_many(self, values: np.ndarray) -> None:
        """Process a numpy batch of elements.

        The default falls back to per-element ``update`` so every
        sketch accepts arrays; subclasses with a bulk-insertion fast
        path (sort once, merge once) override this.
        """
        arr = np.asarray(values, dtype=np.int64).ravel()
        for value in arr:
            self.update(int(value))

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of elements processed so far."""

    @abstractmethod
    def query_rank(self, rank: int) -> int:
        """Return a value whose true rank approximates ``rank``.

        ``rank`` is clamped to ``[1, n]``.  The tightness of the
        approximation is sketch-specific; see each implementation.
        """

    @abstractmethod
    def memory_words(self) -> int:
        """Current memory footprint in 8-byte words."""

    def quantile(self, phi: float) -> int:
        """Return an approximate ``phi``-quantile (Definition 1).

        ``phi`` must lie in (0, 1]; the target rank is ``ceil(phi * n)``.
        """
        rank = rank_for_phi(phi, self.n)
        return self.query_rank(rank)


def rank_for_phi(phi: float, n: int) -> int:
    """The 1-indexed rank targeted by a ``phi``-quantile over ``n`` items."""
    if not 0 < phi <= 1:
        raise ValueError("phi must be in (0, 1]")
    if n <= 0:
        raise ValueError("dataset is empty")
    return clamp_rank(math.ceil(phi * n), n)


def clamp_rank(rank: int, n: int) -> int:
    """Clamp a requested rank into the valid range [1, n]."""
    return max(1, min(int(rank), n))
