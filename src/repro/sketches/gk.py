"""The Greenwald-Khanna quantile sketch.

Deterministic, single-pass, worst-case space ``O((1/eps) log(eps n))``
(Greenwald & Khanna, SIGMOD 2001).  The sketch stores tuples
``(v_i, g_i, delta_i)`` where ``g_i`` is the gap between the minimum
possible rank of ``v_i`` and that of ``v_{i-1}``, and ``delta_i``
bounds the extra uncertainty: the true rank of ``v_i`` lies in
``[rmin_i, rmin_i + delta_i]`` with ``rmin_i = sum_{j<=i} g_j``.  The
maintained invariant ``g_i + delta_i <= 2 eps n`` guarantees that
``query_rank(r)`` returns a value whose true rank is within
``eps * n`` of ``r``.

This is the sketch the paper runs on the live stream (with error
parameter ``eps_2 = eps / 4``) and as the strongest pure-streaming
baseline.  Besides the textbook per-element ``update``, the class
offers a vectorized ``update_batch`` that merges a fully known sorted
batch into the summary using exact rank algebra (the batch contributes
its exact rank to every tuple's ``rmin``/``rmax``), which preserves the
rank-bracketing invariant and therefore the ``eps``-guarantee while
being orders of magnitude faster for the simulator's large batches.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Iterable, List, Tuple

import numpy as np

from .base import QuantileSketch, clamp_rank

_BATCH_THRESHOLD = 256


class GKSketch(QuantileSketch):
    """Greenwald-Khanna epsilon-approximate quantile summary.

    Parameters
    ----------
    epsilon:
        Error parameter in (0, 1).  A rank query for ``r`` returns a
        value whose true rank lies in ``[r - eps*n, r + eps*n]``.
    """

    def __init__(self, epsilon: float) -> None:
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self._values: List[int] = []
        self._g: List[int] = []
        self._delta: List[int] = []
        self._n = 0
        self._compress_every = max(1, int(1.0 / (2.0 * epsilon)))
        self._since_compress = 0
        self._two_eps = 2.0 * epsilon
        # Reusable output lists for _compress: it runs every
        # ~1/(2 eps) inserts, and allocating three fresh lists per call
        # was the dominant churn of the per-element update path.  The
        # lists are swapped with the live ones after each pass, so
        # steady-state compression allocates nothing.
        self._scratch: "Tuple[List[int], List[int], List[int]]" = ([], [], [])
        # Serializes mutations against snapshot(): an updating thread
        # and a snapshotting thread never observe half-applied tuple
        # lists.  Reentrant because update_batch calls _compress while
        # already holding it.
        self._mutate_lock = threading.RLock()
        # Cached (values, rmin, rmax) arrays for the vectorized query
        # path; rebuilt lazily after any mutation.
        self._query_arrays: "Tuple[np.ndarray, np.ndarray, np.ndarray] | None" = None

    @property
    def n(self) -> int:
        """Number of elements processed so far."""
        return self._n

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, value: int) -> None:
        """Process one stream element."""
        value = int(value)
        with self._mutate_lock:
            pos = bisect_right(self._values, value)
            if pos == 0 or pos == len(self._values):
                delta = 0
            else:
                # int() == math.floor() for non-negative floats, minus
                # the attribute lookups on the per-element hot path.
                delta = max(0, int(self._two_eps * self._n) - 1)
            self._values.insert(pos, value)
            self._g.insert(pos, 1)
            self._delta.insert(pos, delta)
            self._n += 1
            self._query_arrays = None
            self._since_compress += 1
            if self._since_compress >= self._compress_every:
                self._compress()
                self._since_compress = 0

    def update_batch(self, values: Iterable[int]) -> None:
        """Merge a batch of elements from any iterable.

        Arrays pass straight through to :meth:`update_many`; other
        iterables are materialized once into an int64 array via
        ``np.fromiter`` (no intermediate Python list) and follow the
        same path.
        """
        if isinstance(values, np.ndarray):
            self.update_many(values)
        else:
            self.update_many(np.fromiter(values, dtype=np.int64))

    def update_many(self, values: np.ndarray) -> None:
        """Bulk-insert a numpy batch: sort once, merge once.

        Small batches fall back to per-element updates.  Large batches
        are sorted (their internal ranks then being exact) and merged
        into the summary with exact-rank algebra; the result satisfies
        the same rank-bracketing invariant as element-wise insertion,
        so the ``eps``-guarantee is preserved (see docs/THEORY.md,
        "Batched updates").

        Thread-safety: mutations run under the sketch's mutate lock,
        consistent with :meth:`update` and :meth:`snapshot`.
        """
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            arr = arr.ravel()
        if arr.size == 0:
            return
        if arr.size < _BATCH_THRESHOLD:
            with self._mutate_lock:
                for value in arr:
                    self.update(int(value))
            return
        batch = np.sort(arr)
        with self._mutate_lock:
            if self._n == 0:
                merged_vals = batch
                rmin = np.arange(1, batch.size + 1, dtype=np.int64)
                rmax = rmin.copy()
            else:
                merged_vals, rmin, rmax = self._merge_exact_batch(batch)
            self._n += int(batch.size)
            self._load_from_bounds(merged_vals, rmin, rmax)
            self._compress()
            self._since_compress = 0

    def _merge_exact_batch(
        self, batch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Combine summary tuples with an exactly known sorted batch.

        For each summary tuple the batch contributes its exact rank to
        both rank bounds; for each batch element the summary
        contributes its usual [rmin(pred), rmax(succ) - 1] bracket.
        """
        a_vals = np.asarray(self._values, dtype=np.int64)
        a_g = np.asarray(self._g, dtype=np.int64)
        a_delta = np.asarray(self._delta, dtype=np.int64)
        a_rmin = np.cumsum(a_g)
        a_rmax = a_rmin + a_delta

        in_batch = np.searchsorted(batch, a_vals, side="right")
        a_rmin_c = a_rmin + in_batch
        a_rmax_c = a_rmax + in_batch

        pred = np.searchsorted(a_vals, batch, side="right") - 1
        low_a = np.where(pred >= 0, a_rmin[np.maximum(pred, 0)], 0)
        succ = np.searchsorted(a_vals, batch, side="right")
        up_a = np.where(
            succ < len(a_vals),
            a_rmax[np.minimum(succ, len(a_vals) - 1)] - 1,
            self._n,
        )
        b_ranks = np.arange(1, batch.size + 1, dtype=np.int64)
        b_rmin_c = b_ranks + low_a
        b_rmax_c = b_ranks + np.maximum(up_a, low_a)

        merged_vals = np.concatenate([a_vals, batch])
        merged_rmin = np.concatenate([a_rmin_c, b_rmin_c])
        merged_rmax = np.concatenate([a_rmax_c, b_rmax_c])
        order = np.lexsort((merged_rmin, merged_vals))
        return merged_vals[order], merged_rmin[order], merged_rmax[order]

    def _load_from_bounds(
        self, values: np.ndarray, rmin: np.ndarray, rmax: np.ndarray
    ) -> None:
        """Rebuild the tuple lists from (value, rmin, rmax) triples."""
        rmin = np.maximum.accumulate(rmin)
        rmax = np.maximum(rmax, rmin)
        g = np.diff(rmin, prepend=0)
        delta = rmax - rmin
        # A zero-g tuple shares its rmin with its predecessor and adds
        # no counting information; dropping it keeps the cumulative
        # sums (and therefore all rank bounds) intact.  The first
        # tuple always has g = rmin[0] >= 1.
        keep = g > 0
        # ndarray.tolist() yields the same Python ints as int(v) per
        # element, at C speed — this rebuild is the bulk-merge path's
        # hottest line.
        self._values = values[keep].tolist()
        self._g = g[keep].tolist()
        self._delta = delta[keep].tolist()
        self._query_arrays = None

    def _compress(self) -> None:
        """Merge adjacent tuples whose combined span stays within bound.

        Single right-to-left pass (linear time): tuple ``i`` folds into
        its successor while ``g_i + g_succ + delta_succ <= floor(2 eps
        n)``.  The first and last tuples (exact min and max) are never
        folded away.  Output is built into the reusable scratch lists,
        which are then swapped with the live ones — no per-pass list
        allocation, which measurably cuts the amortized update cost
        (``benchmarks/test_update_timing.py`` guards it).
        """
        values, g, delta = self._values, self._g, self._delta
        size = len(values)
        if size < 3:
            return
        threshold = int(self._two_eps * self._n)
        out_vals, out_g, out_delta = self._scratch
        out_vals.clear()
        out_g.clear()
        out_delta.clear()
        out_vals.append(values[-1])
        out_g.append(g[-1])
        out_delta.append(delta[-1])
        for i in range(size - 2, 0, -1):
            if g[i] + out_g[-1] + out_delta[-1] <= threshold:
                out_g[-1] += g[i]
            else:
                out_vals.append(values[i])
                out_g.append(g[i])
                out_delta.append(delta[i])
        out_vals.append(values[0])
        out_g.append(g[0])
        out_delta.append(delta[0])
        out_vals.reverse()
        out_g.reverse()
        out_delta.reverse()
        # Swap: the previous live lists become the next pass's scratch.
        self._scratch = (values, g, delta)
        self._values = out_vals
        self._g = out_g
        self._delta = out_delta
        self._query_arrays = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(values, rmin, rmax)`` arrays of the current tuples.

        ``rmin`` is the cumulative sum of the gaps and ``rmax`` adds
        each tuple's ``delta``; both queries below reduce to vectorized
        comparisons against these.  The cache is invalidated by every
        mutation and rebuilt on the next query, so query-heavy phases
        (the accurate search probes the live sketch once per bisection
        step) pay the ``O(s)`` construction once, not per probe.
        """
        if self._query_arrays is None:
            values = np.asarray(self._values, dtype=np.int64)
            rmin = np.cumsum(np.asarray(self._g, dtype=np.int64))
            rmax = rmin + np.asarray(self._delta, dtype=np.int64)
            self._query_arrays = (values, rmin, rmax)
        return self._query_arrays

    def query_rank(self, rank: int) -> int:
        """Value whose true rank is within ``eps * n`` of ``rank``."""
        if self._n == 0:
            raise ValueError("sketch is empty")
        rank = clamp_rank(rank, self._n)
        allowed = self.epsilon * self._n
        _, _, rmax = self._arrays()
        # First tuple whose upper rank bound overshoots the target.
        exceeds = rmax > rank + allowed
        if not exceeds.any():
            return self._values[-1]
        first = int(np.argmax(exceeds))
        return self._values[max(0, first - 1)]

    def query_ranks(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`query_rank` over an array of targets.

        Answers every target with one running-max pass over the tuple
        bounds plus a single ``searchsorted`` — the element-wise
        semantics are preserved exactly (each answer equals what
        ``query_rank`` returns for that target), which the summary
        extraction path relies on for bit-identical batched queries.
        """
        if self._n == 0:
            raise ValueError("sketch is empty")
        targets = np.clip(np.asarray(ranks, dtype=np.int64), 1, self._n)
        allowed = self.epsilon * self._n
        values, _, rmax = self._arrays()
        # The first tuple with rmax > t equals the first tuple whose
        # running max exceeds t, and the running max is sorted — so the
        # scalar argmax scan becomes one searchsorted.
        ceiling = np.maximum.accumulate(rmax)
        first = np.searchsorted(ceiling, targets + allowed, side="right")
        answer = np.where(
            first >= len(values),
            len(values) - 1,
            np.maximum(first - 1, 0),
        )
        return values[answer]

    def rank_bounds(self, value: int) -> Tuple[int, int]:
        """Bounds ``(rmin, rmax)`` on the rank of an arbitrary ``value``.

        The true number of stream elements ``<= value`` is guaranteed
        to lie within the returned interval.
        """
        if self._n == 0:
            return (0, 0)
        values, rmin, rmax = self._arrays()
        # First tuple strictly greater than ``value``; its predecessor's
        # cumulative gap is the lower bound.
        first = int(np.searchsorted(values, value, side="right"))
        lower = int(rmin[first - 1]) if first > 0 else 0
        if first >= len(values):
            return (lower, self._n)
        return (lower, max(lower, int(rmax[first]) - 1))

    def snapshot(self) -> "GKSketch":
        """A consistent copy, safe to take while another thread updates.

        Copy-on-query: the tuple lists are copied under the mutation
        lock, so the returned sketch is a frozen-in-time view that can
        be queried (or summarized) freely while the original keeps
        ingesting.  This is the sanctioned way to read a sketch that is
        concurrently written — the plain query methods assume a
        quiescent sketch.
        """
        copied = GKSketch(self.epsilon)
        with self._mutate_lock:
            copied._values = list(self._values)
            copied._g = list(self._g)
            copied._delta = list(self._delta)
            copied._n = self._n
            copied._since_compress = self._since_compress
        return copied

    def min_value(self) -> int:
        """Exact minimum of the stream so far."""
        if self._n == 0:
            raise ValueError("sketch is empty")
        return self._values[0]

    def max_value(self) -> int:
        """Exact maximum of the stream so far."""
        if self._n == 0:
            raise ValueError("sketch is empty")
        return self._values[-1]

    def tuple_count(self) -> int:
        """Number of (v, g, delta) tuples currently held."""
        return len(self._values)

    def memory_words(self) -> int:
        """Three 8-byte words per tuple plus bookkeeping."""
        return 3 * len(self._values) + 4
