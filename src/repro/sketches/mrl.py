"""The MRL99 randomized quantile sketch.

Manku, Rajagopalan & Lindsay (SIGMOD 1999), the randomized multi-level
buffer algorithm the paper's related-work section singles out: Wang et
al.'s experimental study found MRL99 and Greenwald-Khanna to be the two
most competitive streaming quantile algorithms, with MRL99 slightly
ahead on space for a given accuracy but without GK's deterministic
worst-case guarantee.

The structure keeps ``b`` buffers of ``k`` elements each, organized by
*level*.  Incoming elements fill an active level-0 buffer, sampled at
rate ``1 / 2^level_0`` once the stream outgrows the first levels.  When
all buffers are full, the two lowest-level buffers COLLAPSE: their
elements are merged and every other element (alternating offsets) is
kept in a new buffer one level up.  A rank query weights each buffer's
elements by ``2^level`` and reads the answer off the weighted merge.

With ``b * k = O((1/eps) log^2(1/(eps delta)))`` the returned value's
rank error is at most ``eps * n`` with probability ``1 - delta``.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from .base import QuantileSketch, clamp_rank


@dataclass
class _Buffer:
    """One MRL buffer: sorted elements, each representing 2^level inputs."""

    level: int
    values: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def weight(self) -> int:
        """Number of stream elements each entry represents."""
        return 1 << self.level


class MRL99Sketch(QuantileSketch):
    """Randomized multi-level buffer quantile summary.

    Parameters
    ----------
    buffer_size:
        Elements per buffer (``k``).
    num_buffers:
        Number of buffers (``b``); must be at least 3 so collapses can
        always free a buffer while one fills.
    seed:
        Seed for the sampling/offset RNG.
    """

    def __init__(
        self,
        buffer_size: int = 1000,
        num_buffers: int = 10,
        seed: Optional[int] = None,
    ) -> None:
        if buffer_size < 2:
            raise ValueError("buffer_size must be >= 2")
        if num_buffers < 3:
            raise ValueError("num_buffers must be >= 3")
        self.buffer_size = buffer_size
        self.num_buffers = num_buffers
        self._rng = np.random.default_rng(seed)
        self._buffers: List[_Buffer] = []
        self._pending: List[int] = []
        self._active_level = 0
        self._skip = 0  # elements to drop before the next accepted one
        self._n = 0

    @classmethod
    def for_epsilon(
        cls,
        epsilon: float,
        delta: float = 0.01,
        seed: Optional[int] = None,
    ) -> "MRL99Sketch":
        """Size buffers for error ``eps * n`` w.p. ``1 - delta``.

        Uses the practical sizing from the MRL99 paper's experiments:
        ``b ~ log2(1/eps)`` buffers of ``k ~ (1/eps) log^2(log(1/delta)
        / eps) / b`` elements, with generous constants.
        """
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        num_buffers = max(3, int(math.log2(2.0 / epsilon)))
        total = (2.0 / epsilon) * max(
            1.0, math.log2(math.log(2.0 / delta) / epsilon)
        )
        buffer_size = max(2, int(total / num_buffers))
        return cls(buffer_size=buffer_size, num_buffers=num_buffers,
                   seed=seed)

    @property
    def n(self) -> int:
        """Number of elements processed so far."""
        return self._n

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, value: int) -> None:
        """Process one stream element."""
        self._n += 1
        if self._skip > 0:
            self._skip -= 1
            return
        self._pending.append(int(value))
        # At level L the buffer represents k * 2^L inputs: accept one
        # element, then skip 2^L - 1.
        self._skip = (1 << self._active_level) - 1
        if len(self._pending) >= self.buffer_size:
            self._seal_pending()

    def update_many(self, values: Iterable[int]) -> None:
        """Process many elements at once.

        Deliberately element-wise: the sampling state (skip debt,
        level changes on seal) makes a vectorized path error-prone for
        little benefit — the sketch touches only every 2^L-th element
        once levels grow.
        """
        for value in np.asarray(values, dtype=np.int64).ravel():
            self.update(int(value))

    def update_batch(self, values: Iterable[int]) -> None:
        """Deprecated alias for :meth:`update_many`."""
        warnings.warn(
            "MRL99Sketch.update_batch is deprecated; "
            "use update_many (the protocol-standard name)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.update_many(np.fromiter((int(v) for v in values), np.int64))

    def _seal_pending(self) -> None:
        """Promote the filled working buffer and collapse if needed."""
        values = np.sort(np.asarray(self._pending, dtype=np.int64))
        self._buffers.append(_Buffer(level=self._active_level, values=values))
        self._pending = []
        while len(self._buffers) >= self.num_buffers:
            self._collapse()
        # New inputs sample at the lowest live level so weights stay
        # balanced (the MRL99 "new" policy).
        if self._buffers:
            self._active_level = min(b.level for b in self._buffers)
        self._skip = 0

    def _collapse(self) -> None:
        """Collapse the two lowest-level buffers into one a level up."""
        self._buffers.sort(key=lambda b: b.level)
        first, second = self._buffers[0], self._buffers[1]
        target_level = max(first.level, second.level) + 1
        # Weighted merge: repeat each element by its buffer's weight
        # relative to the smaller weight, then take alternating
        # elements with a random offset (the randomization that makes
        # MRL99's guarantee probabilistic).
        base = min(first.weight, second.weight)
        merged = np.sort(
            np.concatenate(
                [
                    np.repeat(first.values, first.weight // base),
                    np.repeat(second.values, second.weight // base),
                ]
            )
        )
        step = (1 << target_level) // base
        offset = int(self._rng.integers(0, step))
        collapsed = merged[offset::step]
        if collapsed.size == 0:
            collapsed = merged[:1]
        self._buffers = self._buffers[2:]
        self._buffers.append(_Buffer(level=target_level, values=collapsed))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _weighted_elements(self) -> "tuple[np.ndarray, np.ndarray]":
        """All summary elements with their weights, sorted by value."""
        parts = []
        weights = []
        for buffer in self._buffers:
            parts.append(buffer.values)
            weights.append(
                np.full(len(buffer.values), buffer.weight, dtype=np.int64)
            )
        if self._pending:
            pending = np.asarray(sorted(self._pending), dtype=np.int64)
            parts.append(pending)
            weights.append(
                np.full(
                    len(pending), 1 << self._active_level, dtype=np.int64
                )
            )
        if not parts:
            raise ValueError("sketch is empty")
        values = np.concatenate(parts)
        weight = np.concatenate(weights)
        order = np.argsort(values, kind="stable")
        return values[order], weight[order]

    def query_rank(self, rank: int) -> int:
        """Value whose rank approximates ``rank`` (w.h.p. within eps*n)."""
        if self._n == 0:
            raise ValueError("sketch is empty")
        rank = clamp_rank(rank, self._n)
        values, weights = self._weighted_elements()
        cumulative = np.cumsum(weights)
        # Rescale: the summary's total weight may not equal n exactly
        # (sampling drops a partial tail); target proportionally.
        target = rank / self._n * cumulative[-1]
        index = int(np.searchsorted(cumulative, target, side="left"))
        return int(values[min(index, len(values) - 1)])

    def memory_words(self) -> int:
        """Current memory footprint in 8-byte words."""
        held = sum(len(b.values) for b in self._buffers) + len(self._pending)
        return held + 2 * len(self._buffers) + 6
