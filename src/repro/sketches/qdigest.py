"""The Q-Digest quantile sketch.

Shrivastava et al. (SenSys 2004).  A q-digest summarizes a stream of
integers from a bounded universe ``[0, 2^L)`` as a set of counted nodes
of the complete binary tree over that universe.  With compression
factor ``k = L / eps`` the digest keeps ``O(L / eps)`` nodes and answers
rank queries with error at most ``eps * n``.

The paper uses Q-Digest both as an alternative stream sketch and as the
second pure-streaming baseline in every accuracy figure.
"""

from __future__ import annotations

import math
import warnings
from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

import numpy as np

from .base import QuantileSketch, clamp_rank


class QDigestSketch(QuantileSketch):
    """Q-Digest over the integer universe ``[0, 2**universe_log2)``.

    Parameters
    ----------
    epsilon:
        Error parameter in (0, 1); rank queries are accurate to
        ``eps * n``.
    universe_log2:
        Base-2 logarithm of the universe size.  Values outside
        ``[0, 2**universe_log2)`` are rejected.
    """

    def __init__(self, epsilon: float, universe_log2: int = 34) -> None:
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if not 1 <= universe_log2 <= 62:
            raise ValueError("universe_log2 must be in [1, 62]")
        self.epsilon = epsilon
        self.universe_log2 = universe_log2
        self._universe = 1 << universe_log2
        self._counts: Dict[int, int] = {}
        self._n = 0
        # Compress lazily once the digest has grown past twice its
        # guaranteed compressed size of 3 * L / eps nodes.
        self._max_nodes = max(8, int(6 * universe_log2 / epsilon))

    @property
    def n(self) -> int:
        """Number of elements processed so far."""
        return self._n

    def _leaf(self, value: int) -> int:
        return self._universe + value

    def update(self, value: int) -> None:
        """Process one stream element."""
        value = int(value)
        if not 0 <= value < self._universe:
            raise ValueError(f"value {value} outside universe")
        leaf = self._leaf(value)
        self._counts[leaf] = self._counts.get(leaf, 0) + 1
        self._n += 1
        if len(self._counts) > self._max_nodes:
            self._compress()

    def update_many(self, values: Iterable[int]) -> None:
        """Process many elements at once (bulk count via np.unique)."""
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        if arr.size == 0:
            return
        if arr.min() < 0 or arr.max() >= self._universe:
            raise ValueError("batch contains values outside universe")
        uniques, counts = np.unique(arr, return_counts=True)
        for value, count in zip(uniques, counts):
            leaf = self._leaf(int(value))
            self._counts[leaf] = self._counts.get(leaf, 0) + int(count)
        self._n += int(arr.size)
        if len(self._counts) > self._max_nodes:
            self._compress()

    def update_batch(self, values: Iterable[int]) -> None:
        """Deprecated alias for :meth:`update_many`."""
        warnings.warn(
            "QDigestSketch.update_batch is deprecated; "
            "use update_many (the protocol-standard name)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.update_many(values)

    def _threshold(self) -> int:
        return max(1, math.floor(self.epsilon * self._n / self.universe_log2))

    def _compress(self) -> None:
        """Restore the q-digest property bottom-up.

        A node (with its sibling) is folded into its parent whenever
        the combined count of node + sibling + parent is below the
        threshold ``floor(eps * n / L)``.
        """
        threshold = self._threshold()
        by_depth: "defaultdict[int, List[int]]" = defaultdict(list)
        for node in self._counts:
            by_depth[node.bit_length() - 1].append(node)
        for depth in range(self.universe_log2, 0, -1):
            for node in by_depth.get(depth, []):
                if node not in self._counts:
                    continue  # already folded as a sibling
                sibling = node ^ 1
                parent = node >> 1
                combined = (
                    self._counts.get(node, 0)
                    + self._counts.get(sibling, 0)
                    + self._counts.get(parent, 0)
                )
                if combined < threshold:
                    if parent not in self._counts:
                        by_depth[depth - 1].append(parent)
                    self._counts[parent] = combined
                    self._counts.pop(node, None)
                    self._counts.pop(sibling, None)

    def _node_range(self, node: int) -> Tuple[int, int]:
        """Inclusive value range ``[lo, hi]`` covered by ``node``."""
        depth = node.bit_length() - 1
        width = 1 << (self.universe_log2 - depth)
        lo = (node - (1 << depth)) * width
        return lo, lo + width - 1

    def query_rank(self, rank: int) -> int:
        """Value whose true rank is within ``eps * n`` of ``rank``."""
        if self._n == 0:
            raise ValueError("sketch is empty")
        rank = clamp_rank(rank, self._n)
        # Post-order over value space: ascending range max, with
        # smaller (deeper) ranges first on ties.
        nodes = sorted(
            self._counts.items(),
            key=lambda item: (self._node_range(item[0])[1], -item[0].bit_length()),
        )
        cumulative = 0
        for node, count in nodes:
            cumulative += count
            if cumulative >= rank:
                return self._node_range(node)[1]
        return self._node_range(nodes[-1][0])[1]

    def node_count(self) -> int:
        """Number of counted tree nodes currently held."""
        return len(self._counts)

    def memory_words(self) -> int:
        """Two 8-byte words per node (id, count) plus bookkeeping."""
        return 2 * len(self._counts) + 4
