"""RANDOM: reservoir-sampling quantile estimation.

Wang et al. (SIGMOD 2013) evaluate a simplified randomized competitor
("RANDOM") to GK and MRL99: keep a uniform random sample and answer
rank queries from the sample's order statistics.  With a reservoir of
``s`` elements the rank error is ``O(n * sqrt(log(1/delta) / s))`` with
probability ``1 - delta``.

The paper cites this line of work as the randomized alternative; we
include it as an extension baseline (it is not part of the paper's
figures, which use the deterministic GK and Q-Digest).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

from .base import QuantileSketch, clamp_rank


class RandomSamplerSketch(QuantileSketch):
    """Uniform reservoir sample with rank queries.

    Parameters
    ----------
    sample_size:
        Reservoir capacity ``s``.
    seed:
        Seed for the sampling RNG (deterministic runs for benches).
    """

    def __init__(self, sample_size: int, seed: Optional[int] = None) -> None:
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        self.sample_size = sample_size
        self._rng = np.random.default_rng(seed)
        self._reservoir = np.empty(sample_size, dtype=np.int64)
        self._filled = 0
        self._n = 0
        self._sorted_cache: Optional[np.ndarray] = None

    @classmethod
    def for_epsilon(
        cls,
        epsilon: float,
        delta: float = 0.01,
        seed: Optional[int] = None,
    ) -> "RandomSamplerSketch":
        """Size the reservoir so rank error is ``eps * n`` w.p. 1 - delta."""
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        sample_size = math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))
        return cls(sample_size=sample_size, seed=seed)

    @property
    def n(self) -> int:
        """Number of elements processed so far."""
        return self._n

    def update(self, value: int) -> None:
        """Process one stream element."""
        value = int(value)
        self._n += 1
        self._sorted_cache = None
        if self._filled < self.sample_size:
            self._reservoir[self._filled] = value
            self._filled += 1
            return
        # Vitter's algorithm R: replace a random slot w.p. s / n.
        j = int(self._rng.integers(0, self._n))
        if j < self.sample_size:
            self._reservoir[j] = value

    def update_batch(self, values: Iterable[int]) -> None:
        """Process many elements at once."""
        for value in values:
            self.update(int(value))

    def _sorted_sample(self) -> np.ndarray:
        if self._sorted_cache is None:
            self._sorted_cache = np.sort(self._reservoir[: self._filled])
        return self._sorted_cache

    def query_rank(self, rank: int) -> int:
        """Sample order statistic closest to the requested rank."""
        if self._n == 0:
            raise ValueError("sketch is empty")
        rank = clamp_rank(rank, self._n)
        sample = self._sorted_sample()
        # Map the target rank to the matching sample order statistic;
        # when the reservoir holds the entire stream this is exact.
        index = round(rank * len(sample) / self._n) - 1
        index = max(0, min(len(sample) - 1, index))
        return int(sample[index])

    def memory_words(self) -> int:
        """Current memory footprint in 8-byte words."""
        return self.sample_size + 4
