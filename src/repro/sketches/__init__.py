"""Streaming quantile sketches: GK, KLL, Q-Digest, RANDOM, and an exact oracle."""

from .base import QuantileSketch, clamp_rank, rank_for_phi
from .exact import ExactQuantiles
from .gk import GKSketch
from .kll import KLLSketch
from .mrl import MRL99Sketch
from .qdigest import QDigestSketch
from .random_sampler import RandomSamplerSketch

__all__ = [
    "QuantileSketch",
    "clamp_rank",
    "rank_for_phi",
    "ExactQuantiles",
    "GKSketch",
    "KLLSketch",
    "MRL99Sketch",
    "QDigestSketch",
    "RandomSamplerSketch",
]
