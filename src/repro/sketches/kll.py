"""KLL compactor sketch (Karnin-Lang-Liberty, arXiv:1603.05346).

The KLL sketch keeps a hierarchy of *compactors*: level ``h`` holds
elements of weight ``2**h``.  When a level fills past its capacity it
sorts its buffer, keeps every other element (a fair coin picks odd or
even positions) and promotes the survivors to level ``h + 1`` at twice
the weight.  Capacities shrink geometrically (ratio 2/3) from the top
level down, which is what gives KLL its ``O((1/eps) * sqrt(log 1/d))``
space bound.

Why this backend exists: GK summaries do not merge cleanly — there is
no known way to combine two GK sketches without the error compounding.
KLL compactors merge *by construction*: concatenate the level buffers
pairwise and re-run the same compaction rule, and the merged sketch
obeys the same ``eps * n`` rank guarantee over the union stream (the
randomness-alignment argument in the paper's Section 3 carries over
verbatim).  That property is what lets a sharded cluster answer quick
queries by fusing per-shard stream sketches without error blow-up.

Determinism contract (mirrors the repo-wide lazy-absorption rules):

* the compaction schedule depends only on the *sizes* of the level
  buffers, and coin flips come from a seeded ``numpy`` generator, so a
  seeded sketch is fully deterministic;
* ``update_many`` fills level 0 in chunks that stop exactly at the
  capacity boundary, so a batched feed triggers the same compactions —
  and consumes the same coin flips — as an element-at-a-time replay of
  the same values (bit-identical state either way);
* ``merge_many`` sorts each pooled level buffer, so the merged state
  depends only on the *multiset* of inputs per level: with the same
  seed, ``merge(a, b)`` and ``merge(b, a)`` are bit-identical.

Error model: unlike GK's deterministic guarantee, KLL's ``eps * n``
rank bound holds *with high probability* (the default sizing targets
99%).  ``rank_bounds`` therefore returns a probabilistic bracket; the
engine's accurate path never relies on it for correctness, only for
bisection seeding.
"""

from __future__ import annotations

import copy
import math
import threading
from typing import List, Sequence, Tuple

import numpy as np

from .base import QuantileSketch, clamp_rank

#: Geometric capacity decay between adjacent compactor levels.
_DECAY = 2.0 / 3.0

#: Leading constant in the eps(k) fit: eps ~ 2.296 / k**0.9 at 99%
#: confidence (empirical fit from the KLL paper's experiments).
_EPS_CONSTANT = 2.296

_EPS_EXPONENT = 0.9


def k_for_epsilon(epsilon: float) -> int:
    """Smallest top-level capacity ``k`` whose w.h.p. error is <= eps.

    Inverts the empirical fit ``eps(k) ~ 2.296 / k**0.9`` (99%
    confidence) from the KLL paper; floored at 8 so tiny-eps edge cases
    still compact sanely.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    return max(8, math.ceil((_EPS_CONSTANT / epsilon) ** (1.0 / _EPS_EXPONENT)))


class KLLSketch(QuantileSketch):
    """Mergeable quantile sketch over int64 streams.

    Parameters
    ----------
    epsilon:
        Target rank error (w.h.p.) as a fraction of the stream size.
    k:
        Top-level compactor capacity; derived from ``epsilon`` when
        omitted.
    seed:
        Seed for the compaction coin flips.  Two sketches fed the same
        values with the same seed are bit-identical.
    """

    def __init__(self, epsilon: float, k: "int | None" = None, seed: int = 0):
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self.k = k_for_epsilon(epsilon) if k is None else int(k)
        if self.k < 2:
            raise ValueError(f"k must be >= 2, got {self.k}")
        self._seed = int(seed)
        self._rng = np.random.default_rng(self._seed)
        self._levels: List[List[int]] = [[]]
        self._n = 0
        self._min: "int | None" = None
        self._max: "int | None" = None
        self._mutate_lock = threading.Lock()
        #: (sorted values, cumulative weights) cache for the query path.
        self._query_arrays: "Tuple[np.ndarray, np.ndarray] | None" = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _capacity(self, level: int) -> int:
        """Capacity of ``level``: ``k`` at the top, decaying by 2/3 down."""
        depth = len(self._levels) - 1 - level
        return max(2, math.ceil(self.k * (_DECAY ** depth)))

    def _compact(self) -> None:
        """Cascade-compact until every level is under capacity.

        Scans bottom-up for the first overflowing level, sorts it, and
        promotes a fair half (coin-picked odd or even positions) one
        level up at doubled weight.  Growing the hierarchy shrinks the
        lower capacities, so the scan restarts from level 0 each pass.
        """
        while True:
            target = None
            for h in range(len(self._levels)):
                if len(self._levels[h]) >= self._capacity(h):
                    target = h
                    break
            if target is None:
                return
            buffer = np.sort(
                np.asarray(self._levels[target], dtype=np.int64)
            )
            self._levels[target] = []
            if target + 1 == len(self._levels):
                self._levels.append([])
            offset = int(self._rng.integers(0, 2))
            self._levels[target + 1].extend(buffer[offset::2].tolist())

    def _note_value(self, value: int) -> None:
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def update(self, value: int) -> None:
        """Insert one element (weight-1 append to the level-0 buffer)."""
        value = int(value)
        with self._mutate_lock:
            self._note_value(value)
            self._levels[0].append(value)
            self._n += 1
            self._query_arrays = None
            if len(self._levels[0]) >= self._capacity(0):
                self._compact()

    def update_many(self, values: np.ndarray) -> None:
        """Bulk-insert a numpy batch, bit-identical to a scalar replay.

        Level 0 is filled in chunks that stop exactly where the scalar
        path would trigger a compaction, so the compaction schedule —
        and therefore the coin-flip sequence — is the same whether the
        feed arrived as one array or element by element.
        """
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            arr = arr.ravel()
        if arr.size == 0:
            return
        with self._mutate_lock:
            self._note_value(int(arr.min()))
            self._note_value(int(arr.max()))
            self._query_arrays = None
            pos = 0
            size = int(arr.size)
            while pos < size:
                room = self._capacity(0) - len(self._levels[0])
                if room <= 0:
                    self._compact()
                    continue
                take = min(room, size - pos)
                self._levels[0].extend(arr[pos : pos + take].tolist())
                self._n += take
                pos += take
                if len(self._levels[0]) >= self._capacity(0):
                    self._compact()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Total number of elements ingested."""
        return self._n

    def _arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted retained values and their cumulative weights.

        Cached between mutations so batched queries (summary extraction
        runs ``beta_2`` rank probes) pay the sort once.
        """
        if self._query_arrays is None:
            parts: List[np.ndarray] = []
            weights: List[np.ndarray] = []
            for h, level in enumerate(self._levels):
                if level:
                    arr = np.asarray(level, dtype=np.int64)
                    parts.append(arr)
                    weights.append(
                        np.full(arr.size, 1 << h, dtype=np.int64)
                    )
            values = np.concatenate(parts)
            weight = np.concatenate(weights)
            order = np.argsort(values, kind="stable")
            self._query_arrays = (
                values[order], np.cumsum(weight[order])
            )
        return self._query_arrays

    def query_rank(self, rank: int) -> int:
        """Value whose true rank is within ``eps * n`` of ``rank`` (w.h.p.).

        Compaction drifts the total retained weight away from ``n`` by
        up to one element per coin flip, so the target rank is rescaled
        into weight space (same rescaling the MRL backend uses) before
        the cumulative-weight search.
        """
        if self._n == 0:
            raise ValueError("sketch is empty")
        rank = clamp_rank(rank, self._n)
        values, cumw = self._arrays()
        target = rank / self._n * cumw[-1]
        index = int(np.searchsorted(cumw, target, side="left"))
        return int(values[min(index, len(values) - 1)])

    def query_ranks(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`query_rank` over an array of targets.

        Element-wise identical to the scalar method (same rescale, same
        ``searchsorted`` side), so summary extraction is bit-identical
        whether it probes rank-by-rank or in one batch.
        """
        if self._n == 0:
            raise ValueError("sketch is empty")
        targets = np.clip(np.asarray(ranks, dtype=np.int64), 1, self._n)
        values, cumw = self._arrays()
        scaled = targets / self._n * cumw[-1]
        index = np.minimum(
            np.searchsorted(cumw, scaled, side="left"),
            len(values) - 1,
        )
        return values[index]

    def rank_bounds(self, value: int) -> Tuple[int, int]:
        """Probabilistic bracket on the rank of an arbitrary ``value``.

        The center is the rescaled retained-weight rank; the half-width
        is ``ceil(eps * n)``.  Unlike GK's deterministic bracket this
        holds w.h.p. — callers that need certainty (the accurate search
        uses it only to seed bisection) must tolerate the tail.
        """
        if self._n == 0:
            return (0, 0)
        values, cumw = self._arrays()
        first = int(np.searchsorted(values, value, side="right"))
        covered = int(cumw[first - 1]) if first > 0 else 0
        center = int(round(covered / int(cumw[-1]) * self._n))
        slack = math.ceil(self.epsilon * self._n)
        return (max(0, center - slack), min(self._n, center + slack))

    def min_value(self) -> int:
        """Exact minimum of the stream so far."""
        if self._n == 0:
            raise ValueError("sketch is empty")
        return int(self._min)

    def max_value(self) -> int:
        """Exact maximum of the stream so far."""
        if self._n == 0:
            raise ValueError("sketch is empty")
        return int(self._max)

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------

    def snapshot(self) -> "KLLSketch":
        """A consistent copy, safe to take while another thread updates.

        Level buffers and the generator state are copied under the
        mutation lock, so the copy is a frozen-in-time view that can be
        queried, merged or serialized while the original keeps
        ingesting.
        """
        copied = KLLSketch(self.epsilon, k=self.k, seed=self._seed)
        with self._mutate_lock:
            copied._levels = [list(level) for level in self._levels]
            copied._n = self._n
            copied._min = self._min
            copied._max = self._max
            copied._rng.bit_generator.state = copy.deepcopy(
                self._rng.bit_generator.state
            )
        return copied

    def merge(self, other: "KLLSketch", seed: int = 0) -> "KLLSketch":
        """Merged sketch over the union stream; inputs are untouched."""
        return KLLSketch.merge_many([self, other], seed=seed)

    @classmethod
    def merge_many(
        cls, sketches: Sequence["KLLSketch"], seed: int = 0
    ) -> "KLLSketch":
        """Merge any number of KLL sketches into a fresh one.

        Level buffers are pooled pairwise and *sorted*, so the merged
        state depends only on the per-level multisets: with the same
        seed the merge is bit-identical under any argument order
        (commutative and, up to fresh coin flips, associative — the
        rank guarantee composes to ``eps * sum(n)`` either way).

        The result adopts the coarsest precision of the inputs
        (``max`` epsilon, ``min`` k), which is the level at which the
        union guarantee actually holds.
        """
        sketches = list(sketches)
        if not sketches:
            raise ValueError("merge_many needs at least one sketch")
        merged = cls(
            max(s.epsilon for s in sketches),
            k=min(s.k for s in sketches),
            seed=seed,
        )
        height = max(len(s._levels) for s in sketches)
        levels: List[List[int]] = []
        for h in range(height):
            pools = [
                np.asarray(s._levels[h], dtype=np.int64)
                for s in sketches
                if h < len(s._levels) and s._levels[h]
            ]
            if pools:
                levels.append(np.sort(np.concatenate(pools)).tolist())
            else:
                levels.append([])
        merged._levels = levels
        merged._n = sum(s._n for s in sketches)
        mins = [s._min for s in sketches if s._n > 0]
        maxes = [s._max for s in sketches if s._n > 0]
        merged._min = min(mins) if mins else None
        merged._max = max(maxes) if maxes else None
        merged._compact()
        return merged

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def level_sizes(self) -> "list[int]":
        """Buffer length per compactor level (diagnostics)."""
        return [len(level) for level in self._levels]

    def retained(self) -> int:
        """Number of elements currently held across all levels."""
        return sum(len(level) for level in self._levels)

    def memory_words(self) -> int:
        """One 8-byte word per retained element plus bookkeeping."""
        return self.retained() + 6
