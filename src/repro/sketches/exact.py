"""Exact quantile oracle.

The evaluation measures relative error ``|r - r_hat| / (phi * N)``
against the *true* rank of the returned element (Section 3.1).  At the
reproduction's laptop scale we can afford to keep the full dataset in
memory; this oracle does so and answers exact rank and selection
queries.  It is an evaluation aid, not a sketch with bounded memory.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .base import QuantileSketch, clamp_rank


class ExactQuantiles(QuantileSketch):
    """Stores everything; answers rank and selection queries exactly."""

    def __init__(self) -> None:
        self._chunks: List[np.ndarray] = []
        self._sorted: Optional[np.ndarray] = None
        self._n = 0

    @property
    def n(self) -> int:
        """Number of elements processed so far."""
        return self._n

    def update(self, value: int) -> None:
        """Process one stream element."""
        self.update_batch(np.asarray([value], dtype=np.int64))

    def update_batch(self, values: Iterable[int]) -> None:
        """Process many elements from any iterable."""
        if isinstance(values, np.ndarray):
            self.update_many(values)
        else:
            self.update_many(np.fromiter(values, dtype=np.int64))

    def update_many(self, values: np.ndarray) -> None:
        """Process a numpy batch in one O(1)-append chunk."""
        arr = np.asarray(values, dtype=np.int64).ravel()
        if arr.size == 0:
            return
        self._chunks.append(arr.copy())
        self._sorted = None
        self._n += int(arr.size)

    def _all_sorted(self) -> np.ndarray:
        if self._sorted is None:
            if self._chunks:
                self._sorted = np.sort(np.concatenate(self._chunks))
            else:
                self._sorted = np.empty(0, dtype=np.int64)
        return self._sorted

    def rank(self, value: int) -> int:
        """Exact number of elements ``<= value``."""
        return int(np.searchsorted(self._all_sorted(), value, side="right"))

    def rank_strict(self, value: int) -> int:
        """Exact number of elements strictly ``< value``."""
        return int(np.searchsorted(self._all_sorted(), value, side="left"))

    def query_rank(self, rank: int) -> int:
        """The exact element of the given rank (1-indexed)."""
        if self._n == 0:
            raise ValueError("oracle is empty")
        rank = clamp_rank(rank, self._n)
        return int(self._all_sorted()[rank - 1])

    def memory_words(self) -> int:
        """Current memory footprint in 8-byte words."""
        return self._n + 4
