"""Admission control: bounded queues and typed overload rejection.

An open-loop arrival process (the world's actual shape — millions of
users do not wait for each other) will, past saturation, grow an
unbounded queue and collapse tail latency.  The admission controller
caps how many requests may wait per mode: past the bound a request is
rejected *immediately* with a typed :class:`Overloaded` carrying the
observed depth, or — when
:attr:`~repro.core.config.ServingConfig.degrade_on_overload` is set —
an accurate request is downgraded to the quick path instead (the
serving-side analogue of the engine's ``degrade_on_fault``: a cheaper,
wider-error answer beats no answer).
"""

from __future__ import annotations

import threading
from typing import Dict

from ..core.config import ServingConfig


class Overloaded(RuntimeError):
    """The service's request queue is full; retry later or back off.

    Attributes
    ----------
    mode:
        The requested query mode (``"quick"`` or ``"accurate"``).
    queue_depth:
        Requests waiting at rejection time.
    bound:
        The admission bound that was hit.
    """

    def __init__(self, mode: str, queue_depth: int, bound: int) -> None:
        super().__init__(
            f"serving queue full ({queue_depth}/{bound} waiting, "
            f"mode={mode})"
        )
        self.mode = mode
        self.queue_depth = queue_depth
        self.bound = bound


class AdmissionController:
    """Per-mode bounded admission in front of the service queues.

    Tracks how many admitted requests are still *waiting* (the service
    releases a slot when a dispatcher takes the request for execution).
    ``admit`` returns the effective mode — equal to the requested mode,
    or ``"quick"`` when an accurate request was degraded under load.
    """

    def __init__(self, config: ServingConfig) -> None:
        self._config = config
        self._lock = threading.Lock()
        self._waiting: Dict[str, int] = {"quick": 0, "accurate": 0}
        self.rejected: Dict[str, int] = {"quick": 0, "accurate": 0}
        #: accurate requests admitted as quick because their queue was
        #: full (only with ``degrade_on_overload``).
        self.degraded_admissions = 0

    @property
    def queue_depth(self) -> int:
        """Total requests currently waiting (both modes)."""
        with self._lock:
            return self._waiting["quick"] + self._waiting["accurate"]

    def waiting(self, mode: str) -> int:
        """Requests of one mode currently waiting."""
        with self._lock:
            return self._waiting[mode]

    def admit(self, mode: str) -> str:
        """Claim a queue slot or raise :class:`Overloaded`.

        Returns the effective mode the request was admitted under.
        """
        config = self._config
        with self._lock:
            total = self._waiting["quick"] + self._waiting["accurate"]
            if mode == "accurate":
                bound = config.accurate_queue_bound
                over = (
                    self._waiting["accurate"] >= bound
                    or total >= config.max_queue
                )
                if over and config.degrade_on_overload:
                    # Quick answers clear the queue orders of magnitude
                    # faster, so the degraded request usually still
                    # fits; if even the quick path is full, reject.
                    if total < config.max_queue:
                        self.degraded_admissions += 1
                        self._waiting["quick"] += 1
                        return "quick"
                    self.rejected["accurate"] += 1
                    raise Overloaded("accurate", total, config.max_queue)
                if over:
                    self.rejected["accurate"] += 1
                    raise Overloaded(
                        "accurate", self._waiting["accurate"], bound
                    )
            else:
                if total >= config.max_queue:
                    self.rejected["quick"] += 1
                    raise Overloaded("quick", total, config.max_queue)
            self._waiting[mode] += 1
            return mode

    def release(self, mode: str) -> None:
        """Free one waiting slot (the request left the queue)."""
        with self._lock:
            self._waiting[mode] -= 1

    def rejections(self) -> Dict[str, int]:
        """Snapshot of the per-mode rejection counters."""
        with self._lock:
            return dict(self.rejected)
