"""Concurrent query serving over the hybrid engine.

The paper's quick/accurate split exists so a warehouse can answer
quantile queries *while* batches keep arriving; this package makes
that concurrent in practice.  :class:`QueryService` accepts requests
from many client threads, batches quick-path requests pinned at the
same epoch into one TS merge (:mod:`~repro.serving.coalescer`), bounds
its queues with typed :class:`Overloaded` rejection
(:mod:`~repro.serving.admission`), and measures itself with the
repo's own GK sketches (:mod:`~repro.serving.metrics`).
:class:`LoadGenerator` drives it closed- or open-loop for the A8
ablation (:mod:`~repro.serving.bench`).
"""

from ..core.config import ServingConfig
from .admission import AdmissionController, Overloaded
from .bench import build_bench_engine, run_serving_bench
from .loadgen import LoadGenerator, LoadResult
from .metrics import LatencySummary, MetricsSnapshot, ServiceMetrics
from .service import PendingQuery, QueryService

__all__ = [
    "AdmissionController",
    "LatencySummary",
    "LoadGenerator",
    "LoadResult",
    "MetricsSnapshot",
    "Overloaded",
    "PendingQuery",
    "QueryService",
    "ServiceMetrics",
    "ServingConfig",
    "build_bench_engine",
    "run_serving_bench",
]
