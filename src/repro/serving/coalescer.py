"""The quick-path query coalescer: many requests, one TS merge.

The quick response (Algorithm 5) is a binary search over the combined
summary TS — but *building* TS (merging every partition summary with
the stream summary and computing rank bounds) dominates its cost.  Two
requests pinned at the same epoch see the identical TS, so the merge is
shareable: the coalescer batches every quick request that arrived
within a window, pins **one**
:class:`~repro.core.epoch.SnapshotHandle`, and answers the whole batch
with one cached merge plus a single vectorized rank-bound pass
(:meth:`~repro.core.bounds.CombinedSummary.quick_responses`).  This is
the data-fusion insight (PAPERS.md: quantile trackers shared across
streams) applied to our read path: merges per request drop below one,
which is the serving benchmark's headline number.

Duplicate phis inside a batch are answered once and fanned out, so a
thundering herd of dashboards refreshing the same p99 costs one
answer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import HybridQuantileEngine
    from ..core.epoch import SnapshotHandle
    from .metrics import ServiceMetrics
    from .service import PendingQuery


def answer_quick_batch(
    engine: "HybridQuantileEngine",
    batch: "List[PendingQuery]",
    metrics: "ServiceMetrics",
    warm: "Optional[Callable[[SnapshotHandle, List[float]], None]]" = None,
) -> None:
    """Answer a coalesced batch of quick requests against one pin.

    Requests are grouped by window scope (different windows need
    different merges), deduplicated by phi within each group, and every
    request is fulfilled — or failed with the batch's exception, so no
    waiter hangs.  ``warm``, when given, runs once against the pinned
    handle with the batch's distinct phis — the service uses it to
    prefetch the shared block tier once per epoch-batch.
    """
    try:
        with engine.pin() as handle:
            if warm is not None:
                warm(handle, list(dict.fromkeys(r.phi for r in batch)))
            merges_before = handle.ts_merges_built
            groups: "Dict[object, List[PendingQuery]]" = {}
            for request in batch:
                groups.setdefault(request.window_steps, []).append(request)
            for window_steps, requests in groups.items():
                phis = list(dict.fromkeys(r.phi for r in requests))
                results = handle.quantile_many(
                    phis, mode="quick", window_steps=window_steps
                )
                table = dict(zip(phis, results))
                partial = sum(
                    1
                    for r in results
                    if getattr(r, "partial", None) is not None
                )
                if partial:
                    metrics.note_partial(len(requests))
                for request in requests:
                    request._fulfill(table[request.phi], handle.epoch)
            merges = handle.ts_merges_built - merges_before
    except BaseException as exc:
        for request in batch:
            if not request.done:
                request._fail(exc)
        raise
    metrics.note_batch(len(batch), merges)


def dedupe_key(request: "PendingQuery") -> Tuple[float, object]:
    """Requests with equal keys may share one answer."""
    return (request.phi, request.window_steps)
