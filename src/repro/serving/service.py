"""The concurrent query service: epochs + coalescing + admission.

:class:`QueryService` sits in front of one
:class:`~repro.core.engine.HybridQuantileEngine` and accepts
``quantile(phi, mode)`` requests from any number of client threads
while ingest keeps running underneath:

* **Admission** — a bounded queue per mode; past the bound, submit
  raises a typed :class:`~repro.serving.admission.Overloaded` (or, when
  configured, degrades accurate requests to the quick path).
* **Coalescing** — quick requests arriving within a window are batched
  against one pinned epoch: one TS merge, one vectorized rank-bound
  pass, every waiter fulfilled from it.
* **Deduplication** — identical accurate probes (same phi and window)
  waiting in the queue share a single disk search.
* **Metrics** — every request's queue + execution latency lands in
  per-mode GK histograms (:class:`~repro.serving.metrics.
  ServiceMetrics`), alongside queue depth, rejections and the
  coalescing ratio.

Requests return a :class:`PendingQuery` future; ``quantile`` is the
blocking convenience wrapper.  ``pause``/``resume`` freeze dispatch (the
queues keep admitting), which tests and benchmarks use to build batches
deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, List, Optional

from ..core.config import ServingConfig
from ..core.engine import HybridQuantileEngine, QueryResult
from ..core.epoch import SnapshotHandle
from ..storage.cache import BlockCache
from .admission import AdmissionController, Overloaded  # noqa: F401
from .coalescer import answer_quick_batch, dedupe_key
from .metrics import MetricsSnapshot, ServiceMetrics


class PendingQuery:
    """A submitted request; resolves to a
    :class:`~repro.core.engine.QueryResult`."""

    def __init__(
        self,
        phi: float,
        mode: str,
        effective_mode: str,
        window_steps: Optional[int],
    ) -> None:
        #: the quantile fraction requested.
        self.phi = phi
        #: the mode the caller asked for.
        self.mode = mode
        #: the mode the request was admitted under (differs only when
        #: an accurate request was degraded to quick under overload).
        self.effective_mode = effective_mode
        self.window_steps = window_steps
        self.submitted_at = time.perf_counter()
        #: the engine epoch the answer was pinned at (set on fulfill).
        self.epoch: Optional[int] = None
        self._done = threading.Event()
        self._result: Optional[QueryResult] = None
        self._error: Optional[BaseException] = None

    @property
    def degraded_by_overload(self) -> bool:
        """Whether admission downgraded this request to the quick path."""
        return self.mode == "accurate" and self.effective_mode == "quick"

    @property
    def done(self) -> bool:
        """Whether the request has been answered (or failed)."""
        return self._done.is_set()

    def _fulfill(self, result: QueryResult, epoch: int) -> None:
        self.epoch = epoch
        self._result = result
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """Block until answered; raises the execution error if any."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query phi={self.phi} not answered within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class QueryService:
    """Thread-based concurrent quantile serving over one engine."""

    def __init__(
        self,
        engine: HybridQuantileEngine,
        config: Optional[ServingConfig] = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else ServingConfig()
        self.admission = AdmissionController(self.config)
        self.metrics = ServiceMetrics(self.config.metrics_epsilon)
        self._cv = threading.Condition()
        self._quick: "Deque[PendingQuery]" = deque()
        self._accurate: "Deque[PendingQuery]" = deque()
        self._paused = False
        self._closed = False
        # Epoch-batch cache warming: when the engine carries a shared
        # block tier, the service prefetches the block ranges popular
        # phis will probe — once per epoch, through a long-lived
        # *follower* cache (its per-run state is pruned when compaction
        # retires runs; the unbounded-growth fix has a production user
        # here, since this cache spans epochs).
        shared = engine.shared_cache
        self._warm_cache: Optional[BlockCache] = (
            BlockCache(
                engine.disk,
                enabled=engine.config.block_cache,
                shared=shared,
                follow_invalidation=True,
            )
            if shared is not None
            else None
        )
        self._warm_lock = threading.Lock()
        self._warmed_epoch: Optional[int] = None
        self._threads: List[threading.Thread] = []
        for index in range(self.config.quick_workers):
            self._spawn(self._quick_loop, f"repro-serve-quick-{index}")
        for index in range(self.config.accurate_workers):
            self._spawn(self._accurate_loop, f"repro-serve-acc-{index}")

    def _spawn(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def submit(
        self,
        phi: float,
        mode: str = "quick",
        window_steps: Optional[int] = None,
    ) -> PendingQuery:
        """Enqueue one request; returns its future.

        Raises :class:`Overloaded` immediately when the queue bound is
        hit, and ``RuntimeError`` after :meth:`close`.
        """
        if mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")
        if not 0 < phi <= 1:
            raise ValueError("phi must be in (0, 1]")
        with self._cv:
            if self._closed:
                raise RuntimeError("service is closed")
            effective = self.admission.admit(mode)
            request = PendingQuery(phi, mode, effective, window_steps)
            if effective == "quick":
                self._quick.append(request)
            else:
                self._accurate.append(request)
            if request.degraded_by_overload:
                self.metrics.note_degraded()
            self.metrics.observe_queue_depth(
                len(self._quick) + len(self._accurate)
            )
            self._cv.notify_all()
        return request

    def quantile(
        self,
        phi: float,
        mode: str = "quick",
        window_steps: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> QueryResult:
        """Submit and block for the answer (closed-loop client call)."""
        return self.submit(phi, mode, window_steps).result(timeout)

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting to execute."""
        with self._cv:
            return len(self._quick) + len(self._accurate)

    def metrics_snapshot(self) -> MetricsSnapshot:
        """One consistent reading of every service counter."""
        shared = self.engine.shared_cache
        disk = getattr(self.engine, "disk", None)
        backend = getattr(disk, "backend", None)
        return self.metrics.snapshot(
            queue_depth=self.queue_depth,
            rejected=self.admission.rejections(),
            cache=shared.stats() if shared is not None else None,
            backend=backend.stats() if backend is not None else None,
        )

    def _maybe_warm(
        self, handle: SnapshotHandle, phis: "List[float]"
    ) -> None:
        """Warm the shared tier once per epoch for the phis in flight.

        The first dispatcher to handle an epoch runs the warming pass;
        later batches and accurate groups pinned at the same epoch find
        the blocks resident.  A no-op without a shared tier.
        """
        if self._warm_cache is None or not phis:
            return
        with self._warm_lock:
            if self._warmed_epoch == handle.epoch:
                return
            self._warmed_epoch = handle.epoch
        blocks = handle.warm(phis, cache=self._warm_cache)
        self.metrics.note_warm(blocks)

    def pause(self) -> None:
        """Freeze dispatch; submissions keep queueing (test hook)."""
        with self._cv:
            self._paused = True

    def resume(self) -> None:
        """Resume dispatch after :meth:`pause`."""
        with self._cv:
            self._paused = False
            self._cv.notify_all()

    def drain(self) -> None:
        """Block until the queues are empty (dispatch keeps running)."""
        with self._cv:
            while self._quick or self._accurate:
                if self._paused:
                    raise RuntimeError("cannot drain a paused service")
                self._cv.wait(0.01)

    def close(self) -> None:
        """Serve everything still queued, then stop the workers."""
        with self._cv:
            self._paused = False
            self._closed = True
            self._cv.notify_all()
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatch side
    # ------------------------------------------------------------------

    def _take_quick_batch(self) -> "Optional[List[PendingQuery]]":
        """Take the next coalesced batch (None = shut down)."""
        config = self.config
        with self._cv:
            # close() clears the pause flag, so after shutdown this
            # reduces to draining the backlog and returning None.
            while (not self._quick or self._paused) and not self._closed:
                self._cv.wait(0.05)
            if not self._quick:
                return None
            batch = [self._quick.popleft()]
            self.admission.release("quick")
            if not config.coalesce:
                self._cv.notify_all()
                return batch
            deadline = time.perf_counter() + config.coalesce_window_ms / 1e3
            while len(batch) < config.coalesce_max_batch:
                while self._quick and len(batch) < config.coalesce_max_batch:
                    batch.append(self._quick.popleft())
                    self.admission.release("quick")
                if len(batch) >= config.coalesce_max_batch or self._closed:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                # Linger briefly so concurrent arrivals join this
                # batch; submit() notifies the condition on arrival.
                self._cv.wait(remaining)
            self._cv.notify_all()
            return batch

    def _quick_loop(self) -> None:
        while True:
            batch = self._take_quick_batch()
            if batch is None:
                return
            try:
                answer_quick_batch(
                    self.engine, batch, self.metrics, warm=self._maybe_warm
                )
            except BaseException:
                # Waiters got the exception via their futures; the
                # dispatcher survives to serve the next batch.
                pass
            now = time.perf_counter()
            for request in batch:
                if request._error is None:
                    self.metrics.record("quick", now - request.submitted_at)

    def _take_accurate_group(self) -> "Optional[List[PendingQuery]]":
        """Take one request plus all queued duplicates of it."""
        with self._cv:
            while (
                not self._accurate or self._paused
            ) and not self._closed:
                self._cv.wait(0.05)
            if not self._accurate:
                return None
            head = self._accurate.popleft()
            self.admission.release("accurate")
            group = [head]
            key = dedupe_key(head)
            kept: "Deque[PendingQuery]" = deque()
            while self._accurate:
                request = self._accurate.popleft()
                if dedupe_key(request) == key:
                    group.append(request)
                    self.admission.release("accurate")
                else:
                    kept.append(request)
            self._accurate = kept
            self._cv.notify_all()
            return group

    def _accurate_loop(self) -> None:
        while True:
            group = self._take_accurate_group()
            if group is None:
                return
            head = group[0]
            try:
                with self.engine.pin() as handle:
                    self._maybe_warm(handle, [head.phi])
                    result = handle.quantile(
                        head.phi,
                        mode="accurate",
                        window_steps=head.window_steps,
                    )
                    epoch = handle.epoch
                    merges = handle.ts_merges_built
            except BaseException as exc:
                for request in group:
                    request._fail(exc)
                continue
            self.metrics.note_merges(merges)
            if getattr(result, "partial", None) is not None:
                self.metrics.note_partial(len(group))
            if len(group) > 1:
                self.metrics.note_dedup(len(group) - 1)
            now = time.perf_counter()
            for request in group:
                request._fulfill(result, epoch)
                self.metrics.record(
                    "accurate", now - request.submitted_at
                )
