"""The serving benchmark: throughput, tail latency, coalescing ratio.

One callable, :func:`run_serving_bench`, drives the whole A8 ablation:

* a closed-loop client sweep with coalescing on and off, reporting
  throughput, p50/p99, and TS merges per served request — plus a
  bit-identity check replaying every answered phi serially against the
  same (quiescent) engine state;
* an open-loop overload run against a deliberately small queue,
  demonstrating typed :class:`~repro.serving.admission.Overloaded`
  rejections (or accurate→quick degradation) instead of unbounded
  queue growth.

The returned dict is what ``benchmarks/test_ablation_serving.py``
asserts over and writes to ``BENCH_serving.json``, and what the CLI's
``serve-bench`` command prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.config import EngineConfig, ServingConfig
from ..core.engine import HybridQuantileEngine
from ..workloads import NormalWorkload
from .loadgen import LoadGenerator
from .service import QueryService

BENCH_PHIS = (0.25, 0.5, 0.75, 0.95, 0.99)


def build_bench_engine(
    steps: int = 6,
    batch: int = 20_000,
    epsilon: float = 0.01,
    kappa: int = 10,
    seed: int = 7,
    ingest_mode: str = "background",
    shared_cache_blocks: int = 0,
    update_batch: "int | None" = None,
) -> HybridQuantileEngine:
    """A warehouse pre-loaded with a seeded Normal workload.

    Ingestion runs through the vectorized ``stream_update_many`` path;
    ``update_batch`` chunks each per-step array into smaller update
    calls (``None`` hands the whole step over in one call).
    """
    config = EngineConfig(
        epsilon=epsilon,
        kappa=kappa,
        block_elems=100,
        ingest_mode=ingest_mode,
        shared_cache_blocks=shared_cache_blocks,
    )
    engine = HybridQuantileEngine(config=config)
    workload = NormalWorkload(seed=seed)
    workload.feed(engine, steps, batch, update_batch=update_batch)
    engine.flush()
    # Leave a live stream tail so queries exercise the HS ∪ SS union.
    engine.stream_update_many(workload.generate(batch))
    return engine


def _closed_loop_row(
    engine: HybridQuantileEngine,
    clients: int,
    requests_per_client: int,
    coalesce: bool,
    phis: Sequence[float],
    seed: int,
) -> Dict[str, object]:
    serving = ServingConfig(
        coalesce=coalesce,
        max_queue=max(64, 4 * clients),
        coalesce_max_batch=max(64, 2 * clients),
    )
    merges_before = engine.epoch_stats.ts_merges
    with QueryService(engine, serving) as service:
        generator = LoadGenerator(service, phis=phis, seed=seed)
        result = generator.closed_loop(
            clients,
            requests_per_client,
            mode="quick",
            # Warm up with a guaranteed real batch so the ratio
            # assertion is deterministic, not scheduler-dependent.
            pause_until_queued=2 if coalesce and clients > 1 else 0,
        )
        snapshot = service.metrics_snapshot()
    merges = engine.epoch_stats.ts_merges - merges_before
    # Bit-identity: the engine is quiescent during the run, so a serial
    # replay of each phi at the same state must reproduce every answer.
    serial = {
        phi: engine.quantile(phi, mode="quick").value
        for phi in sorted({phi for phi, _, _ in result.answers})
    }
    identical = all(
        value == serial[phi] for phi, value, _ in result.answers
    )
    quick = snapshot.latency["quick"]
    return {
        "clients": clients,
        "coalesce": coalesce,
        "requests": result.requests,
        "served": result.served,
        "rejected": result.rejected,
        "ts_merges": merges,
        "coalescing_ratio": (
            merges / result.served if result.served else 1.0
        ),
        "coalesced_batches": snapshot.coalesced_batches,
        "max_batch": snapshot.max_batch,
        "throughput_qps": result.throughput_qps,
        "p50_ms": quick.p50 * 1e3,
        "p99_ms": quick.p99 * 1e3,
        "bit_identical": identical,
    }


def _overload_row(
    engine: HybridQuantileEngine,
    phis: Sequence[float],
    seed: int,
    total_requests: int = 120,
    degrade: bool = False,
) -> Dict[str, object]:
    serving = ServingConfig(
        max_queue=8,
        accurate_queue=4,
        accurate_workers=1,
        degrade_on_overload=degrade,
    )
    with QueryService(engine, serving) as service:
        generator = LoadGenerator(service, phis=phis, seed=seed)
        # Arrival rate far past what one accurate worker can absorb:
        # the bounded queue must shed load, not grow.
        result = generator.open_loop(
            rate_qps=50_000.0,
            total_requests=total_requests,
            mode="accurate",
        )
        snapshot = service.metrics_snapshot()
    accurate = snapshot.latency["accurate"]
    return {
        "mode": "degrade" if degrade else "reject",
        "rate_qps": 50_000.0,
        "requests": result.requests,
        "served": result.served,
        "rejected": result.rejected,
        "degraded": result.degraded,
        "queue_bound": serving.accurate_queue_bound,
        "peak_queue_depth": snapshot.peak_queue_depth,
        "p99_ms": max(accurate.p99, snapshot.p99("quick")) * 1e3,
    }


def run_serving_bench(
    steps: int = 6,
    batch: int = 20_000,
    clients: Sequence[int] = (1, 8, 32),
    requests_per_client: int = 25,
    seed: int = 7,
    engine: Optional[HybridQuantileEngine] = None,
) -> Dict[str, object]:
    """Run the full A8 serving ablation; returns the result document."""
    own_engine = engine is None
    if engine is None:
        engine = build_bench_engine(steps=steps, batch=batch, seed=seed)
    try:
        rows: List[Dict[str, object]] = []
        for coalesce in (True, False):
            for count in clients:
                rows.append(
                    _closed_loop_row(
                        engine,
                        count,
                        requests_per_client,
                        coalesce,
                        BENCH_PHIS,
                        seed,
                    )
                )
        overload = [
            _overload_row(engine, BENCH_PHIS, seed, degrade=False),
            _overload_row(engine, BENCH_PHIS, seed, degrade=True),
        ]
        return {
            "benchmark": "serving_ablation",
            "meta": {
                "steps": steps,
                "batch": batch,
                "clients": list(clients),
                "requests_per_client": requests_per_client,
                "seed": seed,
                "n_total": engine.n_total,
            },
            "closed_loop": rows,
            "overload": overload,
        }
    finally:
        if own_engine:
            engine.close()
