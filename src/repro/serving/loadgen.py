"""Deterministic load generation against a :class:`QueryService`.

Two canonical harness shapes (Schroeder et al.'s closed/open-loop
distinction — the choice changes what overload looks like):

* **Closed loop** — N client threads, each keeping exactly one request
  in flight: issue, block on the answer, repeat.  Throughput self-
  limits, so this measures how much sharing (coalescing) the service
  extracts from concurrency.
* **Open loop** — arrivals come from a seeded Poisson process that does
  *not* wait for answers, the shape real user traffic has.  Past
  saturation the queue would grow without bound; this is the mode that
  exercises admission control's typed rejections.

All randomness (phi choices, inter-arrival gaps) is drawn up front
from one seeded generator, so two runs against the same engine state
issue the identical request sequence.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .admission import Overloaded
from .service import PendingQuery, QueryService


@dataclass
class LoadResult:
    """Outcome of one load-generation run.

    ``answers`` holds one ``(phi, value, epoch)`` triple per served
    request — the replay material for bit-identity checks.
    """

    requests: int
    served: int
    rejected: int
    degraded: int
    wall_seconds: float
    answers: List[Tuple[float, int, int]] = field(default_factory=list)

    @property
    def throughput_qps(self) -> float:
        """Served requests per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.served / self.wall_seconds


class LoadGenerator:
    """Seeded request generator driving one service."""

    def __init__(
        self,
        service: QueryService,
        phis: Sequence[float] = (0.25, 0.5, 0.75, 0.95, 0.99),
        seed: int = 0,
    ) -> None:
        self.service = service
        self.phis = list(phis)
        self.seed = seed

    def _phi_plan(self, count: int, stream: int) -> List[float]:
        """Deterministic phi sequence for one client/arrival stream."""
        rng = np.random.default_rng((self.seed, stream))
        indexes = rng.integers(0, len(self.phis), size=count)
        return [self.phis[int(i)] for i in indexes]

    def closed_loop(
        self,
        clients: int,
        requests_per_client: int,
        mode: str = "quick",
        pause_until_queued: int = 0,
        timeout: float = 60.0,
    ) -> LoadResult:
        """N threads, one outstanding request each.

        With ``pause_until_queued > 0`` the service is paused first and
        resumed only once that many requests are waiting — guaranteeing
        the first dispatch sees a real batch (the deterministic warmup
        the coalescing assertion relies on).
        """
        plans = [
            self._phi_plan(requests_per_client, client)
            for client in range(clients)
        ]
        lock = threading.Lock()
        outcomes = {"served": 0, "rejected": 0, "degraded": 0}
        answers: List[Tuple[float, int, int]] = []

        def _run_client(plan: List[float]) -> None:
            for phi in plan:
                try:
                    request = self.service.submit(phi, mode)
                    result = request.result(timeout)
                except Overloaded:
                    with lock:
                        outcomes["rejected"] += 1
                    continue
                with lock:
                    outcomes["served"] += 1
                    if result.degraded or request.degraded_by_overload:
                        outcomes["degraded"] += 1
                    answers.append((phi, result.value, request.epoch or 0))

        if pause_until_queued > 0:
            self.service.pause()
        threads = [
            threading.Thread(
                target=_run_client, args=(plan,), name=f"repro-load-{i}"
            )
            for i, plan in enumerate(plans)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        if pause_until_queued > 0:
            target = min(pause_until_queued, clients)
            deadline = time.perf_counter() + timeout
            while (
                self.service.queue_depth < target
                and time.perf_counter() < deadline
            ):
                time.sleep(0.0005)
            self.service.resume()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        return LoadResult(
            requests=clients * requests_per_client,
            served=outcomes["served"],
            rejected=outcomes["rejected"],
            degraded=outcomes["degraded"],
            wall_seconds=wall,
            answers=answers,
        )

    def open_loop(
        self,
        rate_qps: float,
        total_requests: int,
        mode: str = "accurate",
        timeout: float = 60.0,
        mean_wait_seconds: Optional[float] = None,
    ) -> LoadResult:
        """Poisson arrivals that never wait for answers.

        Inter-arrival gaps are exponential with mean ``1/rate_qps``,
        drawn once from the seeded generator.  Submissions that hit the
        admission bound count as rejected; everything admitted is
        awaited at the end.  ``mean_wait_seconds`` optionally stalls
        between submit attempts *instead of* the drawn gaps (testing
        hook for forcing overload without wall-clock sensitivity).
        """
        rng = np.random.default_rng((self.seed, 99991))
        if rate_qps <= 0:
            raise ValueError("rate_qps must be > 0")
        gaps = (
            rng.exponential(1.0 / rate_qps, size=total_requests)
            if mean_wait_seconds is None
            else np.full(total_requests, mean_wait_seconds)
        )
        phis = self._phi_plan(total_requests, stream=10_000)
        pending: List[Tuple[float, PendingQuery]] = []
        rejected = 0
        started = time.perf_counter()
        next_at = started
        for phi, gap in zip(phis, gaps):
            next_at += float(gap)
            delay = next_at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                pending.append((phi, self.service.submit(phi, mode)))
            except Overloaded:
                rejected += 1
        served = 0
        degraded = 0
        answers: List[Tuple[float, int, int]] = []
        for phi, request in pending:
            result = request.result(timeout)
            served += 1
            if result.degraded or request.degraded_by_overload:
                degraded += 1
            answers.append((phi, result.value, request.epoch or 0))
        wall = time.perf_counter() - started
        return LoadResult(
            requests=total_requests,
            served=served,
            rejected=rejected,
            degraded=degraded,
            wall_seconds=wall,
            answers=answers,
        )
