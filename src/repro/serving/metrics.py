"""Service metrics: the serving layer measured with its own medicine.

Per-mode latency histograms are :class:`~repro.sketches.gk.GKSketch`
summaries over microsecond latencies — the very sketch the paper runs
on the live stream, here eating its own dogfood (the introduction's
motivating use case *is* latency percentile monitoring).  Sketches are
snapshotted copy-on-query, so reading p99 never blocks or corrupts a
concurrent recording thread.

A :class:`MetricsSnapshot` is a plain frozen dataclass, deliberately
free of any serving-layer references, so
:mod:`repro.core.monitoring`'s service rules can evaluate it without
importing this package.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sketches.base import rank_for_phi
from ..sketches.gk import GKSketch

_MODES = ("quick", "accurate")


@dataclass(frozen=True)
class LatencySummary:
    """Request-latency percentiles of one mode, in seconds."""

    count: int
    p50: float
    p95: float
    p99: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        """The all-zero summary of a mode that served no requests."""
        return cls(count=0, p50=0.0, p95=0.0, p99=0.0)


@dataclass(frozen=True)
class MetricsSnapshot:
    """One consistent reading of a service's counters.

    ``coalescing_ratio`` is TS merges per served quick request — the
    tentpole number: strictly below 1.0 means requests shared merges.
    """

    served: Dict[str, int]
    rejected: Dict[str, int]
    degraded_to_quick: int
    queue_depth: int
    peak_queue_depth: int
    coalesced_batches: int
    coalesced_requests: int
    max_batch: int
    ts_merges: int
    deduped_probes: int
    latency: Dict[str, LatencySummary] = field(default_factory=dict)
    #: shared-block-cache counters pulled from the engine at snapshot
    #: time (all zero when the shared tier is disabled).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_invalidations: int = 0
    #: epoch-batch warming passes the service ran, and the blocks those
    #: passes charged into the shared tier.
    warm_passes: int = 0
    warm_blocks: int = 0
    #: answers produced by a partial cluster gather (missing shards,
    #: widened bounds) — nonzero only when serving a degraded cluster.
    partial_gathers: int = 0
    #: storage-backend request counters pulled from the engine at
    #: snapshot time (all zero off the object backend).
    object_gets: int = 0
    object_puts: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Shared-cache hits per lookup (0.0 with the tier disabled)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def requests_served(self) -> int:
        """Total requests answered across modes."""
        return sum(self.served.values())

    @property
    def rejections(self) -> int:
        """Total requests rejected with ``Overloaded``."""
        return sum(self.rejected.values())

    @property
    def coalescing_ratio(self) -> float:
        """TS merges per served quick request (< 1.0 = sharing wins)."""
        quick = self.served.get("quick", 0)
        if quick == 0:
            return 1.0
        return self.ts_merges / quick

    def p99(self, mode: str = "quick") -> float:
        """p99 latency of one mode in seconds (0.0 before any request)."""
        summary = self.latency.get(mode)
        return summary.p99 if summary is not None else 0.0


class ServiceMetrics:
    """Thread-safe counters and latency sketches for one service."""

    def __init__(self, epsilon: float = 0.01) -> None:
        self._lock = threading.Lock()
        self._latency = {mode: GKSketch(epsilon) for mode in _MODES}
        self._served = {mode: 0 for mode in _MODES}
        self._degraded_to_quick = 0
        self._peak_queue_depth = 0
        self._coalesced_batches = 0
        self._coalesced_requests = 0
        self._max_batch = 0
        self._ts_merges = 0
        self._deduped_probes = 0
        self._warm_passes = 0
        self._warm_blocks = 0
        self._partial_gathers = 0

    def record(self, mode: str, latency_seconds: float) -> None:
        """Count one served request and record its latency."""
        micros = max(0, int(latency_seconds * 1e6))
        with self._lock:
            self._served[mode] += 1
        # GK has its own mutation lock; keeping it outside ours avoids
        # holding two locks at once.
        self._latency[mode].update(micros)

    def note_degraded(self) -> None:
        """Count one accurate request degraded to quick under load."""
        with self._lock:
            self._degraded_to_quick += 1

    def note_partial(self, answers: int = 1) -> None:
        """Count answers served from a partial (missing-shard) gather."""
        with self._lock:
            self._partial_gathers += answers

    def note_batch(self, requests: int, merges: int) -> None:
        """Count one coalesced quick batch and the merges it spent."""
        with self._lock:
            self._coalesced_batches += 1
            self._coalesced_requests += requests
            self._max_batch = max(self._max_batch, requests)
            self._ts_merges += merges

    def note_merges(self, merges: int) -> None:
        """Count TS merges spent outside a coalesced batch."""
        with self._lock:
            self._ts_merges += merges

    def note_dedup(self, shared: int) -> None:
        """Count accurate probes answered by another request's search."""
        with self._lock:
            self._deduped_probes += shared

    def note_warm(self, blocks: int) -> None:
        """Count one epoch-batch warming pass and its charged blocks."""
        with self._lock:
            self._warm_passes += 1
            self._warm_blocks += blocks

    def observe_queue_depth(self, depth: int) -> None:
        """Track the queue-depth high-water mark."""
        with self._lock:
            self._peak_queue_depth = max(self._peak_queue_depth, depth)

    def _latency_summary(self, mode: str) -> LatencySummary:
        sketch = self._latency[mode].snapshot()
        if sketch.n == 0:
            return LatencySummary.empty()

        def _pct(phi: float) -> float:
            return sketch.query_rank(rank_for_phi(phi, sketch.n)) / 1e6

        return LatencySummary(
            count=sketch.n, p50=_pct(0.50), p95=_pct(0.95), p99=_pct(0.99)
        )

    def snapshot(
        self,
        queue_depth: int = 0,
        rejected: Optional[Dict[str, int]] = None,
        cache: Optional[object] = None,
        backend: Optional[object] = None,
    ) -> MetricsSnapshot:
        """Assemble one consistent :class:`MetricsSnapshot`.

        ``queue_depth`` and ``rejected`` live with the admission
        controller; the service passes them in, together with the
        engine's :class:`~repro.storage.shared_cache.SharedCacheStats`
        as ``cache`` when the shared tier is enabled and the storage
        backend's :class:`~repro.storage.backends.BackendStats` as
        ``backend`` when the engine exposes one.
        """
        # Latency summaries read sketch snapshots outside the counter
        # lock (each sketch copy-on-queries under its own lock).
        latency = {mode: self._latency_summary(mode) for mode in _MODES}
        with self._lock:
            return MetricsSnapshot(
                served=dict(self._served),
                rejected=dict(rejected or {}),
                degraded_to_quick=self._degraded_to_quick,
                queue_depth=queue_depth,
                peak_queue_depth=max(self._peak_queue_depth, queue_depth),
                coalesced_batches=self._coalesced_batches,
                coalesced_requests=self._coalesced_requests,
                max_batch=self._max_batch,
                ts_merges=self._ts_merges,
                deduped_probes=self._deduped_probes,
                latency=latency,
                cache_hits=getattr(cache, "hits", 0),
                cache_misses=getattr(cache, "misses", 0),
                cache_evictions=getattr(cache, "evictions", 0),
                cache_invalidations=getattr(cache, "invalidated_blocks", 0),
                warm_passes=self._warm_passes,
                warm_blocks=self._warm_blocks,
                partial_gathers=self._partial_gathers,
                object_gets=getattr(backend, "gets", 0),
                object_puts=getattr(backend, "puts", 0),
            )
