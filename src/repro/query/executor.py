"""The parallel probe executor for the accurate query path.

Runs the per-partition tasks produced by
:class:`~repro.query.planner.QueryPlanner` either inline on the calling
thread (``workers=1``, the default — byte-for-byte the historical
serial code path) or fanned out over a shared
:class:`~concurrent.futures.ThreadPoolExecutor` (``workers>1``, the
Section 4 parallel-read optimization made real).

Design notes
------------

* **Determinism.**  Results are always returned in task (= partition)
  order, and each task is a self-contained search over one immutable
  sorted run, so serial and parallel execution produce identical
  answers.  Block accounting is identical too: concurrent tasks of one
  fan-out touch disjoint runs, and the :class:`~repro.storage.cache.
  BlockCache` / :class:`~repro.storage.stats.DiskStats` counters are
  atomic, so the charged (run, block) set matches a serial execution.
* **Laziness.**  The thread pool is created on first parallel use, so
  a serial engine never spawns a thread.  ``close()`` (or using the
  executor — and the engine that owns it — as a context manager) shuts
  the pool down; a closed executor transparently falls back to inline
  execution rather than failing.
* **GIL reality check.**  Probes on the *simulated* disk are pure
  in-memory binary searches, so realized speedup is bounded by Python's
  GIL and thread-handoff overhead and typically falls short of the
  modeled critical-path speedup (``parallel_sim_seconds``); against a
  device with real I/O latency the threads overlap actual waiting.
  The parallel-query ablation benchmark reports both numbers
  side-by-side.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, List, Optional, Sequence

from ..faults.errors import DiskFault
from ..faults.retry import RetryPolicy
from ..storage.cache import BlockCache


class QueryExecutor:
    """Executes per-partition probe tasks for one engine.

    Parameters
    ----------
    workers:
        Maximum concurrent partition probes.  ``1`` (default) executes
        every task inline on the calling thread.
    retry:
        Transient-fault retry policy applied to each task
        individually; defaults to no retries.  Engines pass
        :attr:`~repro.core.config.EngineConfig.probe_retry_policy`.
        A probe that exhausts its retries raises the fault to the
        caller — the engine then degrades the query to the quick
        response instead of crashing it.

    A *task* is any object with a ``run(cache)`` method — see
    :mod:`repro.query.planner` for the two task shapes the accurate
    search plans.
    """

    def __init__(
        self, workers: int = 1, retry: Optional[RetryPolicy] = None
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.retry = retry if retry is not None else RetryPolicy()
        #: probes retried after a transient fault (lifetime count).
        self.fault_retries = 0
        self._retry_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_guard = threading.Lock()
        self._closed = False

    @property
    def parallel(self) -> bool:
        """Whether this executor may fan tasks out over threads."""
        return self.workers > 1 and not self._closed

    @property
    def pool_started(self) -> bool:
        """Whether the backing thread pool has been created."""
        return self._pool is not None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_guard:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-query",
                )
            return self._pool

    def _note_retry(self, fault: DiskFault, attempt: int) -> None:
        with self._retry_lock:
            self.fault_retries += 1

    def call_with_retry(self, fn: Any) -> Any:
        """Run a zero-argument callable under this executor's retry
        policy, counting any retries against :attr:`fault_retries`.

        Used by the engine for disk work on the query path that is not
        a planner task (e.g. staging a pending batch a query needs).
        """
        return self.retry.call(fn, on_retry=self._note_retry)

    def _run_one(self, task: Any, cache: Optional[BlockCache]) -> Any:
        """One task under the retry policy (any thread)."""
        return self.call_with_retry(lambda: task.run(cache))

    def run_tasks(
        self,
        tasks: Sequence[Any],
        cache: Optional[BlockCache] = None,
    ) -> List[Any]:
        """Run every task and return their results in task order.

        With one worker (or at most one task) this is exactly
        ``[task.run(cache) for task in tasks]`` — no pool, no threads.
        Each task runs under the executor's retry policy; worker
        exceptions (including a probe's exhausted transient fault)
        propagate to the caller unchanged.
        """
        if not self.parallel or len(tasks) <= 1:
            return [self._run_one(task, cache) for task in tasks]
        pool = self._ensure_pool()
        return list(pool.map(lambda task: self._run_one(task, cache), tasks))

    def close(self) -> None:
        """Shut the thread pool down; further runs execute inline."""
        with self._pool_guard:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: Shared inline executor used wherever no engine-owned executor is
#: supplied (standalone AccurateSearch construction, snapshots).
SERIAL_EXECUTOR = QueryExecutor(workers=1)
