"""Query planning: turn one probe into per-partition tasks.

The accurate response (Algorithms 6-8) repeatedly needs the exact rank
of a probe value ``z`` in *every* historical partition.  The searches
are independent — each partition's binary search touches only its own
run and is narrowed by its own in-memory summary — which is exactly
what the paper's Section 4 observes: "different disk partitions can be
processed in parallel, leading to a lower latency by overlapping
different disk reads."

:class:`QueryPlanner` makes that independence explicit.  It converts a
probe (or a residual-range read) into a list of pure-data task objects,
one per partition, each carrying everything its partition search needs:
the probe value and the summary-derived index bounds (Alg. 8 line 5 —
computed up front, without I/O, since summaries store exact ranks).
The :class:`~repro.query.executor.QueryExecutor` then runs the tasks
serially or on a thread pool; either way the per-task work and its
block accounting are identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

import numpy as np

from ..storage.cache import BlockCache
from ..warehouse.partition import Partition


@dataclass(frozen=True)
class RankProbeTask:
    """Exact rank of ``value`` in one partition (Alg. 8 lines 2-7).

    ``lo``/``hi`` bound the element indices searched, supplied by the
    partition summary so the binary search costs
    ``O(log((hi - lo) / B))`` block reads.
    """

    partition: Partition
    value: int
    lo: int
    hi: int

    def run(self, cache: Optional[BlockCache]) -> int:
        """Execute the block-counted binary search."""
        return self.partition.run.rank_of(
            self.value, lo=self.lo, hi=self.hi, cache=cache
        )


@dataclass(frozen=True)
class RangeReadTask:
    """Read one partition's elements in the value interval ``(u, v]``.

    Used by the ``"fetch"`` endgame (Lemma 5): two summary-narrowed
    rank searches locate the interval, then the covered blocks are
    read.  Returns the elements as an int64 array.
    """

    partition: Partition
    value_lo: int
    value_hi: int
    rank_lo_bounds: "tuple[int, int]"
    rank_hi_bounds: "tuple[int, int]"

    def run(self, cache: Optional[BlockCache]) -> np.ndarray:
        """Execute the two rank searches plus the range read."""
        run = self.partition.run
        start = run.rank_of(
            self.value_lo, lo=self.rank_lo_bounds[0],
            hi=self.rank_lo_bounds[1], cache=cache,
        )
        stop = run.rank_of(
            self.value_hi, lo=self.rank_hi_bounds[0],
            hi=self.rank_hi_bounds[1], cache=cache,
        )
        if stop <= start:
            return np.empty(0, dtype=np.int64)
        return run.read_range(start, stop, cache=cache)


@dataclass(frozen=True)
class PrefetchTask:
    """Batched read-ahead of one partition's candidate block range.

    Issued once the accurate search's filters ``(u, v)`` confine a
    partition's remaining probes to a small block range: one charged
    ranged read warms every block the binary search could touch, so the
    subsequent per-probe touches hit the cache instead of paying one
    random read each.  Returns the number of blocks in the range.
    """

    partition: Partition
    first_block: int
    last_block: int

    def run(self, cache: Optional[BlockCache]) -> int:
        """Execute the batched ranged read."""
        self.partition.run.read_block_range(
            self.first_block, self.last_block, cache=cache
        )
        return self.last_block - self.first_block + 1


class QueryPlanner:
    """Builds per-partition probe plans for one accurate search.

    Parameters
    ----------
    partitions:
        The partitions in query scope.  Empty partitions are dropped at
        construction (they contribute rank 0 and no candidates).
    """

    def __init__(self, partitions: Sequence[Partition]) -> None:
        self._partitions: List[Partition] = [
            p for p in partitions if len(p) > 0
        ]

    @property
    def partitions(self) -> List[Partition]:
        """The non-empty partitions this planner fans out over."""
        return list(self._partitions)

    def rank_probes(self, value: int) -> List[RankProbeTask]:
        """One :class:`RankProbeTask` per partition, in store order.

        The summary narrowing happens here, on the coordinating thread:
        it is pure in-memory work, so tasks reach the executor as plain
        data and workers only ever touch their own partition's run.
        """
        tasks = []
        for partition in self._partitions:
            lo, hi = partition.summary.search_bounds(value)
            tasks.append(
                RankProbeTask(partition=partition, value=value, lo=lo, hi=hi)
            )
        return tasks

    def prefetch_reads(
        self,
        u: int,
        v: int,
        max_blocks: int,
        skip: Optional[Set[int]] = None,
    ) -> List[PrefetchTask]:
        """Per-partition block ranges confined by filters ``(u, v)``.

        Only partitions whose summary-narrowed candidate range for the
        value interval ``[u, v]`` spans at most ``max_blocks`` blocks
        yield a task — prefetching a wider range would charge more
        blocks than the log-depth binary search will touch.  Partitions
        whose run id is in ``skip`` (already prefetched this query) are
        omitted.
        """
        tasks: List[PrefetchTask] = []
        for partition in self._partitions:
            if skip is not None and partition.run.run_id in skip:
                continue
            lo = partition.summary.search_bounds(u)[0]
            hi = partition.summary.search_bounds(v)[1]
            if hi <= lo:
                continue
            disk = partition.run.disk
            first = disk.block_of(lo)
            last = disk.block_of(hi - 1)
            if last - first + 1 > max_blocks:
                continue
            tasks.append(
                PrefetchTask(
                    partition=partition, first_block=first, last_block=last
                )
            )
        return tasks

    def residual_reads(self, u: int, v: int) -> List[RangeReadTask]:
        """One :class:`RangeReadTask` per partition for interval ``(u, v]``."""
        tasks = []
        for partition in self._partitions:
            tasks.append(
                RangeReadTask(
                    partition=partition,
                    value_lo=u,
                    value_hi=v,
                    rank_lo_bounds=partition.summary.search_bounds(u),
                    rank_hi_bounds=partition.summary.search_bounds(v),
                )
            )
        return tasks
