"""Query execution layer: planning and (optionally parallel) probing.

The accurate response's disk work decomposes into independent
per-partition searches.  This package separates *what* to probe
(:class:`QueryPlanner`, producing per-partition task objects) from
*how* to run the probes (:class:`QueryExecutor`, inline or on a thread
pool sized by ``EngineConfig.query_workers``).  See
docs/ARCHITECTURE.md for where this sits in the query path and where
the thread-safety boundaries are.
"""

from .executor import SERIAL_EXECUTOR, QueryExecutor
from .planner import QueryPlanner, RangeReadTask, RankProbeTask

__all__ = [
    "QueryExecutor",
    "QueryPlanner",
    "RangeReadTask",
    "RankProbeTask",
    "SERIAL_EXECUTOR",
]
