"""The live-stream append buffer.

The engine used to collect stream elements as a list of one-element
ndarrays — one allocation (plus a full aggregate merge) per
``stream_update`` call.  :class:`AppendBuffer` replaces that with a
single int64 array grown by doubling, so per-element appends are
amortized O(1) and sealing a time step is one slice copy instead of a
concatenate over thousands of fragments.
"""

from __future__ import annotations

import numpy as np

_INITIAL_CAPACITY = 1024


class AppendBuffer:
    """A growable int64 array with amortized-O(1) appends."""

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        self._data = np.empty(max(1, capacity), dtype=np.int64)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def _grow_to(self, needed: int) -> None:
        capacity = len(self._data)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=np.int64)
        grown[: self._len] = self._data[: self._len]
        self._data = grown

    def append(self, value: int) -> None:
        """Append one element (amortized O(1))."""
        self._grow_to(self._len + 1)
        self._data[self._len] = value
        self._len += 1

    def extend(self, values: np.ndarray) -> None:
        """Append a batch of elements in one copy."""
        size = int(values.size)
        if size == 0:
            return
        self._grow_to(self._len + size)
        self._data[self._len : self._len + size] = values
        self._len += size

    def view(self) -> np.ndarray:
        """Read-only view of the buffered elements (no copy)."""
        view = self._data[: self._len].view()
        view.flags.writeable = False
        return view

    def slice_from(self, start: int) -> np.ndarray:
        """Read-only view of elements ``[start, len)`` (no copy).

        The lazy-absorption path reads the not-yet-absorbed tail with
        this; the caller must hold whatever lock also guards appends,
        because a concurrent ``append`` may reallocate the backing
        array out from under the view.
        """
        view = self._data[max(0, start) : self._len].view()
        view.flags.writeable = False
        return view

    def take(self) -> np.ndarray:
        """Return a copy of the contents and reset the buffer.

        The backing capacity is retained, so a steady-state engine
        sealing equal-sized batches stops allocating after the first
        step.
        """
        sealed = self._data[: self._len].copy()
        self._len = 0
        return sealed
