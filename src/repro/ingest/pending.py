"""Sealed-but-unmerged batches, staged for querying.

When ``end_time_step`` runs in background mode, the sealed batch must
be queryable *immediately* — the paper's correctness definition covers
the union of everything ingested so far, archived or not.  A
:class:`PendingBatch` carries the batch from seal to adoption:

* **staging** turns the raw values into a real level-0
  :class:`~repro.warehouse.partition.Partition` — sorted run written
  to disk, summary and aggregates attached — via
  :meth:`~repro.warehouse.leveled_store.LeveledStore.stage_partition`,
  charging exactly the I/O the synchronous path would;
* **adoption** (done by the archiver) splices the staged partition
  into the leveled layout, running any cascade merges.

Staging is idempotent and first-come-first-served: normally the
archiver thread does it, but a query that arrives while the archiver
is still merging an older step stages the batch itself rather than
waiting behind the merge.  Either way the charges happen exactly once
and are recorded here for the step's report.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

import numpy as np

from ..storage.stats import PhaseTally
from ..warehouse.leveled_store import LeveledStore
from ..warehouse.partition import Partition


class PendingBatch:
    """One sealed time step on its way into the warehouse."""

    def __init__(self, step: int, values: np.ndarray) -> None:
        self.step = step
        self.size = int(values.size)
        #: wall seconds ``end_time_step`` blocked the stream for this
        #: batch (seal + any backpressure wait); set by the engine.
        self.stall_seconds = 0.0
        #: seal-time exact aggregates of the batch (set by the engine),
        #: so full-union aggregate queries stay disk-free mid-archive.
        self.stats = None
        self._values: Optional[np.ndarray] = values
        self._stage_lock = threading.Lock()
        self._partition: Optional[Partition] = None
        self._stage_io: Optional[PhaseTally] = None
        self._stage_cpu: Dict[str, float] = {}
        self._stage_wall = 0.0

    def __len__(self) -> int:
        return self.size

    @property
    def staged(self) -> bool:
        """Whether the batch is already a queryable partition."""
        return self._partition is not None

    @property
    def partition(self) -> Optional[Partition]:
        """The staged partition, or ``None`` if not yet staged."""
        return self._partition

    @property
    def stage_io(self) -> Optional[PhaseTally]:
        """I/O charged by staging (valid once ``staged``)."""
        return self._stage_io

    @property
    def stage_cpu(self) -> Dict[str, float]:
        """Per-phase CPU seconds of staging (valid once ``staged``)."""
        return self._stage_cpu

    @property
    def stage_wall_seconds(self) -> float:
        """Wall seconds staging took (valid once ``staged``)."""
        return self._stage_wall

    def ensure_staged(self, store: LeveledStore) -> Partition:
        """Stage the batch if nobody has yet; return the partition.

        Thread-safe and idempotent: the sort passes and the sequential
        write are charged exactly once, by whichever thread gets here
        first.  Callers holding the store's layout lock must not call
        this (staging deliberately runs outside it).
        """
        with self._stage_lock:
            if self._partition is None:
                started = time.perf_counter()
                partition, tally, cpu = store.stage_partition(
                    self._values, self.step
                )
                self._stage_wall = time.perf_counter() - started
                self._partition = partition
                self._stage_io = tally
                self._stage_cpu = cpu
                self._values = None  # the sorted run owns the data now
            return self._partition
