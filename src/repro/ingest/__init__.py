"""The ingest pipeline: stream buffering and background archiving.

``end_time_step`` is the write-path hot spot: the paper's warehouse
(Algorithm 3) sorts the sealed batch, writes it as a level-0 partition
and runs cascading level merges — all of which the synchronous path
pays while the stream stalls.  This package overlaps that work with
stream updates and queries:

* :class:`AppendBuffer` — the amortized-O(1) growable buffer the
  engine's ``stream_update`` / ``stream_update_batch`` append into;
* :class:`PendingBatch` — a sealed batch staged as a queryable pending
  partition (sorted + summarized eagerly, merged lazily);
* :class:`BackgroundArchiver` — the thread draining sealed batches
  into the warehouse off the hot path, with queue-depth / stall /
  per-phase latency instrumentation (:class:`IngestStats`).

The synchronous default path never imports a thread; with
``EngineConfig.ingest_mode = "background"`` the engine routes sealed
batches through the archiver, and ``engine.flush()`` drains it,
yielding per-step reports bit-identical (answers, I/O counters,
invariants) to the synchronous mode.
"""

from .archiver import BackgroundArchiver, IngestStats
from .buffer import AppendBuffer
from .pending import PendingBatch

__all__ = [
    "AppendBuffer",
    "BackgroundArchiver",
    "IngestStats",
    "PendingBatch",
]
