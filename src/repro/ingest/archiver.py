"""The background archiver thread.

One consumer thread drains sealed batches (:class:`PendingBatch`) into
the warehouse: stage (sort + write + summary), then adopt (splice into
the leveled layout, cascading merges and all).  The producing engine
thread only seals and enqueues, so ``stream_update*`` resumes
immediately; queries running meanwhile snapshot the layout *plus* the
pending set under the store's layout lock, so they always see the full
union exactly once.

Determinism.  Batches are archived strictly in submission order by a
single thread, and each step's I/O is accounted through per-thread
captures (:meth:`~repro.storage.stats.DiskStats.capture`), so the
per-step :class:`ArchiveRecord` stream an ``engine.flush()`` drains is
identical — answers, I/O counters, layout, invariants — to what the
synchronous path would have produced, regardless of how queries
interleaved.

Backpressure.  At most ``max_pending`` batches may be queued; beyond
that ``submit`` blocks, and the blocked time is the *stall* the
instrumentation reports (the synchronous path, by comparison, stalls
for every step's full archive latency).

Failure isolation.  An archive attempt that hits a transient
:class:`~repro.faults.DiskFault` is retried in place with capped
exponential backoff (the batch never leaves the queue until adoption
succeeds, so a failed attempt re-queues it by construction — adoption
must stay in step order for the layout invariant).  Only a persistent
fault, an unexpected exception, or an exhausted retry budget poisons
the archiver, and even then the error is *delivered*: the next
``submit``/``drain`` raises a typed :class:`ArchiveFailedError`, and
``close`` raises it if no producer call ever surfaced it — a failed
background thread can no longer vanish silently.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..faults.errors import DiskFault
from ..faults.retry import RetryPolicy
from ..storage.stats import PhaseTally
from ..warehouse.leveled_store import LeveledStore
from .pending import PendingBatch


class ArchiveFailedError(RuntimeError):
    """Background archiving failed; the cause is chained as
    ``__cause__``.  Raised by ``submit``/``drain``/``close`` after the
    archiver thread records a fatal error."""


@dataclass
class IngestStats:
    """Cumulative instrumentation of one archiver.

    Attributes
    ----------
    batches_enqueued, batches_archived:
        Lifetime submit / completion counts.
    max_queue_depth:
        High-water mark of the pending queue.
    stall_seconds:
        Total wall time ``end_time_step`` blocked the stream (seal
        plus backpressure waits).
    archive_wall_seconds:
        Total wall time the archiver spent archiving (stage + adopt).
    archive_phase_seconds:
        Archive latency split by phase (``sort`` / ``load`` /
        ``summary`` / ``merge``), summed across steps.
    fault_retries:
        Archive attempts retried after a transient disk fault.
    disk_faults:
        Disk faults the archiver thread has hit (retried or fatal).
    degraded_queries:
        Accurate queries on the owning engine that fell back to the
        quick response after exhausting probe retries (mirrored here so
        background deployments can watch one stats object).
    """

    batches_enqueued: int = 0
    batches_archived: int = 0
    max_queue_depth: int = 0
    stall_seconds: float = 0.0
    archive_wall_seconds: float = 0.0
    archive_phase_seconds: Dict[str, float] = field(default_factory=dict)
    fault_retries: int = 0
    disk_faults: int = 0
    degraded_queries: int = 0

    def note_phases(self, cpu: Dict[str, float]) -> None:
        """Accumulate one step's per-phase archive latency."""
        for phase, seconds in cpu.items():
            self.archive_phase_seconds[phase] = (
                self.archive_phase_seconds.get(phase, 0.0) + seconds
            )


@dataclass(frozen=True)
class ArchiveRecord:
    """Everything one archived step cost — the engine turns this into
    the :class:`~repro.core.engine.StepReport` that ``flush`` returns.
    """

    step: int
    batch_elems: int
    io: PhaseTally
    cpu: Dict[str, float]
    merged_levels: bool
    stall_seconds: float
    queue_depth: int
    archive_wall_seconds: float


class BackgroundArchiver:
    """Single-threaded, in-order background archiving for one store.

    Parameters
    ----------
    store:
        The warehouse the batches land in.  The archiver's condition
        variable wraps the store's layout lock, so "adopt the staged
        partition and unlink it from the pending set" is one atomic
        step relative to query snapshots.
    max_pending:
        Backpressure bound: ``submit`` blocks while this many batches
        are pending.
    retry:
        Transient-fault retry policy for archive attempts; defaults to
        no retries (any fault is fatal), which is the pre-fault-model
        behaviour.  Engines pass
        :attr:`~repro.core.config.EngineConfig.archive_retry_policy`.
    on_adopt:
        Optional callback invoked with the adopted batch's step inside
        the adopt critical section (layout lock held) — the engine uses
        it to bump the query epoch in lockstep with the layout change.
    """

    def __init__(
        self,
        store: LeveledStore,
        max_pending: int = 4,
        retry: Optional[RetryPolicy] = None,
        on_adopt: Optional[Callable[[int], None]] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._store = store
        self._max_pending = max_pending
        self._retry = retry if retry is not None else RetryPolicy()
        self._on_adopt = on_adopt
        self._cond = threading.Condition(store.layout_lock)
        self._pending: List[PendingBatch] = []
        # Queue slots claimed by reserve() but not yet filled by
        # enqueue_reserved(); counted against the backpressure bound so
        # a reserved seal can never overshoot max_pending.
        self._reserved = 0
        self._records: List[ArchiveRecord] = []
        self._busy = False
        self._paused = False
        self._shutdown = False
        self._error: Optional[BaseException] = None
        self._error_delivered = False
        self.stats = IngestStats()
        self._thread = threading.Thread(
            target=self._run, name="repro-ingest", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Producer side (the engine thread)
    # ------------------------------------------------------------------

    def submit(self, batch: PendingBatch) -> "tuple[float, int]":
        """Enqueue a sealed batch; returns (blocked seconds, depth).

        The batch becomes part of the queryable pending set the moment
        this returns (atomically with layout snapshots).  Blocks only
        when ``max_pending`` batches are already queued.
        """
        blocked = self.reserve()
        depth = self.enqueue_reserved(batch)
        return blocked, depth

    def reserve(self) -> float:
        """Claim a queue slot, blocking under backpressure.

        Split out of :meth:`submit` so the engine can absorb the
        (potentially long) backpressure wait *before* entering its seal
        critical section — pins and queries stay responsive while a
        producer waits for queue space.  Returns the seconds blocked.
        """
        started = time.perf_counter()
        with self._cond:
            self._raise_if_failed()
            while len(self._pending) + self._reserved >= self._max_pending:
                if self._shutdown:
                    raise RuntimeError("archiver is closed")
                self._cond.wait()
                self._raise_if_failed()
            if self._shutdown:
                raise RuntimeError("archiver is closed")
            self._reserved += 1
        return time.perf_counter() - started

    def enqueue_reserved(self, batch: PendingBatch) -> int:
        """Fill a slot claimed by :meth:`reserve`; returns the depth.

        Never blocks — the slot is already reserved — so it is safe to
        call inside the engine's seal critical section.
        """
        with self._cond:
            self._reserved -= 1
            self._pending.append(batch)
            depth = len(self._pending)
            self.stats.batches_enqueued += 1
            self.stats.max_queue_depth = max(
                self.stats.max_queue_depth, depth
            )
            self._cond.notify_all()
        return depth

    def pending_batches(self) -> List[PendingBatch]:
        """Snapshot of the sealed-but-unmerged batches, oldest first."""
        with self._cond:
            return list(self._pending)

    @property
    def queue_depth(self) -> int:
        """Current number of pending batches."""
        with self._cond:
            return len(self._pending)

    def drain(self) -> List[ArchiveRecord]:
        """Block until every submitted batch is archived.

        Returns the per-step records accumulated since the previous
        drain, in step order.  Raises the archiver thread's exception
        if archiving failed.
        """
        with self._cond:
            while (self._pending or self._busy) and self._error is None:
                if self._paused and self._pending:
                    raise RuntimeError("cannot drain a paused archiver")
                self._cond.wait()
            self._raise_if_failed()
            records, self._records = self._records, []
            return records

    def pause(self) -> None:
        """Suspend archiving (testing/benchmark hook).

        Sealed batches keep accumulating (and stay queryable as pending
        partitions) until :meth:`resume`; backpressure still applies.
        """
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        """Resume archiving after :meth:`pause`."""
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    def close(self) -> None:
        """Drain remaining work and stop the thread (idempotent).

        If the archiver thread died on an error that no ``submit`` or
        ``drain`` ever surfaced, ``close`` raises it (as
        :class:`ArchiveFailedError`) rather than silently joining — the
        caller must learn the warehouse is missing batches.
        """
        with self._cond:
            self._paused = False
            self._shutdown = True
            self._cond.notify_all()
        if self._thread.is_alive():
            self._thread.join()
        with self._cond:
            if self._error is not None and not self._error_delivered:
                self._raise_if_failed()

    @property
    def failed(self) -> bool:
        """Whether the archiver thread has recorded a fatal error."""
        with self._cond:
            return self._error is not None

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            self._error_delivered = True
            raise ArchiveFailedError(
                "background archiving failed"
            ) from self._error

    # ------------------------------------------------------------------
    # Consumer side (the archiver thread)
    # ------------------------------------------------------------------

    def _note_retry(self, fault: DiskFault, attempt: int) -> None:
        """Count one retried archive attempt (runs on the archiver
        thread, between attempts)."""
        with self._cond:
            self.stats.fault_retries += 1
            self.stats.disk_faults += 1
            self._cond.notify_all()

    def _run(self) -> None:
        while True:
            with self._cond:
                while (
                    (self._paused or not self._pending)
                    and not self._shutdown
                ):
                    self._cond.wait()
                if not self._pending:
                    return  # shutdown with nothing left to archive
                batch = self._pending[0]
                self._busy = True
            try:
                # Transient faults are retried with capped backoff; the
                # batch stays self._pending[0] (still queryable) across
                # attempts, so a failed attempt is a re-queue, not a
                # loss.  Persistent faults, unexpected exceptions and
                # an exhausted retry budget fall through to the fatal
                # path below.
                record = self._retry.call(
                    lambda: self._archive_one(batch),
                    on_retry=self._note_retry,
                )
            except BaseException as exc:  # surfaced via _raise_if_failed
                with self._cond:
                    if isinstance(exc, DiskFault):
                        self.stats.disk_faults += 1
                    self._error = exc
                    self._busy = False
                    self._cond.notify_all()
                return
            with self._cond:
                self._records.append(record)
                self._busy = False
                self.stats.batches_archived += 1
                self.stats.archive_wall_seconds += (
                    record.archive_wall_seconds
                )
                self.stats.note_phases(record.cpu)
                self._cond.notify_all()

    def _archive_one(self, batch: PendingBatch) -> ArchiveRecord:
        """Stage (if a query didn't already) and adopt one batch."""
        stats = self._store.disk.stats
        started = time.perf_counter()
        partition = batch.ensure_staged(self._store)
        cpu = dict(batch.stage_cpu)
        with stats.capture() as adopt_io:
            merge_started = time.perf_counter()
            with self._cond:
                # Atomic with respect to layout snapshots: the batch
                # leaves the pending set in the same critical section
                # that splices its partition into the layout, so a
                # query sees it exactly once — pending or adopted.
                self._store.adopt_partition(partition)
                self._pending.pop(0)
                depth_left = len(self._pending)
                if self._on_adopt is not None:
                    # Epoch bump rides the same critical section as the
                    # splice, so pins see layout and epoch in lockstep.
                    self._on_adopt(batch.step)
                self._cond.notify_all()
            cpu["merge"] = time.perf_counter() - merge_started
        io = PhaseTally()
        if batch.stage_io is not None:
            io.add(batch.stage_io)
        io.add(adopt_io)
        return ArchiveRecord(
            step=batch.step,
            batch_elems=batch.size,
            io=io,
            cpu=cpu,
            merged_levels=io.phase("merge").total > 0,
            stall_seconds=batch.stall_seconds,
            queue_depth=depth_left,
            archive_wall_seconds=time.perf_counter() - started,
        )
