"""Durable ingest write-ahead log: CRC-framed, LSN-stamped segments.

The engine acks a ``stream_update`` / ``stream_update_many`` call by
returning from it; everything acked but not yet checkpointed lives only
in process memory (the append buffer, the live sketch, un-archived
sealed batches).  A :class:`WriteAheadLog` makes those acks durable:
each batch is appended — and fsynced — to a segment log *before* it is
applied, and every ``end_time_step`` writes a seal frame, so a crash
replays to exactly the pre-crash state:

* **batch frame** — the routed numpy chunk, verbatim (int64 little
  endian).  Replay feeds it back through ``stream_update_many`` with
  the original batch boundaries, which the lazy-absorption contract
  guarantees is bit-identical to the original feed.
* **seal frame** — one per ``end_time_step``, so replay reproduces the
  exact partition layout and step numbering.

Every frame carries a monotonically increasing LSN and a CRC32 over
header + payload.  A crash can only tear the *tail* of the last
segment: the writer truncates the torn bytes on reopen, and
:func:`scan_wal` refuses mid-log corruption (which a crash cannot
produce) unless salvaging.

Checkpoint coordination uses an LSN watermark, not file state:
``save_engine`` records the attached log's ``last_lsn`` inside
``engine.json`` and truncates fully-covered segments only *after* the
checkpoint commits.  Replay applies records with ``lsn > watermark``,
so truncation is pure garbage collection — a crash anywhere in the
checkpoint/truncate sequence never double-applies or loses a record.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

#: Segment file preamble; bump the trailing digits on format changes.
_SEGMENT_MAGIC = b"RPWAL001"
#: Per-frame marker ("FLWR" little-endian) guarding against seeks into
#: payload bytes.
_FRAME_MAGIC = 0x52574C46
#: marker, record type, lsn, meta (elems or step), payload length.
_FRAME_HEAD = struct.Struct("<IBQQI")
_FRAME_CRC = struct.Struct("<I")

RECORD_BATCH = 1
RECORD_SEAL = 2

_KIND_NAMES = {RECORD_BATCH: "batch", RECORD_SEAL: "seal"}


class WalError(RuntimeError):
    """A WAL segment is corrupt beyond what a crash can explain."""


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL frame."""

    #: Monotonically increasing log sequence number.
    lsn: int
    #: ``"batch"`` or ``"seal"``.
    kind: str
    #: Sealed step number for seal frames; element count for batches.
    meta: int
    #: The batch payload (``None`` for seal frames).
    values: Optional[np.ndarray] = None


@dataclass(frozen=True)
class WalScan:
    """What :func:`scan_wal` found in a WAL directory."""

    records: Tuple[WalRecord, ...]
    segments: int
    last_lsn: int
    #: Whether the final segment ended in a torn (incomplete) frame.
    torn_tail: bool
    #: Segment file holding the torn frame, when ``torn_tail``.
    torn_segment: Optional[str] = None

    @property
    def frames(self) -> int:
        """Number of intact frames decoded."""
        return len(self.records)


@dataclass(frozen=True)
class ReplayStats:
    """What :func:`replay_wal` applied to an engine."""

    batches: int
    elements: int
    seals: int
    #: LSN of the last applied record (watermark when nothing applied).
    last_lsn: int
    #: Records at or below the watermark, skipped as already durable.
    skipped: int


def _fsync_dir(path: Path) -> None:
    """Make a directory entry durable (mirrors the checkpoint dance)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _segment_name(first_lsn: int) -> str:
    # Zero-padded so lexicographic file order is LSN order.
    return f"wal-{first_lsn:016d}.seg"


def _segment_files(directory: Path) -> List[Path]:
    return sorted(directory.glob("wal-*.seg"))


_FLOOR_NAME = "wal.floor"


def _read_floor(directory: Path) -> int:
    """Highest LSN ever garbage-collected out of this directory.

    Truncation may delete *every* segment; without this marker a fresh
    writer would restart the sequence at zero and its new records —
    numbered below the checkpoint watermark — would be invisible to
    replay.  The floor keeps LSNs monotone across full truncations.
    """
    try:
        return int((directory / _FLOOR_NAME).read_text())
    except (OSError, ValueError):
        return 0


def _write_floor(directory: Path, lsn: int, fsync: bool) -> None:
    tmp = directory / (_FLOOR_NAME + ".tmp")
    tmp.write_text(str(lsn))
    os.replace(tmp, directory / _FLOOR_NAME)
    if fsync:
        _fsync_dir(directory)


def _encode_frame(rtype: int, lsn: int, meta: int, payload: bytes) -> bytes:
    head = _FRAME_HEAD.pack(_FRAME_MAGIC, rtype, lsn, meta, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF
    return head + _FRAME_CRC.pack(crc) + payload


class _Torn(Exception):
    """Internal: frame decoding hit a torn/garbled region."""

    def __init__(self, offset: int) -> None:
        super().__init__(f"torn frame at byte {offset}")
        self.offset = offset


def _decode_segment(data: bytes, path: Path) -> Tuple[List[WalRecord], int]:
    """Decode every intact frame; raises :class:`_Torn` at a bad one.

    Returns the records decoded so far paired with the byte offset of
    the end of the last *good* frame (the salvage truncation point).
    """
    if len(data) < len(_SEGMENT_MAGIC):
        raise _Torn(0)
    if data[: len(_SEGMENT_MAGIC)] != _SEGMENT_MAGIC:
        raise WalError(f"{path} is not a WAL segment")
    offset = len(_SEGMENT_MAGIC)
    records: List[WalRecord] = []
    while offset < len(data):
        head_end = offset + _FRAME_HEAD.size
        crc_end = head_end + _FRAME_CRC.size
        if crc_end > len(data):
            raise _Torn(offset)
        magic, rtype, lsn, meta, length = _FRAME_HEAD.unpack(
            data[offset:head_end]
        )
        if magic != _FRAME_MAGIC or rtype not in _KIND_NAMES:
            raise _Torn(offset)
        payload_end = crc_end + length
        if payload_end > len(data):
            raise _Torn(offset)
        payload = data[crc_end:payload_end]
        (expected,) = _FRAME_CRC.unpack(data[head_end:crc_end])
        actual = zlib.crc32(payload, zlib.crc32(data[offset:head_end]))
        if (actual & 0xFFFFFFFF) != expected:
            raise _Torn(offset)
        if rtype == RECORD_BATCH:
            if length != meta * 8:
                raise _Torn(offset)
            values = np.frombuffer(payload, dtype="<i8").astype(
                np.int64, copy=True
            )
            records.append(
                WalRecord(lsn=lsn, kind="batch", meta=meta, values=values)
            )
        else:
            records.append(WalRecord(lsn=lsn, kind="seal", meta=meta))
        offset = payload_end
    return records, offset


def scan_wal(directory: "str | Path", salvage: bool = False) -> WalScan:
    """Decode every replayable record under ``directory``.

    A torn tail in the *final* segment is crash-normal and tolerated
    (reported via ``torn_tail``); a bad frame anywhere earlier means
    records after it cannot form a replayable prefix, so it raises
    :class:`WalError` — unless ``salvage`` is set, in which case the
    torn segment is truncated at its last good frame, every later
    segment is deleted, and the surviving prefix is returned.
    """
    directory = Path(directory)
    paths = _segment_files(directory)
    records: List[WalRecord] = []
    torn_at: Optional[Tuple[Path, int]] = None
    kept = 0
    for position, path in enumerate(paths):
        data = path.read_bytes()
        try:
            decoded, _ = _decode_segment(data, path)
        except _Torn as torn:
            if position != len(paths) - 1 and not salvage:
                raise WalError(
                    f"corrupt frame mid-log in {path.name} at byte "
                    f"{torn.offset}: not a crash artifact "
                    "(run fsck --wal --repair to salvage)"
                ) from None
            torn_at = (path, torn.offset)
            decoded, good_end = _decode_segment(
                data[: torn.offset], path
            ) if torn.offset else ([], 0)
            records.extend(decoded)
            kept += 1
            if salvage:
                if good_end <= len(_SEGMENT_MAGIC):
                    path.unlink()
                    kept -= 1
                else:
                    with open(path, "r+b") as handle:
                        handle.truncate(good_end)
                        handle.flush()
                        os.fsync(handle.fileno())
                for later in paths[position + 1 :]:
                    later.unlink()
                _fsync_dir(directory)
            break
        records.extend(decoded)
        kept += 1
    lsns = [r.lsn for r in records]
    if lsns != sorted(set(lsns)):
        raise WalError(f"non-monotonic LSNs in {directory}")
    return WalScan(
        records=tuple(records),
        segments=kept if torn_at else len(paths),
        last_lsn=lsns[-1] if lsns else 0,
        torn_tail=torn_at is not None,
        torn_segment=torn_at[0].name if torn_at else None,
    )


def replay_wal(
    engine, directory: "str | Path", after_lsn: int = 0
) -> ReplayStats:
    """Roll ``engine`` forward through every record past the watermark.

    Batch frames are re-fed through ``stream_update_many`` with their
    original boundaries; seal frames call ``end_time_step``.  The
    engine must not have a live WAL attached (records would be
    re-appended) — attach the writer after replay.
    """
    if getattr(engine, "_wal", None) is not None:
        raise WalError("detach the WAL writer before replaying into it")
    scan = scan_wal(directory)
    batches = elements = seals = skipped = 0
    last = after_lsn
    for record in scan.records:
        if record.lsn <= after_lsn:
            skipped += 1
            continue
        if record.kind == "batch":
            engine.stream_update_many(record.values)
            batches += 1
            elements += int(record.meta)
        else:
            engine.end_time_step()
            seals += 1
        last = record.lsn
    return ReplayStats(
        batches=batches,
        elements=elements,
        seals=seals,
        last_lsn=last,
        skipped=skipped,
    )


class WriteAheadLog:
    """Appender over a directory of CRC-framed WAL segments.

    Opening scans the existing segments (salvaging a crash-torn tail),
    resumes the LSN sequence, and appends into a fresh segment.  Each
    append is flushed — and fsynced when ``fsync`` is on — before it
    returns, making the caller's ack durable.
    """

    def __init__(
        self,
        directory: "str | Path",
        fsync: bool = True,
        segment_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        scan = scan_wal(self.directory, salvage=True)
        self._floor = _read_floor(self.directory)
        self._lsn = max(scan.last_lsn, self._floor)
        # Pre-existing segments are never appended to again (a torn
        # tail was already salvaged; resuming mid-file risks garbage).
        # Rebuild their last-LSN bounds from the scan: a record belongs
        # to the last segment whose first LSN is <= the record's.
        paths = _segment_files(self.directory)
        firsts = [self._first_lsn_of(p) for p in paths]
        bounds = {path: 0 for path in paths}
        for record in scan.records:
            owner = None
            for path, first in zip(paths, firsts):
                if first <= record.lsn:
                    owner = path
            if owner is not None:
                bounds[owner] = record.lsn
        #: sealed (closed) segments paired with the last LSN they hold.
        self._sealed: List[Tuple[Path, int]] = [
            (path, bounds[path]) for path in paths
        ]
        self._file = None
        self._active: Optional[Path] = None
        self._active_first = 0
        self._active_last = 0
        self._closed = False

    @staticmethod
    def _first_lsn_of(path: Path) -> int:
        try:
            return int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            raise WalError(f"unrecognized segment name {path.name}") from None

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended (durable) record."""
        return self._lsn

    def _open_segment(self) -> None:
        self._active_first = self._lsn + 1
        self._active = self.directory / _segment_name(self._active_first)
        self._file = open(self._active, "xb")
        self._file.write(_SEGMENT_MAGIC)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        _fsync_dir(self.directory)
        self._active_last = 0

    def _append(self, rtype: int, meta: int, payload: bytes) -> int:
        if self._closed:
            raise WalError("write-ahead log is closed")
        if self._file is not None and (
            self._file.tell() >= self.segment_bytes and self._active_last
        ):
            self._rotate()
        if self._file is None:
            self._open_segment()
        self._lsn += 1
        self._file.write(_encode_frame(rtype, self._lsn, meta, payload))
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self._active_last = self._lsn
        return self._lsn

    def _rotate(self) -> None:
        self._file.close()
        self._sealed.append((self._active, self._active_last))
        self._file = None
        self._active = None

    def append_batch(self, values: np.ndarray) -> int:
        """Durably log one acked ingest batch; returns its LSN."""
        arr = np.ascontiguousarray(
            np.asarray(values, dtype=np.int64).ravel()
        )
        return self._append(
            RECORD_BATCH, int(arr.size), arr.astype("<i8").tobytes()
        )

    def append_seal(self, step: int) -> int:
        """Durably log one ``end_time_step`` seal; returns its LSN."""
        return self._append(RECORD_SEAL, int(step), b"")

    def truncate(self, upto_lsn: int) -> int:
        """Garbage-collect segments fully covered by a checkpoint.

        Removes every segment whose records all have
        ``lsn <= upto_lsn``.  Safe at any time: replay skips records at
        or below the checkpoint watermark, so an untruncated segment is
        merely wasted space, never a double-apply.  Returns the number
        of segments removed.
        """
        # Persist the LSN floor *before* deleting anything so a crash
        # between the two can never regress the sequence (see
        # :func:`_read_floor`).
        floor = min(int(upto_lsn), self._lsn)
        if floor > self._floor:
            self._floor = floor
            _write_floor(self.directory, floor, self.fsync)
        removed = 0
        survivors: List[Tuple[Path, int]] = []
        for path, last in self._sealed:
            if last <= upto_lsn:
                path.unlink()
                removed += 1
            else:
                survivors.append((path, last))
        self._sealed = survivors
        if (
            self._file is not None
            and self._active_last
            and self._active_last <= upto_lsn
        ):
            self._file.close()
            self._active.unlink()
            self._file = None
            self._active = None
            removed += 1
        if removed:
            _fsync_dir(self.directory)
        return removed

    def close(self) -> None:
        """Close the active segment (the log stays replayable)."""
        if self._file is not None:
            self._file.close()
            if self._active_last == 0 and self._active is not None:
                # Header-only segment: drop it so reopen resumes clean.
                self._active.unlink()
            self._file = None
            self._active = None
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
