"""The Misra-Gries frequent-items sketch.

The streaming-side substrate for the hybrid heavy-hitters engine: with
``k`` counters, every value's estimated count satisfies

    f(v) - m / (k + 1)  <=  estimate(v)  <=  f(v)

so any value with true frequency above ``m / (k + 1)`` is guaranteed to
be among the tracked keys.  Batches merge via the mergeable-summaries
rule (combine counts, subtract the (k+1)-largest, drop non-positive),
which preserves the same guarantee.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable

import numpy as np


class MisraGriesSketch:
    """Deterministic frequent-items summary with ``k`` counters.

    Parameters
    ----------
    num_counters:
        ``k``; estimation error is at most ``m / (k + 1)``.
    """

    def __init__(self, num_counters: int) -> None:
        if num_counters < 1:
            raise ValueError("num_counters must be >= 1")
        self.num_counters = num_counters
        self._counters: Dict[int, int] = {}
        self._n = 0

    @classmethod
    def for_epsilon(cls, epsilon: float) -> "MisraGriesSketch":
        """Counters for estimation error at most ``epsilon * m``."""
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        return cls(num_counters=math.ceil(1.0 / epsilon))

    @property
    def n(self) -> int:
        """Number of elements processed so far."""
        return self._n

    @property
    def error_bound(self) -> float:
        """Maximum undercount of any estimate: ``m / (k + 1)``."""
        return self._n / (self.num_counters + 1)

    def update(self, value: int) -> None:
        """Process one element (textbook Misra-Gries)."""
        value = int(value)
        self._n += 1
        if value in self._counters:
            self._counters[value] += 1
            return
        if len(self._counters) < self.num_counters:
            self._counters[value] = 1
            return
        # Decrement-all: drop every counter by one, evicting zeros.
        exhausted = []
        for key in self._counters:
            self._counters[key] -= 1
            if self._counters[key] == 0:
                exhausted.append(key)
        for key in exhausted:
            del self._counters[key]

    def update_batch(self, values: Iterable[int]) -> None:
        """Merge a batch using the mergeable-summaries rule."""
        arr = np.asarray(
            values if isinstance(values, np.ndarray) else list(values),
            dtype=np.int64,
        )
        if arr.size == 0:
            return
        self._n += int(arr.size)
        uniques, counts = np.unique(arr, return_counts=True)
        merged = dict(self._counters)
        for value, count in zip(uniques, counts):
            merged[int(value)] = merged.get(int(value), 0) + int(count)
        if len(merged) > self.num_counters:
            # Subtract the (k+1)-th largest count from everyone and
            # drop the non-positive remainder.
            ordered = sorted(merged.values(), reverse=True)
            cutoff = ordered[self.num_counters]
            merged = {
                key: count - cutoff
                for key, count in merged.items()
                if count - cutoff > 0
            }
        self._counters = merged

    def estimate(self, value: int) -> int:
        """Estimated count of ``value`` (undercounts by <= error_bound)."""
        return self._counters.get(int(value), 0)

    def candidates(self) -> Dict[int, int]:
        """All tracked values with their (under)estimates."""
        return dict(self._counters)

    def heavy_hitters(self, phi: float) -> Dict[int, int]:
        """Values whose estimate reaches ``phi * m``."""
        if not 0 < phi <= 1:
            raise ValueError("phi must be in (0, 1]")
        threshold = phi * self._n
        return {
            value: count
            for value, count in self._counters.items()
            if count >= threshold
        }

    def memory_words(self) -> int:
        """Current memory footprint in 8-byte words."""
        return 2 * len(self._counters) + 3
