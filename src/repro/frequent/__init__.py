"""Heavy hitters over historical + streaming data (future-work aggregate)."""

from .hybrid import HeavyHitter, HeavyHitterReport, HeavyHittersEngine
from .misra_gries import MisraGriesSketch

__all__ = [
    "HeavyHitter",
    "HeavyHitterReport",
    "HeavyHittersEngine",
    "MisraGriesSketch",
]
