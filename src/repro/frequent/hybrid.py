"""Heavy hitters over the union of historical and streaming data.

The paper names heavy hitters alongside quantiles as the fundamental
analytical primitives lacking integrated historical+streaming methods,
and leaves "other classes of aggregates in this model" as future work.
This module carries the paper's design pattern over to frequent items:

* the stream runs a Misra-Gries sketch (error ``eps * m``, stream-side
  only — the exact analogue of the GK sketch's role);
* history lives in the very same leveled store with the very same
  partition summaries;
* a query needs *candidates* plus *counts*.  Candidates come from the
  in-memory structures alone: if a value is phi-heavy over T, then by
  averaging it is phi-heavy inside at least one partition or the
  stream; a phi-heavy value in a sorted partition occupies at least
  ``phi * m_P >= 2 * eps1 * m_P`` consecutive positions, so the
  evenly-spaced summary necessarily sampled it — every candidate is a
  summary value or a Misra-Gries key.  Exact historical counts then
  cost two block-counted binary searches per partition per candidate
  (``rank(v) - rank(v - 1)``), so the only count error is the stream
  sketch's ``eps * m`` — mirroring Theorem 2's shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from ..core.config import EngineConfig
from ..core.summaries import PartitionSummary
from ..storage.cache import BlockCache
from ..storage.disk import SimulatedDisk
from ..warehouse.leveled_store import LeveledStore
from ..warehouse.partition import Partition
from .misra_gries import MisraGriesSketch


@dataclass(frozen=True)
class HeavyHitter:
    """One reported heavy hitter with its count bracket."""

    value: int
    count_low: int
    count_high: int

    @property
    def estimate(self) -> float:
        """Midpoint of the count bracket."""
        return (self.count_low + self.count_high) / 2.0


@dataclass(frozen=True)
class HeavyHitterReport:
    """Result of one heavy-hitters query."""

    phi: float
    total_size: int
    hitters: List[HeavyHitter]
    candidates_checked: int
    disk_accesses: int
    wall_seconds: float

    @property
    def threshold(self) -> float:
        """The absolute count threshold phi * N."""
        return self.phi * self.total_size


class HeavyHittersEngine:
    """Frequent items over historical plus streaming data.

    Implements the same driver protocol as the quantile engine
    (``stream_update_batch`` / ``end_time_step``), so the experiment
    runner can ingest both side by side.

    Guarantee: for ``phi >= 2 * eps1``, every value with true frequency
    at least ``phi * N`` is reported, and nothing with frequency below
    ``phi * N - eps2 * m`` is reported (the stream sketch is the only
    approximate part).
    """

    def __init__(
        self,
        epsilon: Optional[float] = None,
        kappa: int = 10,
        block_elems: int = 1024,
        config: Optional[EngineConfig] = None,
        disk: Optional[SimulatedDisk] = None,
    ) -> None:
        if config is None:
            if epsilon is None:
                raise ValueError("pass epsilon or a full EngineConfig")
            config = EngineConfig(
                epsilon=epsilon, kappa=kappa, block_elems=block_elems
            )
        self.config = config
        self.disk = disk if disk is not None else SimulatedDisk(
            block_elems=config.block_elems
        )
        self.store = LeveledStore(
            self.disk,
            kappa=config.kappa,
            summary_builder=lambda p: PartitionSummary.build(
                p, config.epsilon1
            ),
        )
        self._mg = MisraGriesSketch.for_epsilon(config.epsilon2)
        self._stream_chunks: List[np.ndarray] = []
        self._m = 0
        self._step = 0

    # ------------------------------------------------------------------
    # Ingestion (same shape as the quantile engine)
    # ------------------------------------------------------------------

    def stream_update(self, value: int) -> None:
        """Process one live stream element."""
        self._mg.update(value)
        self._stream_chunks.append(np.asarray([value], dtype=np.int64))
        self._m += 1

    def stream_update_batch(self, values: Iterable[int]) -> None:
        """Process many live stream elements at once."""
        arr = np.asarray(
            values if isinstance(values, np.ndarray) else list(values),
            dtype=np.int64,
        )
        if arr.size == 0:
            return
        self._mg.update_batch(arr)
        self._stream_chunks.append(arr.copy())
        self._m += int(arr.size)

    def end_time_step(self) -> None:
        """Archive the stream batch and reset the stream sketch."""
        self._step += 1
        batch = (
            np.concatenate(self._stream_chunks)
            if self._stream_chunks
            else np.empty(0, dtype=np.int64)
        )
        self.store.add_batch(batch, step=self._step)
        self._stream_chunks = []
        self._m = 0
        self._mg = MisraGriesSketch.for_epsilon(self.config.epsilon2)

    @property
    def n_historical(self) -> int:
        """Number of archived historical elements n."""
        return self.store.total_elements()

    @property
    def m_stream(self) -> int:
        """Number of live (unarchived) stream elements m."""
        return self._m

    @property
    def n_total(self) -> int:
        """Total number of elements N = n + m."""
        return self.n_historical + self._m

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _candidates(self) -> "set[int]":
        candidates = set(self._mg.candidates())
        for partition in self.store.partitions():
            summary: PartitionSummary = partition.summary
            if summary is not None:
                candidates.update(int(v) for v in summary.values)
        return candidates

    def heavy_hitters(self, phi: float) -> HeavyHitterReport:
        """All values with frequency at least ``phi * N`` in T.

        Reported counts are brackets ``[low, high]``: the historical
        part is exact (block-counted binary searches), the stream part
        is the Misra-Gries bracket of width ``eps2 * m``.
        """
        if not 0 < phi <= 1:
            raise ValueError("phi must be in (0, 1]")
        started = time.perf_counter()
        self.disk.stats.set_phase("query")
        cache = BlockCache(self.disk, enabled=self.config.block_cache)
        threshold = phi * self.n_total
        mg_error = int(np.ceil(self._mg.error_bound))
        hitters = []
        candidates = self._candidates()
        for value in candidates:
            historical = 0
            for partition in self.store.partitions():
                historical += self._partition_count(partition, value, cache)
            stream_low = self._mg.estimate(value)
            stream_high = min(self._m, stream_low + mg_error)
            low = historical + stream_low
            high = historical + stream_high
            if high >= threshold:
                hitters.append(
                    HeavyHitter(value=value, count_low=low, count_high=high)
                )
        hitters.sort(key=lambda h: (-h.count_high, h.value))
        self.disk.stats.set_phase("load")
        return HeavyHitterReport(
            phi=phi,
            total_size=self.n_total,
            hitters=hitters,
            candidates_checked=len(candidates),
            disk_accesses=cache.blocks_charged,
            wall_seconds=time.perf_counter() - started,
        )

    def _partition_count(
        self, partition: Partition, value: int, cache: BlockCache
    ) -> int:
        """Exact count of ``value`` in one partition: rank(v) - rank(v-1)."""
        if len(partition) == 0:
            return 0
        summary: PartitionSummary = partition.summary
        lo, hi = summary.search_bounds(value)
        upper = partition.run.rank_of(value, lo=lo, hi=hi, cache=cache)
        lo2, hi2 = summary.search_bounds(value - 1)
        lower = partition.run.rank_of(value - 1, lo=lo2, hi=hi2, cache=cache)
        return upper - lower

    def memory_words(self) -> int:
        """Current memory footprint in 8-byte words."""
        hist = sum(
            p.summary.memory_words()
            for p in self.store.partitions()
            if p.summary is not None
        )
        return self._mg.memory_words() + hist
