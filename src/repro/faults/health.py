"""Engine-level reliability accounting.

One frozen :class:`ReliabilityReport` gathers every failure-isolation
counter the engine maintains — injected faults observed, retries spent
by the archiver and the query executor, queries that degraded to the
quick response — so monitoring (:mod:`repro.core.monitoring`) can alert
on degradation from a single snapshot instead of poking at three
subsystems.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReliabilityReport:
    """Cumulative failure-handling counters of one engine.

    Attributes
    ----------
    disk_faults:
        Faults the engine's disk has fired (0 for a fault-free
        :class:`~repro.storage.disk.SimulatedDisk`).
    archive_retries:
        Archive attempts the background archiver retried after a
        transient fault.
    probe_retries:
        Partition probes the query executor retried after a transient
        fault.
    degraded_queries:
        Accurate queries that fell back to the quick response after
        exhausting probe retries.
    """

    disk_faults: int = 0
    archive_retries: int = 0
    probe_retries: int = 0
    degraded_queries: int = 0

    @property
    def total_retries(self) -> int:
        """Retries spent across all subsystems."""
        return self.archive_retries + self.probe_retries

    @property
    def healthy(self) -> bool:
        """Whether the engine has never had to absorb a failure."""
        return (
            self.disk_faults == 0
            and self.total_retries == 0
            and self.degraded_queries == 0
        )
