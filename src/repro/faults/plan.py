"""Deterministic, seeded fault schedules.

A :class:`FaultPlan` decides, for every disk operation, whether the
operation fails and how.  The decision is a pure function of
``(seed, operation index)`` — no hidden RNG state — so a given plan
produces the same fault at the same operation no matter how many times
the scenario is replayed, and two engines driven through the same
operation sequence hit identical faults.  That is what makes every
failure scenario in the test suite and the crash-recovery harness
reproducible from a single integer seed.

Two scheduling styles compose:

* **rate-based**: each operation kind draws one uniform variate and
  compares it against the plan's rates (transient error, corruption,
  stall).  Rates of zero disable a fault class entirely — a plan with
  all rates zero is the *null plan*, and a
  :class:`~repro.faults.FaultyDisk` under the null plan is
  operation-for-operation identical to a plain
  :class:`~repro.storage.disk.SimulatedDisk`.
* **pinned**: ``fail_at`` names exact ``(kind, index)`` pairs that must
  fault, for tests that need a failure at a precise structural point
  (e.g. "the write that persists step 7's partition").

``max_faults`` caps the total number of faults a disk will fire from
the plan, turning an aggressive rate into a bounded burst.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import FrozenSet, Optional, Tuple

#: decision labels a plan can return for one operation.
TRANSIENT = "transient"
CORRUPT = "corrupt"
STALL = "stall"

_MIX = 0x9E3779B97F4A7C15  # 64-bit golden-ratio multiplier


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired, for the plan transcript."""

    index: int
    op: str
    fault: str

    def as_dict(self) -> dict:
        return {"index": self.index, "op": self.op, "fault": self.fault}


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of disk faults.

    Parameters
    ----------
    seed:
        Seeds every per-operation draw; same seed, same schedule.
    read_error_rate, write_error_rate:
        Probability that a read / write operation raises a transient
        fault (:class:`~repro.faults.TransientReadError` /
        :class:`~repro.faults.TransientWriteError`).
    corrupt_rate:
        Probability that a read raises a persistent
        :class:`~repro.faults.CorruptedBlockError` (drawn after the
        transient band: the two are mutually exclusive per operation).
    stall_rate, stall_seconds:
        Probability that a write stalls, and for how long.  Stalls are
        latency only — the operation still succeeds.
    max_faults:
        Cap on the total number of faults (stalls included) the plan
        fires over a disk's lifetime; ``None`` means unbounded.
    fail_at:
        Exact ``(kind, index)`` pins that fault regardless of rates:
        kind is ``"read"`` or ``"write"``; the fault is transient.
    shard_scope:
        Cluster scoping: shard indices this plan applies to.  ``None``
        (the default) targets every shard.  :meth:`for_shard` derives
        each shard's own plan — out-of-scope shards get the null plan,
        in-scope shards an independently seeded sub-schedule.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    corrupt_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 0.0
    max_faults: Optional[int] = None
    fail_at: FrozenSet[Tuple[str, int]] = field(default_factory=frozenset)
    shard_scope: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        for name in (
            "read_error_rate", "write_error_rate",
            "corrupt_rate", "stall_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.read_error_rate + self.corrupt_rate > 1.0:
            raise ValueError("read_error_rate + corrupt_rate must be <= 1")
        if self.stall_seconds < 0.0:
            raise ValueError("stall_seconds must be >= 0")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be >= 0")
        # Normalize so plans hash/compare regardless of input container.
        object.__setattr__(
            self, "fail_at",
            frozenset((str(kind), int(index)) for kind, index in self.fail_at),
        )
        if self.shard_scope is not None:
            scope = tuple(sorted({int(s) for s in self.shard_scope}))
            if scope and scope[0] < 0:
                raise ValueError("shard_scope indices must be >= 0")
            object.__setattr__(self, "shard_scope", scope)

    @property
    def null(self) -> bool:
        """Whether this plan can never fire a fault."""
        return (
            self.read_error_rate == 0.0
            and self.write_error_rate == 0.0
            and self.corrupt_rate == 0.0
            and self.stall_rate == 0.0
            and not self.fail_at
        ) or self.max_faults == 0

    def _draw(self, index: int) -> float:
        # One uniform variate per operation, keyed on (seed, index)
        # alone — deterministic, order-independent, and cheap.
        key = ((self.seed << 32) ^ (index * _MIX)) & (2**64 - 1)
        return random.Random(key).random()

    def decide(self, op: str, index: int) -> Optional[str]:
        """The fault (if any) for operation ``index`` of kind ``op``.

        Returns :data:`TRANSIENT`, :data:`CORRUPT`, :data:`STALL`, or
        ``None``.  Pure: callers (the disk) enforce ``max_faults``.
        """
        if (op, index) in self.fail_at:
            return TRANSIENT
        draw = self._draw(index)
        if op == "read":
            if draw < self.read_error_rate:
                return TRANSIENT
            if draw < self.read_error_rate + self.corrupt_rate:
                return CORRUPT
        elif op == "write":
            if draw < self.write_error_rate:
                return TRANSIENT
            if draw < self.write_error_rate + self.stall_rate:
                return STALL
        return None

    def for_shard(self, shard: int) -> "FaultPlan":
        """Derive shard ``shard``'s own plan from a cluster-level one.

        Out-of-scope shards receive the null plan (their disks stay
        operation-for-operation identical to a fault-free device).
        In-scope shards receive this plan reseeded with a per-shard
        mix, so the N shards draw independent schedules rather than
        faulting in lockstep at the same operation indices.
        """
        shard = int(shard)
        if shard < 0:
            raise ValueError("shard must be >= 0")
        if self.shard_scope is not None and shard not in self.shard_scope:
            return FaultPlan(seed=self.seed)
        derived = (self.seed ^ ((shard + 1) * _MIX)) & (2**63 - 1)
        return replace(self, seed=derived, shard_scope=None)

    # -- (de)serialization — the CLI's --fault-plan and CI artifacts --

    def to_json(self) -> str:
        """Serialize to the JSON shape ``from_spec`` accepts."""
        payload = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "fail_at"
        }
        payload["fail_at"] = sorted(list(pin) for pin in self.fail_at)
        if payload.get("shard_scope") is not None:
            payload["shard_scope"] = list(payload["shard_scope"])
        return json.dumps(payload, indent=2)

    @classmethod
    def from_spec(cls, spec: "str | dict | Path") -> "FaultPlan":
        """Build a plan from a JSON string, a dict, or a JSON file path.

        The CLI's ``--fault-plan`` accepts either inline JSON
        (``'{"seed": 7, "read_error_rate": 0.05}'``) or the path of a
        file holding the same document.
        """
        if isinstance(spec, Path):
            spec = spec.read_text(encoding="utf-8")
        if isinstance(spec, str):
            text = spec.strip()
            if not text.startswith("{"):
                path = Path(text)
                if not path.exists():
                    raise ValueError(f"fault plan file not found: {text}")
                text = path.read_text(encoding="utf-8")
            try:
                spec = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(f"garbled fault plan: {exc}") from exc
        if not isinstance(spec, dict):
            raise ValueError("fault plan spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"unknown fault plan keys: {sorted(unknown)}"
            )
        kwargs = dict(spec)
        if "fail_at" in kwargs:
            kwargs["fail_at"] = frozenset(
                (str(kind), int(index)) for kind, index in kwargs["fail_at"]
            )
        return cls(**kwargs)
