"""Fault injection: reproducible disk-failure schedules and retries.

The engine is meant to run continuously next to a warehouse; the disk
*will* misbehave while it does.  This package gives the reproduction a
failure model it can test against:

* :class:`FaultPlan` — a deterministic, seeded schedule of transient
  read/write errors, corrupted blocks and write stalls; every decision
  is a pure function of ``(seed, operation index)``, so any scenario
  replays exactly from one integer.
* :class:`FaultyDisk` — a drop-in
  :class:`~repro.storage.disk.SimulatedDisk` that raises typed
  :class:`DiskFault` errors per the plan and records a transcript of
  every fault fired (the CI artifact on harness failures).  Under the
  null plan it is bit-identical to the plain disk.
* :class:`RetryPolicy` — capped exponential backoff shared by the
  background archiver and the parallel query executor.

The consumers live elsewhere: :mod:`repro.ingest` retries transient
faults and survives failed batches; :mod:`repro.query` retries probes
and lets the engine degrade an accurate query to the quick response;
:mod:`repro.persistence` keeps checkpoints crash-consistent so the
state a fault interrupts is always recoverable.
"""

from .disk import FaultyDisk
from .health import ReliabilityReport
from .errors import (
    CorruptedBlockError,
    DiskFault,
    TransientReadError,
    TransientWriteError,
)
from .plan import FaultEvent, FaultPlan
from .retry import RetryPolicy

__all__ = [
    "CorruptedBlockError",
    "DiskFault",
    "FaultEvent",
    "FaultPlan",
    "FaultyDisk",
    "ReliabilityReport",
    "RetryPolicy",
    "TransientReadError",
    "TransientWriteError",
]
