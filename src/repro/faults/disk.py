"""A fault-injecting simulated disk.

:class:`FaultyDisk` is a drop-in :class:`~repro.storage.disk.
SimulatedDisk`: same block API, same I/O accounting, plus a
:class:`~repro.faults.FaultPlan` consulted before every operation.  A
scheduled fault raises the matching typed :class:`~repro.faults.
DiskFault` *before* any counter is charged — a failed transfer moved no
data, so when a retry later succeeds, the realized access counts equal
a fault-free execution of the same request sequence.  Under the null
plan (all rates zero) the disk never consults the RNG and behaves
bit-identically to its parent class.

An *operation* is one storage-layer request (one ``charge_*`` /
``read_sequential`` / ``write_sequential`` call), not one block: the
warehouse issues a handful of requests per batch, so per-request rates
map directly onto "how often does archiving a step hit a fault".
Operation indices are assigned under a lock in arrival order; with
concurrent threads the assignment order follows the interleaving, which
is why the reproducible harnesses drive deterministic request sequences
(single scenario, fixed seeds) rather than relying on thread timing.

Every fault that fires is appended to :attr:`FaultyDisk.transcript`;
:meth:`dump_transcript` writes the plan plus the events as JSON — the
artifact CI uploads when a fault-injection run fails, so the exact
schedule that broke the build can be replayed locally.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

from ..storage.disk import SimulatedDisk
from ..storage.stats import DiskLatencyModel
from .errors import CorruptedBlockError, TransientReadError, TransientWriteError
from .plan import CORRUPT, STALL, TRANSIENT, FaultEvent, FaultPlan

_FAULT_FOR = {
    ("read", TRANSIENT): TransientReadError,
    ("read", CORRUPT): CorruptedBlockError,
    ("write", TRANSIENT): TransientWriteError,
}


class FaultyDisk(SimulatedDisk):
    """A :class:`SimulatedDisk` that fails on schedule.

    Parameters
    ----------
    plan:
        The fault schedule.  ``FaultPlan()`` (the null plan) makes this
        class behave exactly like its parent.
    block_elems, latency:
        Forwarded to :class:`SimulatedDisk`.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        block_elems: int = 4096,
        latency: Optional[DiskLatencyModel] = None,
    ) -> None:
        super().__init__(block_elems=block_elems, latency=latency)
        self.plan = plan if plan is not None else FaultPlan()
        self.transcript: List[FaultEvent] = []
        self._op_lock = threading.Lock()
        self._op_index = 0
        self._faults_fired = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def operations(self) -> int:
        """Number of operations issued so far (faulted ones included)."""
        with self._op_lock:
            return self._op_index

    @property
    def faults_fired(self) -> int:
        """Number of faults (stalls included) fired so far."""
        with self._op_lock:
            return self._faults_fired

    def dump_transcript(self, path: "str | Path") -> Path:
        """Write the plan and the fired faults as a JSON document."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "plan": json.loads(self.plan.to_json()),
            "operations": self.operations,
            "events": [event.as_dict() for event in self.transcript],
        }
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        return path

    # ------------------------------------------------------------------
    # The injection point
    # ------------------------------------------------------------------

    def _before_op(self, op: str) -> None:
        """Consult the plan for the next operation; raise or stall."""
        if self.plan.null:
            return
        with self._op_lock:
            index = self._op_index
            self._op_index += 1
            if (
                self.plan.max_faults is not None
                and self._faults_fired >= self.plan.max_faults
            ):
                return
            decision = self.plan.decide(op, index)
            if decision is None:
                return
            self._faults_fired += 1
            self.transcript.append(
                FaultEvent(index=index, op=op, fault=decision)
            )
        if decision == STALL:
            if self.plan.stall_seconds > 0.0:
                time.sleep(self.plan.stall_seconds)
            return
        raise _FAULT_FOR[(op, decision)](op, index)

    # ------------------------------------------------------------------
    # Faulting overrides (charge only after the fault gate passes)
    # ------------------------------------------------------------------

    def write_sequential(self, data: np.ndarray) -> np.ndarray:
        self._before_op("write")
        return super().write_sequential(data)

    def read_sequential(self, stored: np.ndarray) -> np.ndarray:
        self._before_op("read")
        return super().read_sequential(stored)

    def charge_sequential_read(self, num_elems: int) -> None:
        self._before_op("read")
        super().charge_sequential_read(num_elems)

    def charge_sequential_write(self, num_elems: int) -> None:
        self._before_op("write")
        super().charge_sequential_write(num_elems)

    def charge_random_read(self, blocks: int = 1) -> None:
        self._before_op("read")
        super().charge_random_read(blocks)
