"""Retry-with-backoff for transient disk faults.

One policy object serves both hot paths that touch the disk: the
background archiver (retrying a whole stage/adopt attempt) and the
query executor (retrying one partition probe).  Only *transient*
:class:`~repro.faults.DiskFault` subtypes are retried — a persistent
fault (corruption) or any non-fault exception propagates immediately,
because retrying cannot change the outcome.

Backoff is capped exponential: attempt ``k`` sleeps
``min(base * 2**(k-1), cap)`` seconds.  The defaults are deliberately
tiny (the simulated disk has no real latency to wait out); production
knobs live on :class:`~repro.core.config.EngineConfig`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .errors import DiskFault


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient fault, and how patiently.

    Parameters
    ----------
    max_retries:
        Retries *after* the first attempt; ``0`` disables retrying.
    backoff_seconds:
        Base sleep before the first retry.
    backoff_cap_seconds:
        Ceiling on any single sleep.
    """

    max_retries: int = 0
    backoff_seconds: float = 0.0
    backoff_cap_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_seconds < 0.0:
            raise ValueError("backoff_seconds must be >= 0")
        if self.backoff_cap_seconds < 0.0:
            raise ValueError("backoff_cap_seconds must be >= 0")

    def sleep_before(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        if self.backoff_seconds <= 0.0:
            return 0.0
        return min(
            self.backoff_seconds * (2.0 ** (attempt - 1)),
            self.backoff_cap_seconds,
        )

    def call(
        self,
        fn: Callable[[], Any],
        on_retry: Optional[Callable[[DiskFault, int], None]] = None,
    ) -> Any:
        """Run ``fn``, retrying transient faults per this policy.

        ``on_retry(fault, attempt)`` is invoked before each retry (for
        counters/logging).  The final failure — transient faults past
        the budget, persistent faults, any other exception — is raised
        unchanged.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except DiskFault as fault:
                if not fault.transient or attempt >= self.max_retries:
                    raise
                attempt += 1
                if on_retry is not None:
                    on_retry(fault, attempt)
                pause = self.sleep_before(attempt)
                if pause > 0.0:
                    time.sleep(pause)
