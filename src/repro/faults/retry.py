"""Retry-with-backoff for transient disk faults.

One policy object serves both hot paths that touch the disk: the
background archiver (retrying a whole stage/adopt attempt) and the
query executor (retrying one partition probe).  Only *transient*
:class:`~repro.faults.DiskFault` subtypes are retried — a persistent
fault (corruption) or any non-fault exception propagates immediately,
because retrying cannot change the outcome.

Backoff is capped exponential: attempt ``k`` sleeps
``min(base * 2**(k-1), cap)`` seconds, optionally shaved by seeded
jitter so a fleet of retriers does not thunder in lockstep.  The
jittered schedule is a pure function of ``(seed, attempt)`` — no
global RNG, no hidden state — so the same policy replays the same
sleeps, which is what lets the chaos harness assert recovery timing
deterministically.  The defaults are deliberately tiny (the simulated
disk has no real latency to wait out); production knobs live on
:class:`~repro.core.config.EngineConfig`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .errors import DiskFault
from .plan import _MIX


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient fault, and how patiently.

    Parameters
    ----------
    max_retries:
        Retries *after* the first attempt; ``0`` disables retrying.
    backoff_seconds:
        Base sleep before the first retry.
    backoff_cap_seconds:
        Ceiling on any single sleep.
    jitter:
        Fraction of each (capped) sleep randomized away: retry ``k``
        sleeps ``capped * (1 - jitter * u)`` where ``u`` is a uniform
        variate keyed on ``(seed, k)``.  ``0`` (the default) keeps the
        exact legacy schedule.
    seed:
        Seeds the jitter draws; two policies with the same seed sleep
        the same schedule.  ``None`` behaves as seed 0 — jitter is
        *always* deterministic, never wall-clock or global-RNG fed.
    """

    max_retries: int = 0
    backoff_seconds: float = 0.0
    backoff_cap_seconds: float = 1.0
    jitter: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_seconds < 0.0:
            raise ValueError("backoff_seconds must be >= 0")
        if self.backoff_cap_seconds < 0.0:
            raise ValueError("backoff_cap_seconds must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def _jitter_draw(self, attempt: int) -> float:
        # Same keyed-RNG idiom as FaultPlan._draw: a fresh Random per
        # (seed, attempt) key — pure, replayable, order-independent.
        seed = self.seed if self.seed is not None else 0
        key = ((seed << 32) ^ (attempt * _MIX)) & (2**64 - 1)
        return random.Random(key).random()

    def sleep_before(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        if self.backoff_seconds <= 0.0:
            return 0.0
        capped = min(
            self.backoff_seconds * (2.0 ** (attempt - 1)),
            self.backoff_cap_seconds,
        )
        if self.jitter > 0.0:
            capped *= 1.0 - self.jitter * self._jitter_draw(attempt)
        return capped

    def call(
        self,
        fn: Callable[[], Any],
        on_retry: Optional[Callable[[DiskFault, int], None]] = None,
    ) -> Any:
        """Run ``fn``, retrying transient faults per this policy.

        ``on_retry(fault, attempt)`` is invoked before each retry (for
        counters/logging).  The final failure — transient faults past
        the budget, persistent faults, any other exception — is raised
        unchanged.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except DiskFault as fault:
                if not fault.transient or attempt >= self.max_retries:
                    raise
                attempt += 1
                if on_retry is not None:
                    on_retry(fault, attempt)
                pause = self.sleep_before(attempt)
                if pause > 0.0:
                    time.sleep(pause)
