"""The typed fault taxonomy raised by a :class:`~repro.faults.FaultyDisk`.

Every injected failure is a :class:`DiskFault` subtype carrying the
operation kind and index it fired on, so tests can assert *which*
scheduled fault a code path hit, and the retry machinery can decide
whether another attempt can help:

* **transient** faults (:class:`TransientReadError`,
  :class:`TransientWriteError`) model the disk momentarily misbehaving
  — a timeout, a bus reset, a loose SATA cable.  A retry re-draws from
  the fault plan at a fresh operation index, so under any rate < 1 a
  retry loop terminates with probability 1.
* **persistent** faults (:class:`CorruptedBlockError`) model damage
  that retrying the same I/O cannot fix; callers must isolate the
  failure (degrade the query, surface a typed error) instead of
  spinning.
"""

from __future__ import annotations


class DiskFault(RuntimeError):
    """An injected disk failure.

    Parameters
    ----------
    op:
        The operation kind the fault fired on (``"read"``/``"write"``).
    index:
        The disk-global operation index (see
        :meth:`~repro.faults.FaultyDisk.operations`).
    """

    #: whether retrying the failed operation can succeed.
    transient: bool = False

    def __init__(self, op: str, index: int) -> None:
        super().__init__(
            f"injected {self.__class__.__name__} on {op} op #{index}"
        )
        self.op = op
        self.index = index


class TransientReadError(DiskFault):
    """A read that failed this once; a retry may succeed."""

    transient = True


class TransientWriteError(DiskFault):
    """A write that failed this once; a retry may succeed."""

    transient = True


class CorruptedBlockError(DiskFault):
    """A read that returned damaged data; retrying cannot help."""

    transient = False
