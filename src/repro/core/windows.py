"""Windowed queries (Section 2.4, "Queries Over Windows").

A query over the last ``w`` time steps is answerable exactly when the
window boundary aligns with a partition boundary in HD; the engine then
restricts TS and the accurate search to the partition suffix covering
the window (plus the live stream, which is always part of the window).
"""

from __future__ import annotations

from typing import List, Optional

from ..warehouse.leveled_store import (
    LeveledStore,
    range_from,
    window_from,
    window_sizes_from,
)
from ..warehouse.partition import Partition


class WindowNotAlignedError(ValueError):
    """Raised when a window does not align with partition boundaries."""

    def __init__(self, window_steps: int, available: List[int]) -> None:
        self.window_steps = window_steps
        self.available = available
        super().__init__(
            f"window of {window_steps} steps does not align with "
            f"partition boundaries; available windows: {available}"
        )


def resolve_window_in(
    ordered: List[Partition],
    window_steps: int,
    last_step: Optional[int] = None,
) -> List[Partition]:
    """Suffix of ``ordered`` covering exactly the last ``window_steps``.

    Operates on any step-ordered partition list — in particular the
    engine's combined snapshot of adopted *plus* pending partitions, so
    windowed queries stay answerable mid-archive.  Raises
    :class:`WindowNotAlignedError` for unaligned windows; the exception
    carries the feasible window sizes (the x-axis of the paper's
    Figure 11).
    """
    if last_step is None:
        last_step = ordered[-1].end_step if ordered else 0
    partitions = window_from(ordered, last_step, window_steps)
    if partitions is None:
        raise WindowNotAlignedError(window_steps, window_sizes_from(ordered))
    return partitions


def resolve_window(store: LeveledStore, window_steps: int) -> List[Partition]:
    """Partitions covering exactly the last ``window_steps`` steps.

    Raises :class:`WindowNotAlignedError` for unaligned windows; the
    exception carries the feasible window sizes (the x-axis of the
    paper's Figure 11).
    """
    return resolve_window_in(
        store.partitions(), window_steps, last_step=store.steps_loaded
    )


class RangeNotAlignedError(ValueError):
    """Raised when a step range does not align with partitions."""

    def __init__(self, start_step: int, end_step: int) -> None:
        self.start_step = start_step
        self.end_step = end_step
        super().__init__(
            f"steps [{start_step}, {end_step}] do not align with "
            f"partition boundaries"
        )


def resolve_range_in(
    ordered: List[Partition], start_step: int, end_step: int
) -> List[Partition]:
    """Slice of ``ordered`` covering exactly ``[start_step, end_step]``.

    List-based twin of :func:`resolve_range`, usable over the engine's
    combined adopted-plus-pending snapshot.
    """
    partitions = range_from(ordered, start_step, end_step)
    if partitions is None:
        raise RangeNotAlignedError(start_step, end_step)
    return partitions


def resolve_range(
    store: LeveledStore, start_step: int, end_step: int
) -> List[Partition]:
    """Partitions covering exactly ``[start_step, end_step]``.

    The arbitrary-range generalization of windowed queries: any
    historical interval whose endpoints fall on partition boundaries
    is queryable (e.g. "the same week last year" for trend
    comparisons).  Raises :class:`RangeNotAlignedError` otherwise.
    """
    partitions = store.range_partitions(start_step, end_step)
    if partitions is None:
        raise RangeNotAlignedError(start_step, end_step)
    return partitions
