"""TS: the combined summary of historical plus streaming data.

Section 2.3.1: sort the union of all partition summaries and the stream
summary into TS, and for every element compute a lower bound ``L_i``
and upper bound ``U_i`` on its rank in the full dataset T (Lemma 2):

    L_i = eps2*m*b*(alpha_S - 1) + sum_{P: alpha_P > 0} m_P*eps1*(alpha_P - 1)
    U_i = eps2*m*b* alpha_S'    + sum_{P: alpha_P > 0} m_P*eps1* alpha_P

where ``alpha_S`` / ``alpha_P`` count summary elements at most TS[i],
``b`` is 1 iff ``alpha_S > 0``, and ``alpha_S'`` is ``alpha_S`` for
elements drawn from the stream summary itself (their own Lemma 1 bound
applies) and ``alpha_S + 1`` otherwise.  These formulas reproduce the
worked example of the paper's Figure 3 exactly (see the golden test).

TS powers both the quick response (Algorithm 5) and filter generation
(Algorithm 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .summaries import PartitionSummary, StreamSummary


@dataclass(frozen=True)
class PartialResult:
    """Missing-shard accounting for a partial cluster gather.

    When ``k`` of ``N`` shards cannot answer (quarantined at pin time,
    or excluded mid-search after a disk fault), the gather answers over
    the surviving union and widens its rank-error bound by the missing
    shards' element counts — see :func:`widen_rank_bound` for why that
    is sound.  Attached to the returned
    :class:`~repro.core.engine.QueryResult` as its ``partial`` field.
    """

    #: shard ids (cluster-wide) that did not contribute to the answer.
    missing_shards: "tuple[int, ...]"
    #: elements those shards held in the queried scope.
    missing_elements: int
    #: shards that did answer.
    shards_answering: int
    #: total shards in the cluster.
    shards_total: int
    #: the surviving-scope bound before widening.
    base_bound: float


def widen_rank_bound(base_bound: float, missing_elements: int) -> float:
    """Widen a surviving-scope rank bound by the missing elements.

    Let the full union hold ``T`` elements, the survivors ``T' = T -
    C`` where ``C = missing_elements``, and let the answer ``v`` target
    rank ``r'`` among the survivors with ``|rank_S(v) - r'| <=
    base_bound``.  Against any full-union target ``r`` with ``|r - r'|
    <= C`` (rank clamping or ``phi``-rescaling both satisfy this):

        rank_T(v) - r = (rank_T(v) - rank_S(v)) + (rank_S(v) - r')
                        + (r' - r)

    The first term lies in ``[0, C]`` (the missing elements can only
    push ``v``'s union rank up), the last in ``[-C, 0]``, so the two
    ``C``-terms never stack and ``|rank_T(v) - r| <= base_bound + C``.
    """
    return float(base_bound) + int(missing_elements)


@dataclass(frozen=True)
class CombinedSummary:
    """TS with per-element rank bounds.

    Attributes
    ----------
    values:
        All summary elements, sorted ascending (duplicates kept).
    from_stream:
        Boolean mask: whether each element came from SS.
    lower, upper:
        The bounds ``L_i`` / ``U_i`` exactly as the paper computes them.
    total_size:
        ``N = n + m`` over the data the summary covers (the full
        dataset, or the window for windowed queries).
    """

    values: np.ndarray
    from_stream: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    total_size: int

    @classmethod
    def build(
        cls,
        partition_summaries: Sequence[PartitionSummary],
        stream_summary: "StreamSummary | Sequence[StreamSummary]",
    ) -> "CombinedSummary":
        """Merge HS and SS into TS and compute all bounds.

        ``stream_summary`` may be a single :class:`StreamSummary` (the
        single-engine path — bit-identical to the historical code) or a
        sequence of them (the cluster's fused path: one SS per shard).
        Rank bounds are additive across components, so each stream
        summary simply contributes its own Lemma 2 terms and the fused
        error is ``eps1 * sum(n_P) + eps2 * sum(m_s)`` — the same
        contract over the union stream.
        """
        if isinstance(stream_summary, StreamSummary):
            stream_summaries = [stream_summary]
        else:
            stream_summaries = list(stream_summary)
        histories = [s for s in partition_summaries if len(s) > 0]
        parts = [s.values for s in histories]
        flags = [np.zeros(len(s), dtype=bool) for s in histories]
        # Per-element origin: -1 for historical entries, the stream
        # summary's index otherwise (an element's *own* summary uses
        # the tighter Lemma 1 coefficient below).
        origins = [np.full(len(s), -1, dtype=np.int64) for s in histories]
        for s_index, summary in enumerate(stream_summaries):
            if not summary.is_empty:
                parts.append(summary.values)
                flags.append(np.ones(len(summary), dtype=bool))
                origins.append(
                    np.full(len(summary), s_index, dtype=np.int64)
                )
        if not parts:
            raise ValueError("cannot summarize an empty dataset")
        values = np.concatenate(parts)
        stream_mask = np.concatenate(flags)
        origin = np.concatenate(origins)
        # Sort by value; on ties, stream entries first.  (A stream
        # entry's upper bound uses coefficient alpha_S while an equal
        # historical value uses alpha_S + 1, so this tie order keeps
        # the ``upper`` array monotone for the binary searches below.)
        order = np.lexsort((np.where(stream_mask, 0, 1), values))
        values = values[order]
        stream_mask = stream_mask[order]
        origin = origin[order]

        lower = np.zeros(len(values), dtype=np.float64)
        upper = np.zeros(len(values), dtype=np.float64)
        for summary in histories:
            alphas = np.searchsorted(summary.values, values, side="right")
            scale = summary.eps1 * summary.partition_size
            present = alphas > 0
            lower += np.where(
                present,
                np.minimum((alphas - 1) * scale, summary.partition_size),
                0.0,
            )
            # Paper formula alpha * eps1 * m_P, floored by the stored
            # exact rank of the next summary entry so the bound stays
            # valid when a tiny partition deduplicated its positions.
            count = len(summary.positions)
            idx = np.minimum(alphas, count - 1)
            exact_next = np.where(
                alphas < count,
                summary.positions[idx] - 1,
                summary.partition_size,
            )
            upper += np.where(
                present, np.maximum(alphas * scale, exact_next), 0.0
            )
        for s_index, summary in enumerate(stream_summaries):
            m = summary.stream_size
            if m <= 0:
                continue
            alphas = np.searchsorted(summary.values, values, side="right")
            scale = summary.eps2 * m
            present = alphas > 0
            lower += np.where(
                present, np.minimum((alphas - 1) * scale, m), 0.0
            )
            if summary.strict_uppers is not None:
                # Provable bracket from the GK extraction: everything
                # at most TS[i] precedes the next strictly greater
                # summary entry.
                count = len(summary.values)
                idx = np.minimum(alphas, count - 1)
                bound = np.where(
                    alphas < count,
                    summary.strict_uppers[idx].astype(np.float64),
                    float(m),
                )
                upper += np.where(present, bound, 0.0)
            else:
                # Lemma 1 applies to this summary's own entries only;
                # every other element falls between entries and pays
                # the + 1 coefficient.
                own = origin == s_index
                upper_coeff = np.where(own, alphas, alphas + 1)
                upper += np.where(present, upper_coeff * scale, 0.0)

        total = sum(s.partition_size for s in histories) + sum(
            s.stream_size for s in stream_summaries
        )
        return cls(
            values=values,
            from_stream=stream_mask,
            lower=lower,
            upper=upper,
            total_size=total,
        )

    def __len__(self) -> int:
        return len(self.values)

    def quick_response(self, rank: int) -> int:
        """Algorithm 5: the element at the smallest index with L_j >= r."""
        j = int(np.searchsorted(self.lower, rank, side="left"))
        if j >= len(self.values):
            j = len(self.values) - 1
        return int(self.values[j])

    def quick_responses(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorized Algorithm 5 over many target ranks at once.

        One ``searchsorted`` answers the whole batch — this is the pass
        the serving layer's coalescer shares across every quick request
        pinned at the same epoch.  Element ``i`` equals
        ``quick_response(ranks[i])`` exactly.
        """
        idx = np.searchsorted(self.lower, np.asarray(ranks), side="left")
        idx = np.minimum(idx, len(self.values) - 1)
        return self.values[idx]

    def generate_filters(self, rank: int) -> "tuple[int, int]":
        """Algorithm 7: values (u, v) bracketing the element of rank r.

        Guarantees ``rank(u, T) <= r <= rank(v, T)``.  When no summary
        element's upper bound is below ``r``, the lower filter falls
        back to one less than the global minimum (rank 0); when no
        lower bound reaches ``r``, the upper filter is the global
        maximum (rank N).
        """
        x = int(np.searchsorted(self.upper, rank, side="right")) - 1
        u = int(self.values[x]) if x >= 0 else int(self.values[0]) - 1
        y = int(np.searchsorted(self.lower, rank, side="left"))
        v = int(self.values[y]) if y < len(self.values) else int(self.values[-1])
        if v < u:
            # Possible only through bound ties at equal values; the
            # bracket [min, max] of the pair is always safe.
            u, v = v, u
        return u, v
