"""Quantile monitors: the real-time alerting use case.

The paper's introduction motivates quantiles with latency monitoring —
"the 0.95-quantile and 0.99-quantile are used to get a detailed
insight on the performance that most users experience" — inside DSMSes
that "provide support for real-time alerting".  A
:class:`QuantileWatcher` holds standing threshold rules and evaluates
them all against one consistent snapshot per call, so a burst of
alerts always describes a single instant of the data.

Quick-mode evaluation costs no disk access at all, making per-arrival
or per-step evaluation essentially free; accurate mode spends a few
block reads for tight values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .engine import HybridQuantileEngine
from .snapshot import EngineSnapshot


@dataclass(frozen=True)
class MonitorRule:
    """One standing threshold on a quantile."""

    name: str
    phi: float
    threshold: int
    direction: str  # "above" or "below"
    mode: str = "quick"

    def __post_init__(self) -> None:
        if not 0 < self.phi <= 1:
            raise ValueError("phi must be in (0, 1]")
        if self.direction not in ("above", "below"):
            raise ValueError("direction must be 'above' or 'below'")
        if self.mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")

    def triggered_by(self, value: int) -> bool:
        """Whether an observed value fires this rule."""
        if self.direction == "above":
            return value > self.threshold
        return value < self.threshold


@dataclass(frozen=True)
class QuantileAlert:
    """One firing of a monitor rule."""

    rule: MonitorRule
    observed: int
    total_size: int
    at_step: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.rule.name}] phi={self.rule.phi} observed "
            f"{self.observed} {self.rule.direction} threshold "
            f"{self.rule.threshold} (N={self.total_size}, "
            f"step {self.at_step})"
        )


class QuantileWatcher:
    """Standing quantile-threshold rules over one engine."""

    def __init__(self, engine: HybridQuantileEngine) -> None:
        self._engine = engine
        self._rules: Dict[str, MonitorRule] = {}

    def add(
        self,
        name: str,
        phi: float,
        above: Optional[int] = None,
        below: Optional[int] = None,
        mode: str = "quick",
    ) -> MonitorRule:
        """Register a rule; exactly one of ``above``/``below`` required."""
        if (above is None) == (below is None):
            raise ValueError("pass exactly one of above/below")
        if name in self._rules:
            raise ValueError(f"duplicate monitor name {name!r}")
        rule = MonitorRule(
            name=name,
            phi=phi,
            threshold=above if above is not None else below,
            direction="above" if above is not None else "below",
            mode=mode,
        )
        self._rules[name] = rule
        return rule

    def remove(self, name: str) -> None:
        """Unregister a rule by name."""
        if name not in self._rules:
            raise KeyError(name)
        del self._rules[name]

    @property
    def rules(self) -> List[MonitorRule]:
        """The currently registered rules."""
        return list(self._rules.values())

    def evaluate(self) -> List[QuantileAlert]:
        """Check every rule against one consistent snapshot."""
        if not self._rules or self._engine.n_total == 0:
            return []
        view = EngineSnapshot(self._engine)
        alerts = []
        for rule in self._rules.values():
            result = view.quantile(rule.phi, mode=rule.mode)
            if rule.triggered_by(result.value):
                alerts.append(
                    QuantileAlert(
                        rule=rule,
                        observed=result.value,
                        total_size=result.total_size,
                        at_step=view.created_at_step,
                    )
                )
        return alerts
