"""Quantile monitors: the real-time alerting use case.

The paper's introduction motivates quantiles with latency monitoring —
"the 0.95-quantile and 0.99-quantile are used to get a detailed
insight on the performance that most users experience" — inside DSMSes
that "provide support for real-time alerting".  A
:class:`QuantileWatcher` holds standing threshold rules and evaluates
them all against one consistent snapshot per call, so a burst of
alerts always describes a single instant of the data.

Quick-mode evaluation costs no disk access at all, making per-arrival
or per-step evaluation essentially free; accurate mode spends a few
block reads for tight values.

Besides value thresholds, a watcher can hold *health* rules
(:meth:`QuantileWatcher.watch_health`) over the engine's reliability
counters — disk faults, fault retries, degraded queries — so an
operator learns when the fault-tolerance machinery is absorbing
trouble (retries climbing) or giving ground (accurate queries
degrading to quick answers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..faults.health import ReliabilityReport
from .engine import HybridQuantileEngine
from .snapshot import EngineSnapshot


@dataclass(frozen=True)
class MonitorRule:
    """One standing threshold on a quantile."""

    name: str
    phi: float
    threshold: int
    direction: str  # "above" or "below"
    mode: str = "quick"

    def __post_init__(self) -> None:
        if not 0 < self.phi <= 1:
            raise ValueError("phi must be in (0, 1]")
        if self.direction not in ("above", "below"):
            raise ValueError("direction must be 'above' or 'below'")
        if self.mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")

    def triggered_by(self, value: int) -> bool:
        """Whether an observed value fires this rule."""
        if self.direction == "above":
            return value > self.threshold
        return value < self.threshold


@dataclass(frozen=True)
class QuantileAlert:
    """One firing of a monitor rule.

    ``degraded`` marks an observation answered by the quick-response
    fallback after probe retries were exhausted — the alert is genuine
    but its value carries the wider quick error bound.
    """

    rule: MonitorRule
    observed: int
    total_size: int
    at_step: int
    degraded: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.rule.name}] phi={self.rule.phi} observed "
            f"{self.observed} {self.rule.direction} threshold "
            f"{self.rule.threshold} (N={self.total_size}, "
            f"step {self.at_step}"
            + (", degraded" if self.degraded else "")
            + ")"
        )


@dataclass(frozen=True)
class HealthRule:
    """Standing thresholds on the engine's reliability counters.

    Each ``max_*`` bound is inclusive: the rule fires once the
    corresponding lifetime counter *exceeds* it.  At least one bound
    must be set.
    """

    name: str
    max_disk_faults: Optional[int] = None
    max_retries: Optional[int] = None
    max_degraded_queries: Optional[int] = None

    def __post_init__(self) -> None:
        bounds = (
            self.max_disk_faults,
            self.max_retries,
            self.max_degraded_queries,
        )
        if all(bound is None for bound in bounds):
            raise ValueError("set at least one max_* bound")
        for bound in bounds:
            if bound is not None and bound < 0:
                raise ValueError("bounds must be >= 0")

    def breaches(self, report: ReliabilityReport) -> "Tuple[str, ...]":
        """Names of the counters exceeding their bound, if any."""
        breached = []
        if (self.max_disk_faults is not None
                and report.disk_faults > self.max_disk_faults):
            breached.append("disk_faults")
        if (self.max_retries is not None
                and report.total_retries > self.max_retries):
            breached.append("retries")
        if (self.max_degraded_queries is not None
                and report.degraded_queries > self.max_degraded_queries):
            breached.append("degraded_queries")
        return tuple(breached)


@dataclass(frozen=True)
class ReliabilityAlert:
    """One firing of a health rule."""

    rule: HealthRule
    report: ReliabilityReport
    at_step: int
    breaches: "Tuple[str, ...]"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.rule.name}] reliability breach "
            f"({', '.join(self.breaches)}): {self.report} "
            f"(step {self.at_step})"
        )


@dataclass(frozen=True)
class ServiceRule:
    """Standing thresholds on a query service's health numbers.

    Evaluated against any object shaped like
    :class:`~repro.serving.metrics.MetricsSnapshot` (duck-typed:
    ``queue_depth``, ``rejections``, ``p99(mode)``), so the monitoring
    layer needs no dependency on :mod:`repro.serving`.  At least one
    bound must be set; every bound is inclusive (the rule fires on
    *exceeding* it).
    """

    name: str
    max_queue_depth: Optional[int] = None
    max_p99_seconds: Optional[float] = None
    max_rejections: Optional[int] = None
    mode: str = "quick"

    def __post_init__(self) -> None:
        bounds = (
            self.max_queue_depth,
            self.max_p99_seconds,
            self.max_rejections,
        )
        if all(bound is None for bound in bounds):
            raise ValueError("set at least one max_* bound")
        for bound in bounds:
            if bound is not None and bound < 0:
                raise ValueError("bounds must be >= 0")
        if self.mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")

    def breaches(self, snapshot: Any) -> "Tuple[str, ...]":
        """Names of the service numbers exceeding their bound."""
        breached = []
        if (self.max_queue_depth is not None
                and snapshot.queue_depth > self.max_queue_depth):
            breached.append("queue_depth")
        if (self.max_p99_seconds is not None
                and snapshot.p99(self.mode) > self.max_p99_seconds):
            breached.append("p99")
        if (self.max_rejections is not None
                and snapshot.rejections > self.max_rejections):
            breached.append("rejections")
        return tuple(breached)


@dataclass(frozen=True)
class ServiceAlert:
    """One firing of a service rule."""

    rule: ServiceRule
    queue_depth: int
    p99_seconds: float
    rejections: int
    breaches: "Tuple[str, ...]"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.rule.name}] service breach "
            f"({', '.join(self.breaches)}): depth={self.queue_depth}, "
            f"p99={self.p99_seconds * 1e3:.1f}ms, "
            f"rejections={self.rejections}"
        )


class QuantileWatcher:
    """Standing quantile-threshold rules over one engine."""

    def __init__(self, engine: HybridQuantileEngine) -> None:
        self._engine = engine
        self._rules: Dict[str, MonitorRule] = {}
        self._health_rules: Dict[str, HealthRule] = {}
        self._service_rules: Dict[
            str, "Tuple[ServiceRule, Callable[[], Any]]"
        ] = {}

    def add(
        self,
        name: str,
        phi: float,
        above: Optional[int] = None,
        below: Optional[int] = None,
        mode: str = "quick",
    ) -> MonitorRule:
        """Register a rule; exactly one of ``above``/``below`` required."""
        if (above is None) == (below is None):
            raise ValueError("pass exactly one of above/below")
        if name in self._rules:
            raise ValueError(f"duplicate monitor name {name!r}")
        rule = MonitorRule(
            name=name,
            phi=phi,
            threshold=above if above is not None else below,
            direction="above" if above is not None else "below",
            mode=mode,
        )
        self._rules[name] = rule
        return rule

    def remove(self, name: str) -> None:
        """Unregister a rule (quantile, health, or service) by name."""
        if name in self._rules:
            del self._rules[name]
        elif name in self._health_rules:
            del self._health_rules[name]
        elif name in self._service_rules:
            del self._service_rules[name]
        else:
            raise KeyError(name)

    @property
    def rules(self) -> List[MonitorRule]:
        """The currently registered quantile rules."""
        return list(self._rules.values())

    @property
    def health_rules(self) -> List[HealthRule]:
        """The currently registered health rules."""
        return list(self._health_rules.values())

    def watch_health(
        self,
        name: str,
        max_disk_faults: Optional[int] = None,
        max_retries: Optional[int] = None,
        max_degraded_queries: Optional[int] = None,
    ) -> HealthRule:
        """Register a standing rule over the reliability counters."""
        if (name in self._rules or name in self._health_rules
                or name in self._service_rules):
            raise ValueError(f"duplicate monitor name {name!r}")
        rule = HealthRule(
            name=name,
            max_disk_faults=max_disk_faults,
            max_retries=max_retries,
            max_degraded_queries=max_degraded_queries,
        )
        self._health_rules[name] = rule
        return rule

    @property
    def service_rules(self) -> List[ServiceRule]:
        """The currently registered service rules."""
        return [rule for rule, _ in self._service_rules.values()]

    def watch_service(
        self,
        name: str,
        snapshot_source: "Callable[[], Any]",
        max_queue_depth: Optional[int] = None,
        max_p99_seconds: Optional[float] = None,
        max_rejections: Optional[int] = None,
        mode: str = "quick",
    ) -> ServiceRule:
        """Register a standing rule over a query service's metrics.

        ``snapshot_source`` is any zero-argument callable returning an
        object shaped like :class:`~repro.serving.metrics.
        MetricsSnapshot` — typically ``service.metrics_snapshot``.
        """
        if (name in self._rules or name in self._health_rules
                or name in self._service_rules):
            raise ValueError(f"duplicate monitor name {name!r}")
        rule = ServiceRule(
            name=name,
            max_queue_depth=max_queue_depth,
            max_p99_seconds=max_p99_seconds,
            max_rejections=max_rejections,
            mode=mode,
        )
        self._service_rules[name] = (rule, snapshot_source)
        return rule

    def check_service(self) -> List[ServiceAlert]:
        """Evaluate every service rule against its source's snapshot."""
        alerts = []
        for rule, source in self._service_rules.values():
            snapshot = source()
            breached = rule.breaches(snapshot)
            if breached:
                alerts.append(
                    ServiceAlert(
                        rule=rule,
                        queue_depth=snapshot.queue_depth,
                        p99_seconds=snapshot.p99(rule.mode),
                        rejections=snapshot.rejections,
                        breaches=breached,
                    )
                )
        return alerts

    def check_health(self) -> List[ReliabilityAlert]:
        """Evaluate every health rule against the engine's lifetime
        reliability counters (one consistent report for all rules)."""
        if not self._health_rules:
            return []
        report = self._engine.reliability
        step = self._engine.steps_sealed
        alerts = []
        for rule in self._health_rules.values():
            breached = rule.breaches(report)
            if breached:
                alerts.append(
                    ReliabilityAlert(
                        rule=rule,
                        report=report,
                        at_step=step,
                        breaches=breached,
                    )
                )
        return alerts

    def evaluate(self) -> List[QuantileAlert]:
        """Check every rule against one consistent snapshot."""
        if not self._rules or self._engine.n_total == 0:
            return []
        view = EngineSnapshot(self._engine)
        alerts = []
        for rule in self._rules.values():
            result = view.quantile(rule.phi, mode=rule.mode)
            if rule.triggered_by(result.value):
                alerts.append(
                    QuantileAlert(
                        rule=rule,
                        observed=result.value,
                        total_size=result.total_size,
                        at_step=view.created_at_step,
                        degraded=result.degraded,
                    )
                )
        return alerts
