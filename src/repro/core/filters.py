"""The accurate response: filter generation and the recursive search.

Algorithm 6/7/8 of the paper: bracket the target rank between two
filter values from TS, then bisect the *value* interval.  Each probe
ranks the midpoint ``z`` exactly across every partition (a
block-counted binary search narrowed by the in-memory summaries) and
approximately against the stream, converging on the smallest value
whose estimated rank reaches the target.  The returned value is
snapped down to an actual element of T; its rank error is bounded by
the stream estimate's error alone (Lemma 5's ``O(eps * m)``).

Algorithm 8's pseudocode stops as soon as the estimate is within
``epsilon * m`` of the target, but the paper's Section 2.4 optimization
keeps refining once the per-partition searches are confined to single
(cached) disk blocks — and the paper's measured errors sit far below
``epsilon * m``, confirming the implementation searched to the
crossing point.  We do the same: bisection continues to adjacency,
with the per-query :class:`~repro.storage.cache.BlockCache` making the
deep iterations free.

Per-partition probing is delegated to :mod:`repro.query`: a
:class:`~repro.query.planner.QueryPlanner` turns each probe into one
task per partition and a :class:`~repro.query.executor.QueryExecutor`
runs them — inline by default, or concurrently when the engine is
configured with ``query_workers > 1`` (the implemented form of
Section 4's parallel partition reads).  Answers and I/O accounting are
identical either way; only wall-clock changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..query.executor import SERIAL_EXECUTOR, QueryExecutor
from ..query.planner import QueryPlanner
from ..storage.cache import BlockCache
from ..warehouse.partition import Partition
from .bounds import CombinedSummary
from .config import EngineConfig
from .summaries import StreamSummary


@dataclass(frozen=True)
class SearchOutcome:
    """Result of one accurate-response search.

    Attributes
    ----------
    value:
        The element of T returned as the approximate quantile.
    estimated_rank:
        The engine's rank estimate for the returned element; its true
        rank differs by at most ``eps2 * m``.
    random_blocks:
        Random block reads charged by this query.
    max_partition_blocks:
        Deepest single-partition read chain — the query's critical
        path when the executor reads partitions in parallel
        (``query_workers > 1``); feeds ``parallel_sim_seconds``.
    iterations:
        Number of bisection steps performed.
    truncated:
        True when the probe budget ended the search early.
    """

    value: int
    estimated_rank: float
    random_blocks: int
    max_partition_blocks: int
    iterations: int
    truncated: bool


class AccurateSearch:
    """One execution of Algorithms 7 + 8 over a set of partitions."""

    def __init__(
        self,
        partitions: Sequence[Partition],
        stream_summary: StreamSummary,
        combined: CombinedSummary,
        config: EngineConfig,
        rank: int,
        stream_rank_fn: Optional[Callable[[int], float]] = None,
        cache: Optional[BlockCache] = None,
        executor: Optional[QueryExecutor] = None,
    ) -> None:
        self._partitions = [p for p in partitions if len(p) > 0]
        self._planner = QueryPlanner(self._partitions)
        self._executor = executor if executor is not None else SERIAL_EXECUTOR
        self._ss = stream_summary
        self._combined = combined
        self._config = config
        self._rank = rank
        if cache is not None:
            self._cache = cache
        elif self._partitions:
            disk = self._partitions[0].run.disk
            self._cache = BlockCache(disk, enabled=config.block_cache)
        else:
            self._cache = None
        self._blocks_at_start = self._blocks()
        self._stream_rank_fn = stream_rank_fn
        # Run ids already prefetched this query (at most once each; the
        # filters only narrow, so later ranges are subsets).
        self._prefetched: set = set()

    # -- rank estimation ------------------------------------------------

    def _historical_ranks(self, value: int) -> List[int]:
        """Exact rank of ``value`` in each partition (Alg. 8 lines 2-7).

        Each partition's binary search is narrowed to the inter-summary
        gap containing ``value`` (no I/O for the narrowing, since the
        summaries store exact ranks) and charged block reads through
        the per-query cache.  The planner emits one task per partition
        and the executor runs them — concurrently when the engine has
        ``query_workers > 1``, since the searches touch disjoint runs.
        """
        tasks = self._planner.rank_probes(int(value))
        return self._executor.run_tasks(tasks, self._cache)

    def _estimate(self, value: int) -> Tuple[float, List[int]]:
        """Estimated rank of ``value`` in T plus per-partition ranks.

        Historical ranks are exact; the stream contributes either the
        live sketch's rank bracket (when the caller supplied one —
        in-memory, like SS, but free of SS's quantization) or the
        Algorithm 8 summary estimate.
        """
        hist_ranks = self._historical_ranks(value)
        if self._stream_rank_fn is not None:
            stream = self._stream_rank_fn(value)
        else:
            stream = self._ss.rank_estimate(value)
        return float(sum(hist_ranks)) + stream, hist_ranks

    # -- prefetching ----------------------------------------------------

    def _maybe_prefetch(self, u: int, v: int) -> None:
        """Batched read-ahead once filters confine a partition's range.

        When ``(u, v)`` narrows a partition's candidate element range
        to at most ``config.prefetch_blocks`` blocks, the whole range
        is read in one charged ranged read ahead of the binary-search
        probes — fanned out through the executor like any other probe,
        so with ``query_workers > 1`` distinct partitions' ranged GETs
        are issued concurrently.  On the object backend each such read
        is one byte-range GET widened by the ``readahead_blocks``
        policy (extra blocks are streamed while their marginal cost
        stays under another request's setup cost — charge-neutral).
        Only active when the per-query cache reads through a shared
        tier: with the tier off, the legacy per-probe accounting must
        reproduce bit for bit.  Answers are unaffected either way (the
        probes still run; their touches just hit the cache).
        """
        if (
            self._cache is None
            or self._cache.shared is None
            or self._config.prefetch_blocks < 1
        ):
            return
        tasks = self._planner.prefetch_reads(
            u, v, self._config.prefetch_blocks, skip=self._prefetched
        )
        if not tasks:
            return
        for task in tasks:
            self._prefetched.add(task.partition.run.run_id)
        self._executor.run_tasks(tasks, self._cache)

    # -- snapping -------------------------------------------------------

    def _snap_down(self, value: int, hist_ranks: List[int]) -> int:
        """Largest actual element of T that is <= ``value``.

        Its rank in T equals ``rank(value, T)``, so snapping preserves
        the rank guarantee while returning a real element.  Candidates
        are the predecessor element in each partition (at most one
        extra cached block each) and the stream summary's predecessor.
        """
        candidates = []
        for partition, rank_p in zip(self._partitions, hist_ranks):
            if rank_p > 0:
                candidates.append(
                    partition.run.element_at(rank_p - 1, cache=self._cache)
                )
        stream_candidate = self._ss.largest_at_most(value)
        if stream_candidate is not None:
            candidates.append(stream_candidate)
        if not candidates:
            # value precedes every known element; the global minimum is
            # the only sane answer (rank target was below all bounds).
            return int(self._combined.values[0])
        return max(candidates)

    # -- the search -----------------------------------------------------

    def run(self) -> SearchOutcome:
        """Execute the configured search strategy."""
        if self._config.query_strategy == "fetch":
            return self._run_fetch()
        return self._run_bisect()

    def _run_bisect(self) -> SearchOutcome:
        """Bisect to the rank-crossing point, then snap (default).

        Converges on the smallest value whose estimated rank reaches
        the target, then snaps down to the nearest real element.
        """
        u, v = self._combined.generate_filters(self._rank)
        iterations = 0
        truncated = False
        budget = self._config.probe_budget
        while v > u + 1:
            if (budget is not None
                    and self._blocks() - self._blocks_at_start >= budget):
                truncated = True
                break
            self._maybe_prefetch(u, v)
            z = (u + v) // 2
            iterations += 1
            rho, _ = self._estimate(z)
            if rho >= self._rank:
                v = z
            else:
                u = z
        rho, hist_ranks = self._estimate(v)
        value = self._snap_down(v, hist_ranks)
        return SearchOutcome(
            value=int(value),
            estimated_rank=float(rho),
            random_blocks=self._blocks() - self._blocks_at_start,
            max_partition_blocks=(
                self._cache.max_blocks_per_run() if self._cache else 0
            ),
            iterations=iterations,
            truncated=truncated,
        )

    def _run_fetch(self) -> SearchOutcome:
        """Lemma 5's literal endgame: fetch the residual range.

        Narrow the filters with slack-guarded moves (preserving
        ``rank(u) <= r <= rank(v)``) until few historical elements
        remain between them, read that residual range from every
        partition (block-counted), and select the element whose exact
        historical rank plus stream estimate is closest to the target
        from below.
        """
        u, v = self._combined.generate_filters(self._rank)
        m = self._ss.stream_size
        slack = max(self._config.query_epsilon, self._config.epsilon2) * m
        threshold = self._config.residual_threshold
        budget = self._config.probe_budget
        iterations = 0
        truncated = False
        while v > u + 1:
            if budget is not None and (
                self._blocks() - self._blocks_at_start >= budget
            ):
                truncated = True
                break
            self._maybe_prefetch(u, v)
            lo_ranks = self._historical_ranks(u)
            hi_ranks = self._historical_ranks(v)
            if sum(hi_ranks) - sum(lo_ranks) <= threshold:
                break
            z = (u + v) // 2
            iterations += 1
            rho, _ = self._estimate(z)
            if self._rank < rho - slack:
                v = z
            elif self._rank > rho + slack:
                u = z
            else:
                # Estimate already within slack: land the bracket on z.
                u, v = max(u, z - 1), z
        return self._select_from_residual(u, v, iterations, truncated)

    def _select_from_residual(
        self, u: int, v: int, iterations: int, truncated: bool
    ) -> SearchOutcome:
        """Read (u, v] from every partition and pick the best element.

        The residual reads fan out through the same planner/executor
        pair as the rank probes: one :class:`RangeReadTask` per
        partition, each independent of the others.
        """
        candidates: List[int] = []
        tasks = self._planner.residual_reads(u, v)
        for chunk in self._executor.run_tasks(tasks, self._cache):
            candidates.extend(int(x) for x in chunk)
        stream_candidate = self._ss.largest_at_most(v)
        if stream_candidate is not None and stream_candidate > u:
            candidates.append(int(stream_candidate))
        if not candidates:
            # Nothing lies strictly inside the bracket: v is the answer.
            rho, hist_ranks = self._estimate(v)
            value = self._snap_down(v, hist_ranks)
            return SearchOutcome(
                value=int(value),
                estimated_rank=float(rho),
                random_blocks=self._blocks() - self._blocks_at_start,
                max_partition_blocks=(
                    self._cache.max_blocks_per_run() if self._cache else 0
                ),
                iterations=iterations,
                truncated=truncated,
            )
        candidates.sort()
        best_value = candidates[-1]
        best_rho = None
        for value in candidates:
            rho, _ = self._estimate(value)
            if rho >= self._rank:
                best_value = value
                best_rho = rho
                break
        if best_rho is None:
            best_rho, _ = self._estimate(best_value)
        return SearchOutcome(
            value=int(best_value),
            estimated_rank=float(best_rho),
            random_blocks=self._blocks() - self._blocks_at_start,
            max_partition_blocks=(
                self._cache.max_blocks_per_run() if self._cache else 0
            ),
            iterations=iterations,
            truncated=truncated,
        )

    def _blocks(self) -> int:
        return self._cache.blocks_charged if self._cache else 0
