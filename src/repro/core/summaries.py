"""In-memory summaries: HS (per partition) and SS (stream).

HS (Algorithm 2): when a partition is created the engine samples
``beta_1`` elements at evenly spaced ranks — the smallest element plus
the element at rank ``ceil(i * eps_1 * eta)`` for each i.  Every entry
stores its exact rank inside the partition, so query-time filter
narrowing (Algorithm 8 line 5) costs no disk access.

SS (Algorithm 4): at query time the engine extracts ``beta_2`` elements
from the GK sketch — the exact stream minimum plus, for each i, an
element whose rank is guaranteed (Lemma 1) to lie in
``[i * eps_2 * m, (i + 1) * eps_2 * m]``.  The one-sided guarantee is
obtained by running GK at ``eps_2 / 2`` and querying at an offset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..sketches.gk import GKSketch
from ..warehouse.partition import Partition


@dataclass(frozen=True)
class PartitionSummary:
    """Summary of one sorted partition (one HS entry).

    Attributes
    ----------
    values:
        Sorted sample values, ascending.
    positions:
        1-indexed rank of each sample inside its partition: the element
        at ``positions[i]`` (1-based) of the sorted partition equals
        ``values[i]``.
    partition_size:
        Number of elements in the summarized partition (``m_P``).
    eps1:
        Spacing parameter: consecutive samples are at most
        ``eps1 * partition_size + 1`` ranks apart.
    """

    values: np.ndarray
    positions: np.ndarray
    partition_size: int
    eps1: float

    @classmethod
    def build(cls, partition: Partition, eps1: float) -> "PartitionSummary":
        """Sample a freshly written partition (Algorithm 2).

        Runs at partition-creation time while the data is in flight, so
        it charges no additional disk access (the run's ``values`` view
        is free by design).
        """
        data = partition.run.values
        size = len(data)
        if size == 0:
            empty = np.empty(0, dtype=np.int64)
            return cls(values=empty, positions=empty.copy(),
                       partition_size=0, eps1=eps1)
        beta1 = math.ceil(1.0 / eps1) + 1
        # Vectorized rank schedule: identical arithmetic to the scalar
        # loop min(size, ceil(i * eps1 * size)) — the float product is
        # evaluated in the same order, so the sampled ranks are
        # bit-identical to element-at-a-time construction.
        idx = np.arange(1, beta1, dtype=np.int64)
        ranks = np.minimum(
            size, np.ceil(idx * eps1 * size)
        ).astype(np.int64)
        positions = np.unique(
            np.concatenate([np.asarray([1], dtype=np.int64), ranks])
        )
        values = data[positions - 1].astype(np.int64)
        return cls(values=values, positions=positions,
                   partition_size=size, eps1=eps1)

    def __len__(self) -> int:
        return len(self.values)

    def alpha(self, value: int) -> int:
        """Number of summary elements <= ``value`` (the paper's alpha_P)."""
        return int(np.searchsorted(self.values, value, side="right"))

    def search_bounds(self, value: int) -> "tuple[int, int]":
        """Index bounds (lo, hi) for locating ``value``'s rank on disk.

        Returns 0-indexed bounds such that the first partition index
        whose element exceeds ``value`` lies in ``[lo, hi]``.  Because
        each summary entry's exact rank is stored, this costs no I/O.
        """
        j = self.alpha(value)
        lo = int(self.positions[j - 1]) if j > 0 else 0
        hi = int(self.positions[j]) - 1 if j < len(self.positions) else self.partition_size
        return lo, max(lo, hi)

    def rank_lower_bound(self, alpha: int) -> float:
        """Lower bound on rank-in-partition given ``alpha`` (Lemma 2)."""
        if alpha <= 0:
            return 0.0
        return (alpha - 1) * self.eps1 * self.partition_size

    def rank_upper_bound(self, alpha: int) -> float:
        """Upper bound on rank-in-partition given ``alpha`` (Lemma 2).

        Deliberately unclamped (it may exceed the partition size),
        matching the paper's own computation in Figure 3.
        """
        if alpha <= 0:
            return 0.0
        return alpha * self.eps1 * self.partition_size

    def memory_words(self) -> int:
        """Two words per entry: value and rank."""
        return 2 * len(self.values) + 2


@dataclass(frozen=True)
class StreamSummary:
    """The extracted stream summary SS (Algorithm 4).

    ``values[i]`` has true rank in ``[i * eps2 * m, (i + 1) * eps2 * m]``
    for ``i >= 1`` (Lemma 1); ``values[0]`` is the exact minimum.

    When extracted from a live GK sketch, ``strict_uppers[i]`` records
    a *provable* upper bound on the number of stream elements strictly
    below ``values[i]`` (the sketch's own rank bracket).  The bounds
    computation prefers these over the asymptotic Lemma 1 formula,
    which can be off by rounding constants on tiny or duplicate-heavy
    streams.  Summaries built directly from values (e.g. the Figure 3
    golden example) have no brackets and fall back to the paper's
    formula.
    """

    values: np.ndarray
    stream_size: int
    eps2: float
    strict_uppers: "np.ndarray | None" = None

    @classmethod
    def extract(cls, sketch: GKSketch, eps2: float) -> "StreamSummary":
        """Build SS from the running GK sketch.

        The sketch must have been created with error ``eps2 / 2``; the
        query offset of ``eps_gk * m`` turns GK's two-sided guarantee
        into Lemma 1's one-sided bracket.
        """
        m = sketch.n
        if m == 0:
            return cls(values=np.empty(0, dtype=np.int64),
                       stream_size=0, eps2=eps2)
        beta2 = math.ceil(1.0 / eps2) + 1
        slack = math.ceil(sketch.epsilon * m)
        # Vectorized extraction: the target schedule
        # min(m, ceil(i * eps2 * m) + slack) is computed with the same
        # float-product order as the scalar loop, and query_ranks
        # answers each target exactly as query_rank would — so the
        # extracted summary is bit-identical to per-rank extraction.
        idx = np.arange(1, beta2, dtype=np.int64)
        targets = np.minimum(
            m, np.ceil(idx * eps2 * m).astype(np.int64) + slack
        )
        entries = sketch.query_ranks(targets)
        values = np.concatenate(
            [np.asarray([sketch.min_value()], dtype=np.int64), entries]
        )
        # GK responses are monotone in the queried rank, but guard the
        # invariant the bounds computation relies on.
        values = np.maximum.accumulate(values)
        # Nothing precedes the exact minimum; at most target + eps_gk*m
        # elements precede each queried response.
        uppers = np.concatenate(
            [
                np.asarray([0], dtype=np.int64),
                np.minimum(m, targets + slack),
            ]
        )
        return cls(
            values=values,
            stream_size=m,
            eps2=eps2,
            strict_uppers=uppers,
        )

    def __len__(self) -> int:
        return len(self.values)

    @property
    def is_empty(self) -> bool:
        """Whether the summarized stream had no elements."""
        return self.stream_size == 0

    def alpha(self, value: int) -> int:
        """Number of summary elements <= ``value`` (the paper's alpha_S)."""
        return int(np.searchsorted(self.values, value, side="right"))

    def rank_estimate(self, value: int) -> float:
        """Approximate rank of ``value`` in the stream (Alg. 8, lines 8-10)."""
        return self.alpha(value) * self.eps2 * self.stream_size

    def rank_lower_bound(self, alpha: int) -> float:
        """Lower bound on rank given ``alpha`` (Lemma 2)."""
        if alpha <= 0:
            return 0.0
        return (alpha - 1) * self.eps2 * self.stream_size

    def rank_upper_bound(self, alpha: int, from_stream: bool) -> float:
        """Upper bound on stream rank (Lemma 2 argument).

        For an element that *is* a summary entry, Lemma 1 bounds its own
        rank by ``alpha * eps2 * m``; for other elements only the next
        entry bounds it, giving ``(alpha + 1) * eps2 * m``.
        """
        if self.is_empty or alpha <= 0:
            # Below the exact minimum: no stream element can be smaller.
            return 0.0
        coefficient = alpha if from_stream else alpha + 1
        # Unclamped, matching the paper's Figure 3 computation.
        return coefficient * self.eps2 * self.stream_size

    def largest_at_most(self, value: int) -> "int | None":
        """Largest summary element <= value, or None."""
        j = self.alpha(value)
        if j == 0:
            return None
        return int(self.values[j - 1])

    def memory_words(self) -> int:
        """Current memory footprint in 8-byte words."""
        return len(self.values) + 2
