"""The hybrid quantile engine: the paper's primary contribution.

:class:`HybridQuantileEngine` wires together every piece:

* a :class:`~repro.warehouse.leveled_store.LeveledStore` (HD) on a
  :class:`~repro.storage.disk.SimulatedDisk`, with per-partition
  :class:`~repro.core.summaries.PartitionSummary` objects (HS) attached
  at partition-creation time;
* a :class:`~repro.sketches.gk.GKSketch` over the live stream, from
  which :class:`~repro.core.summaries.StreamSummary` (SS) is extracted
  at query time;
* the quick response (Algorithm 5) and the accurate response
  (Algorithms 6-8) over their combination;
* a :class:`~repro.query.executor.QueryExecutor` that runs the
  accurate response's per-partition probes — serially by default, or
  overlapped on ``config.query_workers`` threads (Section 4's parallel
  partition reads, implemented);
* an ingest pipeline (:mod:`repro.ingest`) that, with
  ``config.ingest_mode = "background"``, seals each time step's batch
  and archives it (sort + level merges + summary construction) on a
  background thread, so ``stream_update*`` and queries continue while
  the warehouse churns — the paper's Algorithm 3 setting of a
  warehouse continuously loading batches while serving queries.

Typical use::

    engine = HybridQuantileEngine(epsilon=1e-3, kappa=10)
    for batch in workload:
        engine.stream_update_many(batch)    # vectorized live stream
        ... engine.quantile(0.5) ...        # query any time
        engine.end_time_step()              # archive the batch
    engine.flush()                          # drain background archiving

The write path is *lazily absorbed*: ``stream_update`` and
``stream_update_many`` only append to the growable array buffer and
fold the batch into the running aggregates; the GK sketch swallows the
not-yet-absorbed buffer tail in one sort-once/merge-once pass
(:meth:`~repro.sketches.gk.GKSketch.update_many`) the first time a
reader needs it — a pin, a stream-summary extraction, a checkpoint.
Feeding the same elements one at a time or in arrays of any batch size
therefore produces *bit-identical* sketch state and answers for the
same query schedule, while batched feeding is orders of magnitude
faster (``benchmarks/test_update_timing.py`` guards the >= 10x win).

Every update and query reports its disk-access counts and timings, so
the benchmark harness reads the same metrics the paper plots.
"""

from __future__ import annotations

import logging
import math
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from ..faults.errors import DiskFault
from ..faults.health import ReliabilityReport
from ..ingest import AppendBuffer, BackgroundArchiver, IngestStats, PendingBatch
from ..ingest.archiver import ArchiveRecord
from ..query.executor import QueryExecutor
from ..sketches.base import QuantileSketch, rank_for_phi
from ..sketches.gk import GKSketch
from ..sketches.kll import KLLSketch
from ..storage.backends import SimulatedBackend
from ..storage.cache import BlockCache
from ..storage.disk import SimulatedDisk
from ..storage.shared_cache import SharedBlockCache
from ..warehouse.compaction import LeveledCompactionStore
from ..warehouse.leveled_store import LeveledStore, window_sizes_from
from ..warehouse.partition import Partition
from .bounds import CombinedSummary, PartialResult
from .config import EngineConfig
from .epoch import EpochRegistry, EpochStats, SnapshotHandle
from .filters import AccurateSearch
from .summaries import PartitionSummary, StreamSummary
from .aggregates import AggregateStats, combine, partition_stats
from .windows import resolve_range_in, resolve_window_in

_logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class StepReport:
    """What loading one time step into the warehouse cost.

    ``io_*`` fields are block counts; ``cpu_seconds`` is measured wall
    time by phase; ``sim_seconds`` applies the disk latency model to
    the I/O performed this step.

    In background ingest mode ``end_time_step`` returns a provisional
    report (``archived=False``, zero I/O) because the archive work has
    only been enqueued; :meth:`HybridQuantileEngine.flush` later yields
    the authoritative per-step reports with ``archived=True``.
    """

    step: int
    batch_elems: int
    io_total: int
    io_load: int
    io_sort: int
    io_merge: int
    cpu_seconds: "dict[str, float]"
    sim_seconds: float
    merged_levels: bool
    #: wall seconds the *stream* was blocked for this step — the full
    #: archive latency in sync mode, only seal + backpressure wait in
    #: background mode.
    stall_seconds: float = 0.0
    #: pending batches queued behind the archiver when this step was
    #: submitted (0 in sync mode).
    queue_depth: int = 0
    #: wall seconds the archive work itself took (== stall_seconds in
    #: sync mode; measured on the archiver thread in background mode).
    archive_wall_seconds: float = 0.0
    #: False for the provisional report background ``end_time_step``
    #: returns before the batch has actually been archived.
    archived: bool = True


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one quantile query."""

    value: int
    target_rank: int
    total_size: int
    mode: str
    estimated_rank: float
    disk_accesses: int
    iterations: int
    truncated: bool
    wall_seconds: float
    sim_seconds: float
    window_steps: Optional[int] = None
    #: simulated disk seconds with partitions read concurrently — the
    #: critical-path cost the executor realizes when ``query_workers``
    #: exceeds 1; <= sim_seconds.
    parallel_sim_seconds: float = 0.0
    #: worker threads the accurate search probed partitions with
    #: (1 = serial); ``wall_seconds`` is measured under this setting.
    query_workers: int = 1
    #: True when an accurate query exhausted its probe retries against
    #: a faulty disk and fell back to the quick (in-memory) response;
    #: ``rank_error_bound`` then carries the widened quick-path bound.
    degraded: bool = False
    #: a priori bound on ``|true_rank(value) - target_rank|`` for this
    #: response: ``~eps * m`` for an accurate answer, the much wider
    #: ``eps1 * n + eps2 * m`` for quick and degraded answers.
    rank_error_bound: float = 0.0
    #: set when a cluster gather answered from a strict subset of
    #: shards; carries the missing-shard accounting behind the widened
    #: ``rank_error_bound`` (see :class:`~repro.core.bounds.PartialResult`).
    partial: Optional[PartialResult] = None

    @property
    def phi(self) -> float:
        """The quantile fraction this query targeted."""
        return self.target_rank / self.total_size if self.total_size else 0.0


@dataclass(frozen=True)
class MemoryReport:
    """Breakdown of the engine's main-memory footprint in words."""

    stream_sketch_words: int
    stream_summary_words: int
    historical_summary_words: int

    @property
    def stream_words(self) -> int:
        """Words held by the stream-side structures."""
        return self.stream_sketch_words + self.stream_summary_words

    @property
    def total_words(self) -> int:
        """Total words across all in-memory structures."""
        return self.stream_words + self.historical_summary_words

    @property
    def total_megabytes(self) -> float:
        """Total footprint in megabytes."""
        return self.total_words * 8 / (1024 * 1024)


class HybridQuantileEngine:
    """Quantile queries over the union of historical and streaming data.

    Parameters
    ----------
    epsilon:
        Error parameter: accurate queries have rank error ``O(eps*m)``
        where m is the live stream size.  Ignored when ``config`` is
        given.
    kappa:
        Merge threshold of the historical store.
    block_elems:
        Simulated disk block size in elements.
    config:
        Full configuration; overrides the individual arguments.
    disk:
        Supply a shared simulated disk (e.g. for baselines measured on
        the same device); a fresh one is created by default.
    """

    def __init__(
        self,
        epsilon: Optional[float] = None,
        kappa: int = 10,
        block_elems: int = 1024,
        config: Optional[EngineConfig] = None,
        disk: Optional[SimulatedDisk] = None,
    ) -> None:
        if config is None:
            if epsilon is None:
                raise ValueError("pass epsilon or a full EngineConfig")
            config = EngineConfig(
                epsilon=epsilon, kappa=kappa, block_elems=block_elems
            )
        self.config = config
        self.disk = disk if disk is not None else SimulatedDisk(
            block_elems=config.block_elems
        )
        # Install the configured storage backend before any run is
        # allocated.  A caller-supplied disk keeps a backend it already
        # carries (e.g. a test exercising a pre-built device); the
        # engine owns — and closes — only backends it created itself.
        self._owns_backend = False
        if (
            config.storage_backend != "simulated"
            and isinstance(self.disk.backend, SimulatedBackend)
        ):
            self.disk.backend = config.build_storage_backend()
            self._owns_backend = True
        store_cls = (
            LeveledCompactionStore
            if config.compaction == "leveled"
            else LeveledStore
        )
        self.store = store_cls(
            self.disk,
            kappa=config.kappa,
            summary_builder=self._build_partition_summary,
        )
        # Process-wide shared block cache (the cross-query tier).  0
        # blocks means no tier: every query pays the paper's per-query
        # accounting exactly — the historical code path, bit for bit.
        self.shared_cache: Optional[SharedBlockCache] = (
            SharedBlockCache(
                config.shared_cache_blocks,
                single_flight=config.fetch_coalescing,
            )
            if config.shared_cache_blocks > 0
            else None
        )
        # Compaction merges retire runs inside the store's layout-lock
        # critical sections; invalidate their cached blocks in the same
        # sections so residency never outlives a run.
        self.store.on_retire = self._on_runs_retired
        self._step = 0
        self._gk = self._fresh_stream_sketch()
        self._buffer = AppendBuffer()
        self._m = 0
        self._stream_stats = AggregateStats.empty()
        # Lazy absorption: stream updates only touch the buffer and the
        # aggregates under _stream_lock; _gk_absorbed counts how many
        # buffered elements the GK sketch has swallowed.  Readers call
        # _absorb_stream_tail() to bulk-insert the remainder before
        # looking at the sketch.  Lock order (never reversed):
        # _seal_lock -> _stream_lock -> the sketch's mutate lock.
        self._stream_lock = threading.Lock()
        self._gk_absorbed = 0
        self._query_executor = QueryExecutor(
            workers=config.query_workers, retry=config.probe_retry_policy
        )
        self._degraded_queries = 0
        self._reliability_lock = threading.Lock()
        # Epoch layer: every structural transition (seal, adoption)
        # bumps the epoch, and pinned SnapshotHandles are refcounted
        # per epoch — the serving layer's consistency unit.
        self._epochs = EpochRegistry()
        # Serializes end_time_step's seal (take buffer + reset sketch +
        # enqueue pending) against pin(): a reader never observes the
        # instant where a sealed batch is in neither the stream nor the
        # pending set.
        self._seal_lock = threading.RLock()
        # Created lazily on the first background end_time_step, so it
        # always binds the *final* store (load_engine swaps the store
        # attribute after construction).
        self._archiver: Optional[BackgroundArchiver] = None
        # Optional durability: when attached, every acked batch and
        # seal is appended (and fsynced) to the log before it is
        # applied, so a crash replays to the exact acked state.
        self._wal = None

    # ------------------------------------------------------------------
    # Stream ingestion (Algorithm 4) and warehouse loading (Algorithm 3)
    # ------------------------------------------------------------------

    def _fresh_stream_sketch(self) -> QuantileSketch:
        # The sketch runs at eps2/2 so the extracted summary meets
        # Lemma 1's one-sided guarantee (see StreamSummary.extract);
        # for KLL the guarantee holds w.h.p. rather than surely.  The
        # KLL seed is the current step count, so a replay of the same
        # per-step feed reproduces the sketch bit-for-bit.
        if self.config.sketch_backend == "kll":
            return KLLSketch(self.config.epsilon2 / 2.0, seed=self._step)
        return GKSketch(self.config.epsilon2 / 2.0)

    def _on_runs_retired(self, run_ids: "Sequence[int]") -> None:
        """Invalidate retired runs' blocks (store ``on_retire`` hook).

        Runs inside the layout-lock critical section that removed the
        runs from the layout — the same section adoption's epoch bump
        uses — so a pinned handle either sees the pre-merge layout with
        residency intact or the post-merge layout with it gone, never a
        stale mix.
        """
        if self.shared_cache is not None:
            self.shared_cache.invalidate_runs(run_ids)
        # Release the retired runs' backend storage.  Handles held by
        # pinned snapshots stay readable: backends materialize a run's
        # bytes into memory before unlinking its file.
        backend = self.disk.backend
        for run_id in run_ids:
            backend.delete_run(run_id)

    def _new_block_cache(self) -> BlockCache:
        """A per-query cache reading through the shared tier (if any)."""
        return BlockCache(
            self.disk,
            enabled=self.config.block_cache,
            shared=self.shared_cache,
        )

    def _build_partition_summary(self, partition: Partition) -> PartitionSummary:
        # Aggregates ride along with the summary: both are computed
        # while the partition is written, at no extra disk access.
        partition.stats = partition_stats(partition)
        return PartitionSummary.build(partition, self.config.epsilon1)

    def stream_update(self, value: int) -> None:
        """Process one live stream element (amortized O(1) buffering).

        Appends to the array buffer and folds the value into the
        running aggregates; the GK sketch absorbs it lazily at the next
        read point (see :meth:`stream_update_many`).  Thread-safe
        against concurrent readers and the sealing path.
        """
        value = int(value)
        if self._wal is not None:
            self._wal.append_batch(np.asarray([value], dtype=np.int64))
        with self._stream_lock:
            self._buffer.append(value)
            self._stream_stats = self._stream_stats.with_value(value)
            self._m += 1

    def stream_update_many(self, values: np.ndarray) -> int:
        """Process a numpy batch of live stream elements at once.

        The vectorized write path: one buffer extend (a single array
        copy) plus one vectorized aggregate merge per call, regardless
        of batch size.  The GK sketch is *not* touched here — the
        not-yet-absorbed buffer tail is bulk-inserted, sort once and
        merge once, the next time a reader needs the sketch (a pin, a
        stream summary, a checkpoint).  Because scalar updates follow
        the same lazy protocol, feeding identical elements through
        ``stream_update``, ``stream_update_batch`` or this method
        yields bit-identical answers for the same query schedule.

        Parameters
        ----------
        values:
            Array of int64-coercible elements; flattened if not 1-D.

        Returns
        -------
        int
            Number of elements ingested.

        Thread-safe against concurrent readers and the sealing path.
        """
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            arr = arr.ravel()
        if arr.size == 0:
            return 0
        if self._wal is not None:
            self._wal.append_batch(arr)
        stats = AggregateStats.of_array(arr)
        with self._stream_lock:
            self._buffer.extend(arr)
            self._stream_stats = self._stream_stats.merge(stats)
            self._m += int(arr.size)
        return int(arr.size)

    def stream_update_batch(self, values: Iterable[int]) -> None:
        """Process many live stream elements from any iterable.

        Arrays pass straight through to :meth:`stream_update_many`;
        other iterables are materialized once into an int64 array via
        ``np.fromiter`` (no per-element Python objects) and follow the
        same single-hand-off path.
        """
        if isinstance(values, np.ndarray):
            self.stream_update_many(values)
        else:
            self.stream_update_many(np.fromiter(values, dtype=np.int64))

    def attach_wal(self, wal) -> None:
        """Attach a :class:`~repro.ingest.wal.WriteAheadLog`.

        Every subsequent ``stream_update`` / ``stream_update_many``
        batch and every ``end_time_step`` seal is appended (and made
        durable) *before* it is applied, so returning from those calls
        constitutes a durable ack.  :meth:`close` closes the log;
        callers that share a writer across engine incarnations (the
        cluster supervisor) should :meth:`detach_wal` first.
        """
        if self._wal is not None:
            raise ValueError("engine already has a write-ahead log")
        self._wal = wal

    def detach_wal(self):
        """Detach and return the write-ahead log (ownership transfers)."""
        wal, self._wal = self._wal, None
        return wal

    def _absorb_stream_tail(self) -> None:
        """Bulk-insert the not-yet-absorbed buffer tail into the sketch.

        Called at every sketch read point.  Runs under the stream lock,
        so the absorbed prefix length and the sketch state advance
        atomically with respect to concurrent updates and seals; the
        ``slice_from`` view is safe because appends (which may
        reallocate the backing array) hold the same lock.
        """
        with self._stream_lock:
            if self._gk_absorbed < len(self._buffer):
                self._gk.update_many(
                    self._buffer.slice_from(self._gk_absorbed)
                )
                self._gk_absorbed = len(self._buffer)

    def stream_sketch(self) -> GKSketch:
        """The live GK sketch with every buffered element absorbed.

        The sanctioned way to read the engine's stream sketch (the
        checkpoint writer uses it): absorbing first keeps the sketch's
        ``n`` equal to :attr:`m_stream`.  The returned object is the
        live sketch, not a copy — take ``.snapshot()`` to query it
        while ingestion continues.
        """
        self._absorb_stream_tail()
        return self._gk

    def end_time_step(self) -> StepReport:
        """Archive the current stream batch into HD and reset SS.

        The batch is sorted, stored as a level-0 partition (triggering
        cascading merges when levels are full), its summary attached,
        and the stream sketch reset — Algorithm 3 plus StreamReset.

        With ``config.ingest_mode == "background"`` only the *seal* —
        take the buffer, reset the sketch, enqueue — happens here; the
        archive work runs on the background thread and the returned
        report is provisional (``archived=False``).  Call
        :meth:`flush` to drain and obtain the authoritative reports.

        The seal runs under the epoch layer's seal lock, atomically
        with respect to :meth:`pin`: a concurrent reader sees the
        sealed elements either still in the stream or already in the
        pending set, never in neither.  Any backpressure wait happens
        *before* the lock is taken, so pins are never blocked behind a
        full archiver queue.
        """
        started = time.perf_counter()
        if self._wal is not None:
            self._wal.append_seal(self._step + 1)
        if self.config.ingest_mode == "background":
            archiver = self._ensure_archiver()
            archiver.reserve()
            with self._seal_lock:
                self._step += 1
                with self._stream_lock:
                    batch = self._buffer.take()
                    batch_stats = self._stream_stats
                    self._m = 0
                    self._gk = self._fresh_stream_sketch()
                    self._gk_absorbed = 0
                    self._stream_stats = AggregateStats.empty()
                pending = PendingBatch(step=self._step, values=batch)
                pending.stats = batch_stats
                depth = archiver.enqueue_reserved(pending)
                self._epochs.bump("seal")
            return self._finish_background_step(
                pending, archiver, depth, started
            )
        with self._seal_lock:
            self._step += 1
            with self._stream_lock:
                batch = self._buffer.take()
                self._m = 0
                self._gk = self._fresh_stream_sketch()
                self._gk_absorbed = 0
                self._stream_stats = AggregateStats.empty()
            self._epochs.bump("seal")
            return self._end_time_step_sync(batch, started)

    def _end_time_step_sync(
        self, batch: np.ndarray, started: float
    ) -> StepReport:
        stats = self.disk.stats
        cpu_before = dict(self.store.cpu_seconds)
        with stats.capture() as tally:
            self.store.add_batch(batch, step=self._step)
        wall = time.perf_counter() - started
        cpu = {
            phase: self.store.cpu_seconds.get(phase, 0.0)
            - cpu_before.get(phase, 0.0)
            for phase in ("sort", "merge", "summary")
        }
        cpu["load"] = max(0.0, wall - sum(cpu.values()))
        return StepReport(
            step=self._step,
            batch_elems=int(batch.size),
            io_total=tally.total.total,
            io_load=tally.phase("load").total,
            io_sort=tally.phase("sort").total,
            io_merge=tally.phase("merge").total,
            cpu_seconds=cpu,
            sim_seconds=self.disk.latency.seconds(tally.total),
            merged_levels=tally.phase("merge").total > 0,
            stall_seconds=wall,
            queue_depth=0,
            archive_wall_seconds=wall,
        )

    def _finish_background_step(
        self,
        pending: PendingBatch,
        archiver: BackgroundArchiver,
        depth: int,
        started: float,
    ) -> StepReport:
        stall = time.perf_counter() - started
        pending.stall_seconds = stall
        archiver.stats.stall_seconds += stall
        return StepReport(
            step=pending.step,
            batch_elems=pending.size,
            io_total=0,
            io_load=0,
            io_sort=0,
            io_merge=0,
            cpu_seconds={"sort": 0.0, "merge": 0.0, "summary": 0.0,
                         "load": 0.0, "seal": stall},
            sim_seconds=0.0,
            merged_levels=False,
            stall_seconds=stall,
            queue_depth=depth,
            archive_wall_seconds=0.0,
            archived=False,
        )

    def flush(self) -> List[StepReport]:
        """Drain background archiving; return the completed reports.

        Blocks until every enqueued batch has been archived, then
        returns one authoritative :class:`StepReport` per step archived
        since the previous ``flush`` (step order).  Answers, per-phase
        I/O counters and invariants match what the synchronous mode
        would have reported for the same stream.  A no-op returning
        ``[]`` in sync mode or when nothing was ever enqueued.
        """
        if self._archiver is None:
            return []
        records = self._archiver.drain()
        return [self._report_from_record(record) for record in records]

    def _ensure_archiver(self) -> BackgroundArchiver:
        if self._archiver is None:
            self._archiver = BackgroundArchiver(
                self.store,
                max_pending=self.config.ingest_queue_batches,
                retry=self.config.archive_retry_policy,
                # Adoption changes the partition set, so it bumps the
                # epoch — inside the same critical section that splices
                # the partition, keeping epoch and layout in lockstep.
                on_adopt=lambda step: self._epochs.bump("adopt"),
            )
            self._archiver.stats.degraded_queries = self._degraded_queries
        return self._archiver

    def _report_from_record(self, record: ArchiveRecord) -> StepReport:
        cpu = {
            phase: record.cpu.get(phase, 0.0)
            for phase in ("sort", "merge", "summary", "load")
        }
        return StepReport(
            step=record.step,
            batch_elems=record.batch_elems,
            io_total=record.io.total.total,
            io_load=record.io.phase("load").total,
            io_sort=record.io.phase("sort").total,
            io_merge=record.io.phase("merge").total,
            cpu_seconds=cpu,
            sim_seconds=self.disk.latency.seconds(record.io.total),
            merged_levels=record.merged_levels,
            stall_seconds=record.stall_seconds,
            queue_depth=record.queue_depth,
            archive_wall_seconds=record.archive_wall_seconds,
        )

    @property
    def ingest_stats(self) -> Optional[IngestStats]:
        """Cumulative background-ingest instrumentation.

        ``None`` until the first background ``end_time_step`` (always
        ``None`` in sync mode).
        """
        return self._archiver.stats if self._archiver is not None else None

    @property
    def degraded_queries(self) -> int:
        """Accurate queries that fell back to the quick response."""
        with self._reliability_lock:
            return self._degraded_queries

    def _note_degraded_query(self) -> None:
        """Count one degraded query (called from any query thread)."""
        with self._reliability_lock:
            self._degraded_queries += 1
            count = self._degraded_queries
        archiver = self._archiver
        if archiver is not None:
            archiver.stats.degraded_queries = count

    @property
    def reliability(self) -> ReliabilityReport:
        """Cumulative failure-handling counters across subsystems.

        Zeros everywhere (``report.healthy``) on a fault-free disk; a
        :class:`~repro.faults.FaultyDisk` contributes its fired-fault
        count, the archiver and query executor their retry counts.
        """
        stats = self.ingest_stats
        return ReliabilityReport(
            disk_faults=int(getattr(self.disk, "faults_fired", 0)),
            archive_retries=stats.fault_retries if stats is not None else 0,
            probe_retries=self._query_executor.fault_retries,
            degraded_queries=self.degraded_queries,
        )

    # ------------------------------------------------------------------
    # Queries (Algorithms 5-8)
    # ------------------------------------------------------------------

    @property
    def n_historical(self) -> int:
        """Number of sealed historical elements n (archived + pending)."""
        if self._archiver is None:
            return self.store.total_elements()
        with self.store.layout_lock:
            total = self.store.total_elements()
            pending = self._archiver.pending_batches()
        return total + sum(len(batch) for batch in pending)

    @property
    def m_stream(self) -> int:
        """Number of live (unarchived) stream elements m."""
        return self._m

    @property
    def n_total(self) -> int:
        """Total number of elements N = n + m."""
        return self.n_historical + self._m

    @property
    def steps_loaded(self) -> int:
        """Highest time step fully archived into the leveled layout."""
        return self.store.steps_loaded

    @property
    def steps_sealed(self) -> int:
        """Highest time step sealed by ``end_time_step``.

        Equals :attr:`steps_loaded` in sync mode; in background mode it
        may run ahead while batches wait in the archiver's queue (all of
        them still fully queryable).
        """
        return self._step

    def stream_summary(self) -> StreamSummary:
        """Extract SS from the live GK sketch (Algorithm 4).

        Absorbs any buffered-but-unabsorbed stream tail first, so the
        summary always covers every ingested element.
        """
        self._absorb_stream_tail()
        return StreamSummary.extract(self._gk, self.config.epsilon2)

    def _stream_rank_estimate(self, value: int) -> float:
        """Rank of ``value`` in R from the live sketch's bracket.

        The midpoint of GK's rank interval is within ``eps2 * m / 2``
        of the truth — the same guarantee class as the Algorithm 8
        summary estimate, without its quantization.
        """
        self._absorb_stream_tail()
        if self._gk.n == 0:
            return 0.0
        lo, hi = self._gk.rank_bounds(int(value))
        return (lo + hi) / 2.0

    def _layout_snapshot(
        self,
    ) -> "tuple[List[Partition], List[PendingBatch], int]":
        """Atomic (adopted layout, pending set, epoch) triple."""
        if self._archiver is None:
            with self.store.layout_lock:
                return self.store.partitions(), [], self._epochs.current
        with self.store.layout_lock:
            return (
                self.store.partitions(),
                self._archiver.pending_batches(),
                self._epochs.current,
            )

    def _stage_pending(
        self, ordered: List[Partition], pending: "List[PendingBatch]"
    ) -> List[Partition]:
        for batch in pending:
            # Staging writes to disk, so it runs under the probe retry
            # policy; an exhausted retry propagates as a typed fault —
            # a query must never silently drop a sealed batch from the
            # union it answers over.
            ordered.append(
                self._query_executor.call_with_retry(
                    lambda batch=batch: batch.ensure_staged(self.store)
                )
            )
        return ordered

    def _queryable_partitions(self) -> List[Partition]:
        """Step-ordered snapshot of every sealed element's partition.

        In sync mode this is just the store's layout snapshot.  In
        background mode the adopted layout and the archiver's pending
        set are snapshotted *atomically* under the layout lock (the
        archiver adopts and unlinks in one critical section of the same
        lock), so every sealed batch appears exactly once no matter how
        the snapshot races an in-flight adoption.  Pending batches are
        then staged by this thread if needed — work-stealing, so a
        query never waits behind an in-flight cascade merge.
        """
        ordered, pending, _ = self._layout_snapshot()
        return self._stage_pending(ordered, pending)

    def pin(self) -> SnapshotHandle:
        """Pin a refcounted, consistent (HS, SS, partition-set) view.

        The partition list (adopted plus staged pending), the stream
        sketch snapshot and the epoch stamp are taken atomically under
        the seal lock, so the handle's union is exactly the engine's
        state at one instant — a seal or adoption either happened
        before the pin or after it, never halfway.  Release the handle
        (or use it as a context manager) so the registry can retire old
        epochs.

        Two handles pinned at the same epoch with no stream updates in
        between answer every query identically — the property the
        serving layer's coalescer and the stress suite's bit-identical
        replay both build on.
        """
        with self._seal_lock:
            ordered, pending, epoch = self._layout_snapshot()
            self._stage_pending(ordered, pending)
            self._absorb_stream_tail()
            gk = self._gk.snapshot()
            step = self._step
        self._epochs.pin(epoch)
        return SnapshotHandle(
            registry=self._epochs,
            epoch=epoch,
            partitions=ordered,
            gk=gk,
            config=self.config,
            disk=self.disk,
            executor=self._query_executor,
            note_degraded=self._note_degraded_query,
            created_at_step=step,
            shared_cache=self.shared_cache,
        )

    @property
    def epoch_stats(self) -> EpochStats:
        """The epoch layer's counters (pins, bumps, TS merges), with
        the shared cache's hit/miss/eviction/invalidation counters and
        the storage backend's request counters merged in (zeros when
        the shared tier is disabled / the backend is request-free)."""
        stats = self._epochs.stats()
        if self.shared_cache is not None:
            cs = self.shared_cache.stats()
            stats = replace(
                stats,
                cache_hits=cs.hits,
                cache_misses=cs.misses,
                cache_evictions=cs.evictions,
                cache_invalidations=cs.invalidated_blocks,
                cache_resident_blocks=cs.resident_blocks,
                cache_coalesced_waits=cs.coalesced_waits,
            )
        bs = self.disk.backend.stats()
        if bs.gets or bs.get_blocks or bs.puts or bs.migrations or bs.evicted_runs:
            stats = replace(
                stats,
                object_gets=bs.gets,
                object_get_blocks=bs.get_blocks,
                object_puts=bs.puts,
                object_migrations=bs.migrations,
                object_evicted_runs=bs.evicted_runs,
                object_hot_bytes=bs.hot_bytes,
            )
        return stats

    def warm_shared_cache(
        self,
        phis: "Sequence[float]",
        window_steps: Optional[int] = None,
    ) -> int:
        """Prefetch the block ranges accurate queries for ``phis`` probe.

        Pins a snapshot, generates each phi's TS filters and reads the
        confined per-partition block ranges into the shared tier in
        batched ranged reads (charged under the query phase, like the
        probes they stand in for).  A no-op returning 0 when the shared
        tier is disabled.  Returns the number of blocks charged.
        """
        if self.shared_cache is None:
            return 0
        self.disk.stats.set_phase("query")
        try:
            with self.pin() as handle:
                return handle.warm(phis, window_steps=window_steps)
        finally:
            self.disk.stats.set_phase("load")

    def _query_scope(
        self,
        window_steps: Optional[int],
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> (
        "tuple[List[Partition], StreamSummary, CombinedSummary,"
        " Optional[Callable[[int], float]]]"
    ):
        """One query's pinned scope: partitions, SS, TS and the
        stream-rank estimator bound to the pinned sketch."""
        with self.pin() as handle:
            partitions, ss = handle.scope(window_steps, step_range)
            combined = handle.combined(window_steps, step_range)
            # Historical-range queries exclude the live stream, so the
            # sketch-backed estimator must not contribute.
            rank_fn = handle.stream_rank if step_range is None else None
            return partitions, ss, combined, rank_fn

    def query_rank(
        self,
        rank: int,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> QueryResult:
        """Return an element whose rank in T approximates ``rank``.

        ``mode`` selects Algorithm 5 (``"quick"``, memory-only,
        ``O(eps*N)`` error) or Algorithm 6 (``"accurate"``, a few
        hundred random block reads, ``O(eps*m)`` error).  With
        ``window_steps`` the query covers only the last that many time
        steps of historical data plus the live stream; with
        ``step_range=(a, b)`` it covers exactly historical steps a..b
        (no stream), when those align with partition boundaries.
        """
        if mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")
        started = time.perf_counter()
        io_before = self.disk.stats.counters.snapshot()
        self.disk.stats.set_phase("query")
        try:
            partitions, ss, combined, rank_fn = self._query_scope(
                window_steps, step_range
            )
            total = combined.total_size
            rank = max(1, min(int(rank), total))
            quick_bound = self._quick_rank_bound(total, ss.stream_size)
            degraded = False
            if mode == "quick":
                value = combined.quick_response(rank)
                outcome_rank = float(rank)
                blocks = 0
                iterations = 0
                truncated = False
                critical_path_blocks = 0
                bound = quick_bound
            else:
                search = AccurateSearch(
                    partitions=partitions,
                    stream_summary=ss,
                    combined=combined,
                    config=self.config,
                    rank=rank,
                    # Bound to the *pinned* sketch snapshot, so a
                    # concurrent stream update cannot shift rank
                    # estimates mid-search (None for historical-range
                    # queries, which exclude the live stream).
                    stream_rank_fn=rank_fn,
                    cache=self._new_block_cache(),
                    executor=self._query_executor,
                )
                try:
                    outcome = search.run()
                except DiskFault:
                    # A probe exhausted its retries.  Degrade to the
                    # quick (in-memory) response with its widened error
                    # bound rather than crashing the query; the
                    # degradation is visible on the result and in
                    # engine.reliability.
                    if not self.config.degrade_on_fault:
                        raise
                    outcome = None
                if outcome is None:
                    self._note_degraded_query()
                    degraded = True
                    value = combined.quick_response(rank)
                    outcome_rank = float(rank)
                    blocks = 0
                    iterations = 0
                    truncated = True
                    critical_path_blocks = 0
                    bound = quick_bound
                else:
                    value = outcome.value
                    outcome_rank = outcome.estimated_rank
                    blocks = outcome.random_blocks
                    iterations = outcome.iterations
                    truncated = outcome.truncated
                    critical_path_blocks = outcome.max_partition_blocks
                    bound = self.config.query_epsilon * ss.stream_size
        finally:
            self.disk.stats.set_phase("load")
        io_delta = self.disk.stats.counters.delta_since(io_before)
        if degraded:
            # The aborted search's probes were still charged; surface
            # them so degraded queries are not mistaken for free ones.
            blocks = io_delta.random_reads
        return QueryResult(
            value=int(value),
            target_rank=rank,
            total_size=total,
            mode=mode,
            estimated_rank=outcome_rank,
            disk_accesses=blocks,
            iterations=iterations,
            truncated=truncated,
            wall_seconds=time.perf_counter() - started,
            sim_seconds=self.disk.latency.seconds(io_delta),
            window_steps=window_steps,
            parallel_sim_seconds=(
                critical_path_blocks
                * self.disk.latency.seconds_per_random_block
            ),
            query_workers=self.config.query_workers,
            degraded=degraded,
            rank_error_bound=float(bound),
        )

    def _quick_rank_bound(self, total: int, m_scope: int) -> float:
        """A priori rank-error bound of the quick response over a scope
        of ``total`` elements, ``m_scope`` of them live stream."""
        hist_scope = max(0, total - m_scope)
        return (
            self.config.epsilon1 * hist_scope
            + self.config.epsilon2 * m_scope
        )

    def quantile(
        self,
        phi: float,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> QueryResult:
        """A ``phi``-quantile of the union (Definition 1)."""
        if step_range is not None:
            partitions = resolve_range_in(
                self._queryable_partitions(), *step_range
            )
            total = sum(len(p) for p in partitions)
        elif window_steps is not None:
            partitions = resolve_window_in(
                self._queryable_partitions(), window_steps
            )
            total = sum(len(p) for p in partitions) + self._m
        else:
            total = self.n_total
        rank = rank_for_phi(phi, total)
        return self.query_rank(
            rank, mode=mode, window_steps=window_steps, step_range=step_range
        )

    def quantiles(
        self,
        phis: "Sequence[float]",
        window_steps: Optional[int] = None,
    ) -> List[QueryResult]:
        """Answer several accurate quantile queries in one pass.

        The queries share one extracted stream summary and one block
        cache, so blocks touched by one search are free for the next —
        substantially cheaper than issuing the queries separately.
        """
        io_before = self.disk.stats.counters.snapshot()
        self.disk.stats.set_phase("query")
        partitions, ss, combined, rank_fn = self._query_scope(window_steps)
        total = combined.total_size
        quick_bound = self._quick_rank_bound(total, ss.stream_size)
        cache = self._new_block_cache()
        results = []
        for phi in phis:
            started = time.perf_counter()
            rank = rank_for_phi(phi, total)
            search = AccurateSearch(
                partitions=partitions,
                stream_summary=ss,
                combined=combined,
                config=self.config,
                rank=rank,
                stream_rank_fn=rank_fn,
                cache=cache,
                executor=self._query_executor,
            )
            try:
                outcome = search.run()
            except DiskFault:
                if not self.config.degrade_on_fault:
                    self.disk.stats.set_phase("load")
                    raise
                outcome = None
                self._note_degraded_query()
            if outcome is None:
                results.append(
                    QueryResult(
                        value=int(combined.quick_response(rank)),
                        target_rank=rank,
                        total_size=total,
                        mode="accurate",
                        estimated_rank=float(rank),
                        disk_accesses=0,
                        iterations=0,
                        truncated=True,
                        wall_seconds=time.perf_counter() - started,
                        sim_seconds=0.0,
                        window_steps=window_steps,
                        query_workers=self.config.query_workers,
                        degraded=True,
                        rank_error_bound=float(quick_bound),
                    )
                )
                continue
            results.append(
                QueryResult(
                    value=outcome.value,
                    target_rank=rank,
                    total_size=total,
                    mode="accurate",
                    estimated_rank=outcome.estimated_rank,
                    disk_accesses=outcome.random_blocks,
                    iterations=outcome.iterations,
                    truncated=outcome.truncated,
                    # per-query wall time, not cumulative pass time
                    wall_seconds=time.perf_counter() - started,
                    sim_seconds=0.0,
                    window_steps=window_steps,
                    query_workers=self.config.query_workers,
                    rank_error_bound=float(
                        self.config.query_epsilon * ss.stream_size
                    ),
                )
            )
        self.disk.stats.set_phase("load")
        io_delta = self.disk.stats.counters.delta_since(io_before)
        sim = self.disk.latency.seconds(io_delta)
        if results:
            # total pass cost attributed once, on the final result
            results[-1] = replace(results[-1], sim_seconds=sim)
        return results

    def quantile_many(
        self,
        phis: "Sequence[float]",
        mode: str = "quick",
        window_steps: Optional[int] = None,
    ) -> List[QueryResult]:
        """Answer many quantiles against one pinned snapshot.

        The public vectorized entry point the serving layer's coalescer
        (and the CLI's multi-``--phi`` path) uses.  Quick mode pins one
        snapshot, builds TS once, and answers every ``phi`` with a
        single vectorized rank-bound pass; accurate mode delegates to
        :meth:`quantiles`, which shares one stream summary and block
        cache across the searches.  Results are index-aligned with
        ``phis``.
        """
        if mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")
        if mode == "accurate":
            return self.quantiles(phis, window_steps=window_steps)
        with self.pin() as handle:
            return handle.quantile_many(
                phis, mode="quick", window_steps=window_steps
            )

    def aggregate(
        self,
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> AggregateStats:
        """Exact count/sum/min/max/mean over an aligned scope.

        Covers the full union by default, the last ``window_steps``
        steps plus the live stream, or a historical ``step_range``
        (stream excluded) — all exact and free of disk access, since
        per-partition aggregates were computed at write time and the
        live stream's aggregates are maintained incrementally.  (The
        full-union scope stays disk-free even mid-archive: sealed
        pending batches carry their seal-time aggregates.  Windowed /
        range scopes with batches still pending stage them first,
        charging the same write I/O archiving would have.)
        """
        if step_range is None and window_steps is None:
            if self._archiver is None:
                partitions = self.store.partitions()
                pending = []
            else:
                with self.store.layout_lock:
                    partitions = self.store.partitions()
                    pending = self._archiver.pending_batches()
            result = combine(
                p.stats if p.stats is not None else partition_stats(p)
                for p in partitions
            )
            for batch in pending:
                result = result.merge(batch.stats)
            return result.merge(self._stream_stats)
        if step_range is not None:
            if window_steps is not None:
                raise ValueError("pass window_steps or step_range, not both")
            partitions = resolve_range_in(
                self._queryable_partitions(), *step_range
            )
            include_stream = False
        else:
            partitions = resolve_window_in(
                self._queryable_partitions(), window_steps
            )
            include_stream = True
        result = combine(
            p.stats if p.stats is not None else partition_stats(p)
            for p in partitions
        )
        if include_stream:
            result = result.merge(self._stream_stats)
        return result

    def available_window_sizes(self) -> List[int]:
        """Historical window sizes currently answerable (Figure 11).

        Mid-archive the pending suffix counts too — a window ending at
        the last *sealed* step is answerable before archiving finishes.
        """
        if self._archiver is None:
            return self.store.available_window_sizes()
        return window_sizes_from(self._queryable_partitions())

    # ------------------------------------------------------------------
    # Query execution resources
    # ------------------------------------------------------------------

    @property
    def query_executor(self) -> QueryExecutor:
        """The executor running this engine's per-partition probes."""
        return self._query_executor

    def set_query_workers(self, workers: int) -> None:
        """Re-size the probe fan-out at runtime.

        Shuts the current executor down and installs a fresh one with
        ``workers`` threads (1 = serial).  Answers and I/O counts are
        unaffected — only query wall-clock changes.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers == self.config.query_workers:
            return
        old = self._query_executor
        self.config = replace(self.config, query_workers=workers)
        retries = old.fault_retries
        self._query_executor = QueryExecutor(
            workers=workers, retry=self.config.probe_retry_policy
        )
        self._query_executor.fault_retries = retries
        old.close()

    def close(self) -> None:
        """Drain background ingest and release threads (idempotent).

        The archiver (if any) finishes archiving every enqueued batch
        before its thread stops, then the query pool is released.
        Serial, sync-mode engines never start a thread, so calling this
        is only required for background-mode or ``query_workers > 1``
        deployments that create many engines; the interpreter also
        joins remaining threads at exit.

        If the archiver failed on an error nothing surfaced yet, the
        error is raised here (as :class:`~repro.ingest.archiver.
        ArchiveFailedError`) — *after* the query pool is released, so
        the engine is fully shut down either way.
        """
        try:
            if self._archiver is not None:
                self._archiver.close()
        finally:
            try:
                if self._wal is not None:
                    self._wal.close()
                    self._wal = None
            finally:
                try:
                    self._query_executor.close()
                finally:
                    if self._owns_backend:
                        self.disk.backend.close()

    def __enter__(self) -> "HybridQuantileEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.close()
        except Exception:
            if exc_type is None:
                raise
            # The body is already unwinding with its own exception;
            # losing that for the archiver's would mask the root cause.
            # Resources are released either way (close's finally).
            _logger.warning(
                "suppressed background archiving failure while the "
                "engine exited with %s", exc_type.__name__, exc_info=True,
            )

    # ------------------------------------------------------------------
    # Accounting and invariants
    # ------------------------------------------------------------------

    def memory_report(self) -> MemoryReport:
        """Actual main-memory footprint of all in-memory structures.

        Counts summaries of already-staged pending partitions too, but
        does not force staging (reporting memory must not perform I/O).
        The stream sketch absorbs any buffered tail first — CPU-only
        work — so its reported footprint covers every ingested element.
        """
        self._absorb_stream_tail()
        partitions = self.store.partitions()
        if self._archiver is not None:
            for batch in self._archiver.pending_batches():
                partition = batch.partition
                if partition is not None:
                    partitions.append(partition)
        hist = sum(
            p.summary.memory_words()
            for p in partitions
            if p.summary is not None
        )
        beta2 = self.config.beta2
        return MemoryReport(
            stream_sketch_words=self._gk.memory_words(),
            stream_summary_words=beta2 + 2,
            historical_summary_words=hist,
        )

    def check_invariants(self) -> None:
        """Assert structural invariants of HD and HS (tests/debugging).

        In background mode the pending partitions are staged and
        checked too (their summaries obey the same gap invariant).
        """
        self.store.check_invariant()
        for partition in self._queryable_partitions():
            summary: PartitionSummary = partition.summary
            if summary is None:
                raise AssertionError(f"partition {partition!r} lacks summary")
            if len(partition) and len(summary.values):
                if summary.values[0] != partition.run.values[0]:
                    raise AssertionError("summary must start at the minimum")
                gap_limit = summary.eps1 * summary.partition_size + 1
                gaps = np.diff(summary.positions)
                if len(gaps) and gaps.max() > math.ceil(gap_limit):
                    raise AssertionError("summary rank gaps exceed eps1 * mP")
