"""The hybrid quantile engine: the paper's primary contribution.

:class:`HybridQuantileEngine` wires together every piece:

* a :class:`~repro.warehouse.leveled_store.LeveledStore` (HD) on a
  :class:`~repro.storage.disk.SimulatedDisk`, with per-partition
  :class:`~repro.core.summaries.PartitionSummary` objects (HS) attached
  at partition-creation time;
* a :class:`~repro.sketches.gk.GKSketch` over the live stream, from
  which :class:`~repro.core.summaries.StreamSummary` (SS) is extracted
  at query time;
* the quick response (Algorithm 5) and the accurate response
  (Algorithms 6-8) over their combination;
* a :class:`~repro.query.executor.QueryExecutor` that runs the
  accurate response's per-partition probes — serially by default, or
  overlapped on ``config.query_workers`` threads (Section 4's parallel
  partition reads, implemented).

Typical use::

    engine = HybridQuantileEngine(epsilon=1e-3, kappa=10)
    for batch in workload:
        engine.stream_update_batch(batch)   # live stream
        ... engine.quantile(0.5) ...        # query any time
        engine.end_time_step()              # archive the batch

Every update and query reports its disk-access counts and timings, so
the benchmark harness reads the same metrics the paper plots.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..query.executor import QueryExecutor
from ..sketches.base import rank_for_phi
from ..sketches.gk import GKSketch
from ..storage.cache import BlockCache
from ..storage.disk import SimulatedDisk
from ..warehouse.compaction import LeveledCompactionStore
from ..warehouse.leveled_store import LeveledStore
from ..warehouse.partition import Partition
from .bounds import CombinedSummary
from .config import EngineConfig
from .filters import AccurateSearch
from .summaries import PartitionSummary, StreamSummary
from .aggregates import AggregateStats, combine, partition_stats
from .windows import resolve_range, resolve_window


@dataclass(frozen=True)
class StepReport:
    """What loading one time step into the warehouse cost.

    ``io_*`` fields are block counts; ``cpu_seconds`` is measured wall
    time by phase; ``sim_seconds`` applies the disk latency model to
    the I/O performed this step.
    """

    step: int
    batch_elems: int
    io_total: int
    io_load: int
    io_sort: int
    io_merge: int
    cpu_seconds: "dict[str, float]"
    sim_seconds: float
    merged_levels: bool


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one quantile query."""

    value: int
    target_rank: int
    total_size: int
    mode: str
    estimated_rank: float
    disk_accesses: int
    iterations: int
    truncated: bool
    wall_seconds: float
    sim_seconds: float
    window_steps: Optional[int] = None
    #: simulated disk seconds with partitions read concurrently — the
    #: critical-path cost the executor realizes when ``query_workers``
    #: exceeds 1; <= sim_seconds.
    parallel_sim_seconds: float = 0.0
    #: worker threads the accurate search probed partitions with
    #: (1 = serial); ``wall_seconds`` is measured under this setting.
    query_workers: int = 1

    @property
    def phi(self) -> float:
        """The quantile fraction this query targeted."""
        return self.target_rank / self.total_size if self.total_size else 0.0


@dataclass(frozen=True)
class MemoryReport:
    """Breakdown of the engine's main-memory footprint in words."""

    stream_sketch_words: int
    stream_summary_words: int
    historical_summary_words: int

    @property
    def stream_words(self) -> int:
        """Words held by the stream-side structures."""
        return self.stream_sketch_words + self.stream_summary_words

    @property
    def total_words(self) -> int:
        """Total words across all in-memory structures."""
        return self.stream_words + self.historical_summary_words

    @property
    def total_megabytes(self) -> float:
        """Total footprint in megabytes."""
        return self.total_words * 8 / (1024 * 1024)


class HybridQuantileEngine:
    """Quantile queries over the union of historical and streaming data.

    Parameters
    ----------
    epsilon:
        Error parameter: accurate queries have rank error ``O(eps*m)``
        where m is the live stream size.  Ignored when ``config`` is
        given.
    kappa:
        Merge threshold of the historical store.
    block_elems:
        Simulated disk block size in elements.
    config:
        Full configuration; overrides the individual arguments.
    disk:
        Supply a shared simulated disk (e.g. for baselines measured on
        the same device); a fresh one is created by default.
    """

    def __init__(
        self,
        epsilon: Optional[float] = None,
        kappa: int = 10,
        block_elems: int = 1024,
        config: Optional[EngineConfig] = None,
        disk: Optional[SimulatedDisk] = None,
    ) -> None:
        if config is None:
            if epsilon is None:
                raise ValueError("pass epsilon or a full EngineConfig")
            config = EngineConfig(
                epsilon=epsilon, kappa=kappa, block_elems=block_elems
            )
        self.config = config
        self.disk = disk if disk is not None else SimulatedDisk(
            block_elems=config.block_elems
        )
        store_cls = (
            LeveledCompactionStore
            if config.compaction == "leveled"
            else LeveledStore
        )
        self.store = store_cls(
            self.disk,
            kappa=config.kappa,
            summary_builder=self._build_partition_summary,
        )
        self._gk = self._fresh_stream_sketch()
        self._stream_chunks: List[np.ndarray] = []
        self._m = 0
        self._step = 0
        self._stream_stats = AggregateStats.empty()
        self._query_executor = QueryExecutor(workers=config.query_workers)

    # ------------------------------------------------------------------
    # Stream ingestion (Algorithm 4) and warehouse loading (Algorithm 3)
    # ------------------------------------------------------------------

    def _fresh_stream_sketch(self) -> GKSketch:
        # GK runs at eps2/2 so the extracted summary meets Lemma 1's
        # one-sided guarantee (see StreamSummary.extract).
        return GKSketch(self.config.epsilon2 / 2.0)

    def _build_partition_summary(self, partition: Partition) -> PartitionSummary:
        # Aggregates ride along with the summary: both are computed
        # while the partition is written, at no extra disk access.
        partition.stats = partition_stats(partition)
        return PartitionSummary.build(partition, self.config.epsilon1)

    def stream_update(self, value: int) -> None:
        """Process one live stream element."""
        self._gk.update(value)
        arr = np.asarray([value], dtype=np.int64)
        self._stream_chunks.append(arr)
        self._stream_stats = self._stream_stats.merge(
            AggregateStats.of_array(arr)
        )
        self._m += 1

    def stream_update_batch(self, values: Iterable[int]) -> None:
        """Process many live stream elements at once."""
        arr = np.asarray(
            values if isinstance(values, np.ndarray) else list(values),
            dtype=np.int64,
        )
        if arr.size == 0:
            return
        self._gk.update_batch(arr)
        self._stream_chunks.append(arr.copy())
        self._stream_stats = self._stream_stats.merge(
            AggregateStats.of_array(arr)
        )
        self._m += int(arr.size)

    def end_time_step(self) -> StepReport:
        """Archive the current stream batch into HD and reset SS.

        The batch is sorted, stored as a level-0 partition (triggering
        cascading merges when levels are full), its summary attached,
        and the stream sketch reset — Algorithm 3 plus StreamReset.
        """
        self._step += 1
        batch = (
            np.concatenate(self._stream_chunks)
            if self._stream_chunks
            else np.empty(0, dtype=np.int64)
        )
        before_io = self.disk.stats.counters.snapshot()
        before_load = self.disk.stats.load.snapshot()
        before_sort = self.disk.stats.sort.snapshot()
        before_merge = self.disk.stats.merge.snapshot()
        cpu_before = dict(self.store.cpu_seconds)
        started = time.perf_counter()
        self.store.add_batch(batch, step=self._step)
        wall = time.perf_counter() - started
        self._stream_chunks = []
        self._m = 0
        self._gk = self._fresh_stream_sketch()
        self._stream_stats = AggregateStats.empty()

        io_delta = self.disk.stats.counters.delta_since(before_io)
        load_delta = self.disk.stats.load.delta_since(before_load)
        sort_delta = self.disk.stats.sort.delta_since(before_sort)
        merge_delta = self.disk.stats.merge.delta_since(before_merge)
        cpu = {
            phase: self.store.cpu_seconds.get(phase, 0.0)
            - cpu_before.get(phase, 0.0)
            for phase in ("sort", "merge", "summary")
        }
        cpu["load"] = max(0.0, wall - sum(cpu.values()))
        return StepReport(
            step=self._step,
            batch_elems=int(batch.size),
            io_total=io_delta.total,
            io_load=load_delta.total,
            io_sort=sort_delta.total,
            io_merge=merge_delta.total,
            cpu_seconds=cpu,
            sim_seconds=self.disk.latency.seconds(io_delta),
            merged_levels=merge_delta.total > 0,
        )

    # ------------------------------------------------------------------
    # Queries (Algorithms 5-8)
    # ------------------------------------------------------------------

    @property
    def n_historical(self) -> int:
        """Number of archived historical elements n."""
        return self.store.total_elements()

    @property
    def m_stream(self) -> int:
        """Number of live (unarchived) stream elements m."""
        return self._m

    @property
    def n_total(self) -> int:
        """Total number of elements N = n + m."""
        return self.n_historical + self._m

    @property
    def steps_loaded(self) -> int:
        """Highest time step whose batch has been archived."""
        return self.store.steps_loaded

    def stream_summary(self) -> StreamSummary:
        """Extract SS from the live GK sketch (Algorithm 4)."""
        return StreamSummary.extract(self._gk, self.config.epsilon2)

    def _stream_rank_estimate(self, value: int) -> float:
        """Rank of ``value`` in R from the live sketch's bracket.

        The midpoint of GK's rank interval is within ``eps2 * m / 2``
        of the truth — the same guarantee class as the Algorithm 8
        summary estimate, without its quantization.
        """
        if self._gk.n == 0:
            return 0.0
        lo, hi = self._gk.rank_bounds(int(value))
        return (lo + hi) / 2.0

    def _query_scope(
        self,
        window_steps: Optional[int],
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> "tuple[List[Partition], StreamSummary, CombinedSummary]":
        if step_range is not None:
            if window_steps is not None:
                raise ValueError("pass window_steps or step_range, not both")
            partitions = resolve_range(self.store, *step_range)
            # A historical interval excludes the live stream.
            ss = StreamSummary(
                values=np.empty(0, dtype=np.int64),
                stream_size=0,
                eps2=self.config.epsilon2,
            )
        else:
            if window_steps is None:
                partitions = self.store.partitions()
            else:
                partitions = resolve_window(self.store, window_steps)
            ss = self.stream_summary()
        summaries = [p.summary for p in partitions if len(p) > 0]
        combined = CombinedSummary.build(summaries, ss)
        return partitions, ss, combined

    def query_rank(
        self,
        rank: int,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> QueryResult:
        """Return an element whose rank in T approximates ``rank``.

        ``mode`` selects Algorithm 5 (``"quick"``, memory-only,
        ``O(eps*N)`` error) or Algorithm 6 (``"accurate"``, a few
        hundred random block reads, ``O(eps*m)`` error).  With
        ``window_steps`` the query covers only the last that many time
        steps of historical data plus the live stream; with
        ``step_range=(a, b)`` it covers exactly historical steps a..b
        (no stream), when those align with partition boundaries.
        """
        if mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")
        started = time.perf_counter()
        io_before = self.disk.stats.counters.snapshot()
        self.disk.stats.set_phase("query")
        partitions, ss, combined = self._query_scope(window_steps, step_range)
        total = combined.total_size
        rank = max(1, min(int(rank), total))
        if mode == "quick":
            value = combined.quick_response(rank)
            outcome_rank = float(rank)
            blocks = 0
            iterations = 0
            truncated = False
            critical_path_blocks = 0
        else:
            search = AccurateSearch(
                partitions=partitions,
                stream_summary=ss,
                combined=combined,
                config=self.config,
                rank=rank,
                # Historical-range queries exclude the live stream, so
                # the sketch-backed estimator must not contribute.
                stream_rank_fn=(
                    self._stream_rank_estimate if step_range is None else None
                ),
                executor=self._query_executor,
            )
            outcome = search.run()
            value = outcome.value
            outcome_rank = outcome.estimated_rank
            blocks = outcome.random_blocks
            iterations = outcome.iterations
            truncated = outcome.truncated
            critical_path_blocks = outcome.max_partition_blocks
        self.disk.stats.set_phase("load")
        io_delta = self.disk.stats.counters.delta_since(io_before)
        return QueryResult(
            value=int(value),
            target_rank=rank,
            total_size=total,
            mode=mode,
            estimated_rank=outcome_rank,
            disk_accesses=blocks,
            iterations=iterations,
            truncated=truncated,
            wall_seconds=time.perf_counter() - started,
            sim_seconds=self.disk.latency.seconds(io_delta),
            window_steps=window_steps,
            parallel_sim_seconds=(
                critical_path_blocks
                * self.disk.latency.seconds_per_random_block
            ),
            query_workers=self.config.query_workers,
        )

    def quantile(
        self,
        phi: float,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> QueryResult:
        """A ``phi``-quantile of the union (Definition 1)."""
        if step_range is not None:
            partitions = resolve_range(self.store, *step_range)
            total = sum(len(p) for p in partitions)
        elif window_steps is not None:
            partitions = resolve_window(self.store, window_steps)
            total = sum(len(p) for p in partitions) + self._m
        else:
            total = self.n_total
        rank = rank_for_phi(phi, total)
        return self.query_rank(
            rank, mode=mode, window_steps=window_steps, step_range=step_range
        )

    def quantiles(
        self,
        phis: "Sequence[float]",
        window_steps: Optional[int] = None,
    ) -> List[QueryResult]:
        """Answer several accurate quantile queries in one pass.

        The queries share one extracted stream summary and one block
        cache, so blocks touched by one search are free for the next —
        substantially cheaper than issuing the queries separately.
        """
        started = time.perf_counter()
        io_before = self.disk.stats.counters.snapshot()
        self.disk.stats.set_phase("query")
        partitions, ss, combined = self._query_scope(window_steps)
        total = combined.total_size
        cache = BlockCache(self.disk, enabled=self.config.block_cache)
        results = []
        for phi in phis:
            rank = rank_for_phi(phi, total)
            search = AccurateSearch(
                partitions=partitions,
                stream_summary=ss,
                combined=combined,
                config=self.config,
                rank=rank,
                stream_rank_fn=self._stream_rank_estimate,
                cache=cache,
                executor=self._query_executor,
            )
            outcome = search.run()
            results.append(
                QueryResult(
                    value=outcome.value,
                    target_rank=rank,
                    total_size=total,
                    mode="accurate",
                    estimated_rank=outcome.estimated_rank,
                    disk_accesses=outcome.random_blocks,
                    iterations=outcome.iterations,
                    truncated=outcome.truncated,
                    wall_seconds=time.perf_counter() - started,
                    sim_seconds=0.0,
                    window_steps=window_steps,
                    query_workers=self.config.query_workers,
                )
            )
        self.disk.stats.set_phase("load")
        io_delta = self.disk.stats.counters.delta_since(io_before)
        sim = self.disk.latency.seconds(io_delta)
        results = [
            # total pass cost attributed once, on the final result
            result if i < len(results) - 1 else
            QueryResult(**{**result.__dict__, "sim_seconds": sim})
            for i, result in enumerate(results)
        ]
        return results

    def aggregate(
        self,
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> AggregateStats:
        """Exact count/sum/min/max/mean over an aligned scope.

        Covers the full union by default, the last ``window_steps``
        steps plus the live stream, or a historical ``step_range``
        (stream excluded) — all exact and free of disk access, since
        per-partition aggregates were computed at write time and the
        live stream's aggregates are maintained incrementally.
        """
        if step_range is not None:
            if window_steps is not None:
                raise ValueError("pass window_steps or step_range, not both")
            partitions = resolve_range(self.store, *step_range)
            include_stream = False
        elif window_steps is not None:
            partitions = resolve_window(self.store, window_steps)
            include_stream = True
        else:
            partitions = self.store.partitions()
            include_stream = True
        result = combine(
            p.stats if p.stats is not None else partition_stats(p)
            for p in partitions
        )
        if include_stream:
            result = result.merge(self._stream_stats)
        return result

    def available_window_sizes(self) -> List[int]:
        """Historical window sizes currently answerable (Figure 11)."""
        return self.store.available_window_sizes()

    # ------------------------------------------------------------------
    # Query execution resources
    # ------------------------------------------------------------------

    @property
    def query_executor(self) -> QueryExecutor:
        """The executor running this engine's per-partition probes."""
        return self._query_executor

    def set_query_workers(self, workers: int) -> None:
        """Re-size the probe fan-out at runtime.

        Shuts the current executor down and installs a fresh one with
        ``workers`` threads (1 = serial).  Answers and I/O counts are
        unaffected — only query wall-clock changes.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers == self.config.query_workers:
            return
        old = self._query_executor
        self.config = replace(self.config, query_workers=workers)
        self._query_executor = QueryExecutor(workers=workers)
        old.close()

    def close(self) -> None:
        """Release the query thread pool (idempotent).

        Serial engines never start a pool, so calling this is only
        required for long-lived ``query_workers > 1`` deployments that
        create many engines; the interpreter also joins the pool's
        threads at exit.
        """
        self._query_executor.close()

    def __enter__(self) -> "HybridQuantileEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Accounting and invariants
    # ------------------------------------------------------------------

    def memory_report(self) -> MemoryReport:
        """Actual main-memory footprint of all in-memory structures."""
        hist = sum(
            p.summary.memory_words()
            for p in self.store.partitions()
            if p.summary is not None
        )
        beta2 = self.config.beta2
        return MemoryReport(
            stream_sketch_words=self._gk.memory_words(),
            stream_summary_words=beta2 + 2,
            historical_summary_words=hist,
        )

    def check_invariants(self) -> None:
        """Assert structural invariants of HD and HS (tests/debugging)."""
        self.store.check_invariant()
        for partition in self.store.partitions():
            summary: PartitionSummary = partition.summary
            if summary is None:
                raise AssertionError(f"partition {partition!r} lacks summary")
            if len(partition) and len(summary.values):
                if summary.values[0] != partition.run.values[0]:
                    raise AssertionError("summary must start at the minimum")
                gap_limit = summary.eps1 * summary.partition_size + 1
                gaps = np.diff(summary.positions)
                if len(gaps) and gaps.max() > math.ceil(gap_limit):
                    raise AssertionError("summary rank gaps exceed eps1 * mP")
