"""Epochs and pinned snapshot handles: the serving layer's read side.

A warehouse that answers quantile queries *while* batches keep arriving
(the paper's Algorithm 3 setting, and the whole point of the
quick/accurate split) needs a cheap notion of "the state a query ran
against".  An **epoch** is a monotone counter over the engine's
structural transitions — a batch being sealed out of the stream, or the
background archiver adopting a staged partition into the leveled
layout.  Two queries pinned at the same epoch see the identical
(HS, SS, partition-set) triple, which is what lets the serving layer's
coalescer answer a whole batch of concurrent requests from **one**
TS merge instead of one merge per request.

:class:`SnapshotHandle` pins one such view: the step-ordered partition
list (adopted *plus* staged pending batches), a copy-on-query snapshot
of the live GK sketch, and the epoch stamp.  The handle answers
``query_rank`` / ``quantile`` / ``quantile_many`` exactly as the engine
would have at pin time, no matter how far ingest advances afterwards —
and answering the *same* rank against the *same* handle is
deterministic, which the concurrency stress suite exploits to check
bit-identical replay.

:class:`EpochRegistry` refcounts the handles pinned per epoch.  When
the archiver adopts a partition it bumps the epoch; an old epoch whose
last handle releases is *retired* (its partition references drop, so in
a file-backed deployment the manifest refcount would free the
pre-merge partition files).  The registry also counts TS merges —
the serving benchmark's coalescing ratio is
``ts_merges / requests_served``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..faults.errors import DiskFault
from ..sketches.base import rank_for_phi
from ..sketches.gk import GKSketch
from ..storage.cache import BlockCache
from ..storage.disk import SimulatedDisk
from ..storage.shared_cache import SharedBlockCache
from ..warehouse.partition import Partition
from .bounds import CombinedSummary
from .config import EngineConfig
from .filters import AccurateSearch
from .summaries import StreamSummary
from .windows import resolve_range_in, resolve_window_in

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..query.executor import QueryExecutor
    from .engine import QueryResult


@dataclass(frozen=True)
class EpochStats:
    """One consistent reading of an :class:`EpochRegistry`'s counters."""

    #: current epoch number (0 before the first seal/adopt).
    current_epoch: int
    #: epoch bumps caused by ``end_time_step`` sealing a batch.
    seal_bumps: int
    #: epoch bumps caused by the archiver adopting a staged partition.
    adopt_bumps: int
    #: handles currently pinned (across all epochs).
    live_pins: int
    #: high-water mark of concurrently pinned handles.
    peak_pins: int
    #: epochs fully released after falling behind the current one.
    epochs_retired: int
    #: TS merges (``CombinedSummary.build`` passes) performed for
    #: queries — the denominator-side of the coalescing ratio.
    ts_merges: int
    #: shared-block-cache counters, merged in by ``engine.epoch_stats``
    #: (all zero when the shared tier is disabled).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_invalidations: int = 0
    cache_resident_blocks: int = 0
    #: lookups that joined another query's in-flight fetch instead of
    #: issuing their own (single-flight coalescing).
    cache_coalesced_waits: int = 0
    #: storage-backend request counters, merged in by
    #: ``engine.epoch_stats`` (all zero on the simulated/mmap backends).
    object_gets: int = 0
    object_get_blocks: int = 0
    object_puts: int = 0
    object_migrations: int = 0
    #: hot-tier capacity eviction counters of the object backend.
    object_evicted_runs: int = 0
    object_hot_bytes: int = 0


class EpochRegistry:
    """Monotone epoch counter plus per-epoch handle refcounts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = 0
        self._refs: Dict[int, int] = {}
        self._live = 0
        self._peak = 0
        self._retired = 0
        self._seal_bumps = 0
        self._adopt_bumps = 0
        self._ts_merges = 0

    @property
    def current(self) -> int:
        """The current epoch number."""
        with self._lock:
            return self._epoch

    def bump(self, reason: str = "seal") -> int:
        """Advance the epoch; returns the new number.

        ``reason`` is ``"seal"`` (a batch left the live stream) or
        ``"adopt"`` (the archiver spliced a staged partition into the
        leveled layout).  Callers invoke this inside the critical
        section that performs the transition, so a pin always observes
        the epoch and the state it stamps together.
        """
        with self._lock:
            self._epoch += 1
            if reason == "adopt":
                self._adopt_bumps += 1
            else:
                self._seal_bumps += 1
            return self._epoch

    def pin(self, epoch: int) -> None:
        """Register one handle pinned at ``epoch``."""
        with self._lock:
            self._refs[epoch] = self._refs.get(epoch, 0) + 1
            self._live += 1
            self._peak = max(self._peak, self._live)

    def release(self, epoch: int) -> None:
        """Drop one handle's pin; retire the epoch when it empties.

        An epoch is retired once its last handle releases *and* it is
        no longer current — the moment its pre-merge partition
        references become unreachable.
        """
        with self._lock:
            count = self._refs.get(epoch, 0) - 1
            self._live -= 1
            if count <= 0:
                self._refs.pop(epoch, None)
                if epoch != self._epoch:
                    self._retired += 1
            else:
                self._refs[epoch] = count

    def note_ts_merge(self) -> None:
        """Count one TS merge performed on behalf of queries."""
        with self._lock:
            self._ts_merges += 1

    def stats(self) -> EpochStats:
        """Snapshot every counter atomically."""
        with self._lock:
            return EpochStats(
                current_epoch=self._epoch,
                seal_bumps=self._seal_bumps,
                adopt_bumps=self._adopt_bumps,
                live_pins=self._live,
                peak_pins=self._peak,
                epochs_retired=self._retired,
                ts_merges=self._ts_merges,
            )


class SnapshotHandle:
    """A refcounted pin of one consistent (HS, SS, partition-set) view.

    Created by :meth:`HybridQuantileEngine.pin`; release with
    :meth:`release` (or use as a context manager).  All query methods
    are thread-safe — the serving layer shares one handle across a
    coalesced batch of requests, and the lazily built combined summary
    (one TS merge) is cached on the handle, so every request of the
    batch rides the same merge.
    """

    def __init__(
        self,
        registry: EpochRegistry,
        epoch: int,
        partitions: List[Partition],
        gk: GKSketch,
        config: EngineConfig,
        disk: SimulatedDisk,
        executor: "QueryExecutor",
        note_degraded: Callable[[], None],
        created_at_step: int,
        shared_cache: Optional[SharedBlockCache] = None,
    ) -> None:
        self._registry = registry
        self.epoch = epoch
        self.partitions = partitions
        self.gk = gk
        self.config = config
        self._disk = disk
        self._executor = executor
        self._note_degraded = note_degraded
        self.created_at_step = created_at_step
        self._shared_cache = shared_cache
        self.n_historical = sum(len(p) for p in partitions)
        self.m_stream = gk.n
        self._cache_lock = threading.RLock()
        self._ss: Optional[StreamSummary] = None
        self._combined: Optional[CombinedSummary] = None
        self._merges = 0
        self._released = False
        # Eviction safety: a run referenced by a live handle is pinned
        # in the storage backend, so the hot-tier LRU never demotes a
        # run out from under this snapshot's probes.
        self._pinned_run_ids = [p.run.run_id for p in partitions]
        disk.backend.pin_runs(self._pinned_run_ids)

    # -- lifecycle ------------------------------------------------------

    @property
    def released(self) -> bool:
        """Whether :meth:`release` has run."""
        return self._released

    def release(self) -> None:
        """Drop this handle's pin (idempotent).

        The handle keeps answering afterwards (its references stay
        valid in-process); releasing just lets the registry retire the
        epoch so a file-backed deployment could free pre-merge
        partitions.
        """
        if not self._released:
            self._released = True
            self._registry.release(self.epoch)
            self._disk.backend.unpin_runs(self._pinned_run_ids)

    def __enter__(self) -> "SnapshotHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    # -- derived views --------------------------------------------------

    @property
    def n_total(self) -> int:
        """Total number of elements N = n + m at pin time."""
        return self.n_historical + self.m_stream

    def stream_summary(self) -> StreamSummary:
        """SS extracted from the pinned sketch (cached)."""
        with self._cache_lock:
            if self._ss is None:
                self._ss = StreamSummary.extract(
                    self.gk, self.config.epsilon2
                )
            return self._ss

    def stream_rank(self, value: int) -> float:
        """Rank estimate of ``value`` in the pinned stream (midpoint)."""
        if self.gk.n == 0:
            return 0.0
        lo, hi = self.gk.rank_bounds(int(value))
        return (lo + hi) / 2.0

    def scope(
        self,
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> "tuple[List[Partition], StreamSummary]":
        """The (partitions, SS) pair a query over this scope covers."""
        if step_range is not None:
            if window_steps is not None:
                raise ValueError("pass window_steps or step_range, not both")
            partitions = resolve_range_in(self.partitions, *step_range)
            # A historical interval excludes the live stream.
            ss = StreamSummary(
                values=np.empty(0, dtype=np.int64),
                stream_size=0,
                eps2=self.config.epsilon2,
            )
            return partitions, ss
        if window_steps is None:
            return self.partitions, self.stream_summary()
        partitions = resolve_window_in(self.partitions, window_steps)
        return partitions, self.stream_summary()

    def combined(
        self,
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> CombinedSummary:
        """TS over the scope; the full-scope merge is built once.

        Every build is counted against the registry's ``ts_merges`` —
        the serving benchmark's coalescing ratio divides this by
        requests served.
        """
        if window_steps is None and step_range is None:
            with self._cache_lock:
                if self._combined is None:
                    self._combined = self._build_combined(*self.scope())
                return self._combined
        return self._build_combined(*self.scope(window_steps, step_range))

    def _build_combined(
        self, partitions: Sequence[Partition], ss: StreamSummary
    ) -> CombinedSummary:
        summaries = [p.summary for p in partitions if len(p) > 0]
        built = CombinedSummary.build(summaries, ss)
        with self._cache_lock:
            self._merges += 1
        self._registry.note_ts_merge()
        return built

    @property
    def ts_merges_built(self) -> int:
        """TS merges this handle has performed (cache misses only)."""
        with self._cache_lock:
            return self._merges

    # -- queries --------------------------------------------------------

    def _new_cache(self) -> BlockCache:
        """A per-query cache reading through the engine's shared tier.

        Not a follower: the handle's pinned partitions stay probe-able
        even after the live layout retires them, so the per-query
        seen-sets must survive invalidation (shared-tier residency does
        not — retired runs simply miss, charged, deterministic).
        """
        return BlockCache(
            self._disk,
            enabled=self.config.block_cache,
            shared=self._shared_cache,
        )

    def warm(
        self,
        phis: Sequence[float],
        cache: Optional[BlockCache] = None,
        window_steps: Optional[int] = None,
    ) -> int:
        """Prefetch the block ranges accurate queries for ``phis`` probe.

        For each ``phi`` the TS filters ``(u, v)`` are generated exactly
        as the accurate search would, and every partition whose
        candidate range is confined to ``config.prefetch_blocks`` blocks
        is read in one charged ranged read into the shared tier.  A
        no-op (returns 0) when no shared tier is attached.  Returns the
        number of blocks charged by the warming pass.
        """
        if self._shared_cache is None:
            return 0
        if cache is None:
            cache = self._new_cache()
        combined = self.combined(window_steps)
        total = combined.total_size
        if total == 0:
            return 0
        from ..query.planner import QueryPlanner

        partitions = (
            self.partitions
            if window_steps is None
            else resolve_window_in(self.partitions, window_steps)
        )
        planner = QueryPlanner(partitions)
        charged_before = cache.blocks_charged
        for phi in phis:
            rank = max(1, min(rank_for_phi(phi, total), total))
            u, v = combined.generate_filters(rank)
            # No skip set across phis: each phi confines a different
            # block range, and the cache dedupes per block anyway.
            tasks = planner.prefetch_reads(u, v, self.config.prefetch_blocks)
            if tasks:
                self._executor.run_tasks(tasks, cache)
        return cache.blocks_charged - charged_before

    def _quick_bound(self, total: int, m_scope: int) -> float:
        hist_scope = max(0, total - m_scope)
        return (
            self.config.epsilon1 * hist_scope
            + self.config.epsilon2 * m_scope
        )

    def query_rank(
        self,
        rank: int,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
        cache: Optional[BlockCache] = None,
    ) -> "QueryResult":
        """Answer exactly as the engine would have at pin time."""
        from .engine import QueryResult

        if mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")
        if self.n_total == 0:
            raise ValueError("snapshot is empty")
        started = time.perf_counter()
        partitions, ss = self.scope(window_steps, step_range)
        combined = self.combined(window_steps, step_range)
        rank = max(1, min(int(rank), combined.total_size))
        quick_bound = self._quick_bound(
            combined.total_size, ss.stream_size
        )
        degraded = False
        if mode == "quick":
            value = combined.quick_response(rank)
            blocks = 0
            estimated = float(rank)
            iterations = 0
            truncated = False
            bound = quick_bound
        else:
            search = AccurateSearch(
                partitions=partitions,
                stream_summary=ss,
                combined=combined,
                config=self.config,
                rank=rank,
                stream_rank_fn=(
                    self.stream_rank if step_range is None else None
                ),
                cache=cache if cache is not None else self._new_cache(),
                executor=self._executor,
            )
            try:
                outcome = search.run()
            except DiskFault:
                # Same degradation semantics as the live engine: fall
                # back to the quick response, flag the result.
                if not self.config.degrade_on_fault:
                    raise
                outcome = None
                self._note_degraded()
            if outcome is None:
                degraded = True
                value = combined.quick_response(rank)
                blocks = 0
                estimated = float(rank)
                iterations = 0
                truncated = True
                bound = quick_bound
            else:
                value = outcome.value
                blocks = outcome.random_blocks
                estimated = outcome.estimated_rank
                iterations = outcome.iterations
                truncated = outcome.truncated
                bound = self.config.query_epsilon * ss.stream_size
        return QueryResult(
            value=int(value),
            target_rank=rank,
            total_size=combined.total_size,
            mode=mode,
            estimated_rank=estimated,
            disk_accesses=blocks,
            iterations=iterations,
            truncated=truncated,
            wall_seconds=time.perf_counter() - started,
            sim_seconds=blocks * self._disk.latency.seconds_per_random_block,
            window_steps=window_steps,
            query_workers=self._executor.workers,
            degraded=degraded,
            rank_error_bound=float(bound),
        )

    def _scope_total(
        self,
        window_steps: Optional[int],
        step_range: "Optional[tuple[int, int]]",
    ) -> int:
        if step_range is not None:
            partitions, _ = self.scope(step_range=step_range)
            return sum(len(p) for p in partitions)
        if window_steps is not None:
            partitions, _ = self.scope(window_steps=window_steps)
            return sum(len(p) for p in partitions) + self.m_stream
        return self.n_total

    def quantile(
        self,
        phi: float,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> "QueryResult":
        """A ``phi``-quantile of the pinned union (Definition 1)."""
        total = self._scope_total(window_steps, step_range)
        return self.query_rank(
            rank_for_phi(phi, total),
            mode=mode,
            window_steps=window_steps,
            step_range=step_range,
        )

    def quantile_many(
        self,
        phis: Sequence[float],
        mode: str = "quick",
        window_steps: Optional[int] = None,
    ) -> "List[QueryResult]":
        """Answer many quantiles against this one pinned view.

        Quick mode is the coalescer's workhorse: one (cached) TS merge,
        then a single vectorized rank-bound pass answers every ``phi``.
        Accurate mode shares the pinned view and one block cache across
        the searches, like :meth:`HybridQuantileEngine.quantiles`.
        """
        from .engine import QueryResult

        if mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")
        if self.n_total == 0:
            raise ValueError("snapshot is empty")
        if mode == "accurate":
            cache = self._new_cache()
            return [
                self.query_rank(
                    rank_for_phi(
                        phi, self._scope_total(window_steps, None)
                    ),
                    mode="accurate",
                    window_steps=window_steps,
                    cache=cache,
                )
                for phi in phis
            ]
        started = time.perf_counter()
        _, ss = self.scope(window_steps)
        combined = self.combined(window_steps)
        total = combined.total_size
        ranks = np.asarray(
            [
                max(1, min(rank_for_phi(phi, total), total))
                for phi in phis
            ],
            dtype=np.int64,
        )
        values = combined.quick_responses(ranks)
        bound = self._quick_bound(total, ss.stream_size)
        wall = time.perf_counter() - started
        return [
            QueryResult(
                value=int(value),
                target_rank=int(rank),
                total_size=total,
                mode="quick",
                estimated_rank=float(rank),
                disk_accesses=0,
                iterations=0,
                truncated=False,
                # the shared pass's wall time; attributing it to every
                # result keeps per-result latency honest for coalesced
                # batches (they all waited for the same merge).
                wall_seconds=wall,
                sim_seconds=0.0,
                window_steps=window_steps,
                query_workers=self._executor.workers,
                rank_error_bound=float(bound),
            )
            for rank, value in zip(ranks, values)
        ]
