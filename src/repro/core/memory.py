"""Memory budget model.

The paper's experiments sweep a main-memory budget (100-500 MB) and
split it 50/50 between the stream summary and the historical summary
(Section 3.1).  This module maps a budget in words (8-byte units) to
the error parameters ``eps_2`` (stream) and ``eps_1`` (historical) by
inverting the space bounds of Observation 1:

* stream side: the GK sketch needs ``O((1/eps) log(eps m))`` tuples of
  three words each, plus the ``beta_2``-entry extracted summary;
* historical side: ``kappa`` summaries of ``beta_1`` two-word entries
  per level, with ``ceil(log_kappa T)`` levels.

The same formulas power the "memory" axis of every benchmark, so a
bench written for "250 MB at paper scale" uses the proportionally
scaled word budget at simulation scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

WORDS_PER_MB = (1024 * 1024) // 8
_WORDS_PER_GK_TUPLE = 3
_WORDS_PER_SUMMARY_ENTRY = 2


def gk_tuple_estimate(epsilon: float, stream_size: int) -> float:
    """Model of the number of (v, g, delta) tuples GK keeps.

    The worst case is ``(11 / (2 eps)) log(2 eps m)`` (Greenwald &
    Khanna), but practical usage is dominated by the ``1 / (2 eps)``
    term with only a mild logarithmic drift.  This model is calibrated
    against this implementation's measured tuple counts (within ~35%,
    erring on the conservative side), so budgets derived from it
    correspond to memory the sketch actually uses — every contender in
    the benchmarks is sized through the same model, keeping the
    memory axis fair.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    m = max(2, stream_size)
    drift = 0.05 * math.log2(2.0 * epsilon * m + 1.0)
    return (1.0 / (2.0 * epsilon)) * (1.0 + max(0.0, drift))


def stream_summary_words(eps2: float, stream_size: int) -> float:
    """Words needed on the stream side for error parameter ``eps2``.

    The stream sketch runs GK at ``eps2 / 2`` so the extracted summary
    satisfies the one-sided guarantee of Lemma 1, plus ``beta_2`` words
    for the summary itself.
    """
    beta2 = math.ceil(1.0 / eps2) + 1
    return _WORDS_PER_GK_TUPLE * gk_tuple_estimate(eps2 / 2.0, stream_size) + beta2


def historical_summary_words(eps1: float, kappa: int, num_steps: int) -> float:
    """Words needed for all partition summaries (Lemma 8).

    ``kappa`` partitions per level, ``ceil(log_kappa T)`` levels,
    ``beta_1`` entries of (value, rank) per summary.
    """
    beta1 = math.ceil(1.0 / eps1) + 1
    levels = max(1, math.ceil(math.log(max(2, num_steps), kappa)))
    return _WORDS_PER_SUMMARY_ENTRY * beta1 * kappa * levels


def _invert_monotone(target_words: float, words_of_eps, lo: float = 1e-9,
                     hi: float = 0.5) -> float:
    """Find eps with words_of_eps(eps) ~= target_words (decreasing fn)."""
    if words_of_eps(hi) >= target_words:
        return hi
    if words_of_eps(lo) <= target_words:
        return lo
    for _ in range(200):
        mid = math.sqrt(lo * hi)  # bisect in log space
        if words_of_eps(mid) > target_words:
            lo = mid
        else:
            hi = mid
    return hi


def epsilon2_for_stream_words(words: float, stream_size: int) -> float:
    """Smallest stream error achievable within a word budget."""
    if words < 8:
        raise ValueError("stream budget too small (need at least 8 words)")
    return _invert_monotone(words, lambda e: stream_summary_words(e, stream_size))


def epsilon1_for_historical_words(
    words: float, kappa: int, num_steps: int
) -> float:
    """Smallest historical error achievable within a word budget."""
    if words < 8:
        raise ValueError("historical budget too small (need at least 8 words)")
    return _invert_monotone(
        words, lambda e: historical_summary_words(e, kappa, num_steps)
    )


def pure_gk_words(epsilon: float, total_size: int) -> float:
    """Words a pure-streaming GK sketch needs over the whole dataset."""
    return _WORDS_PER_GK_TUPLE * gk_tuple_estimate(epsilon, total_size) + 4


def epsilon_for_pure_gk_words(words: float, total_size: int) -> float:
    """Smallest GK error achievable within a word budget over N items."""
    if words < 8:
        raise ValueError("budget too small (need at least 8 words)")
    return _invert_monotone(words, lambda e: pure_gk_words(e, total_size))


def qdigest_words(epsilon: float, universe_log2: int) -> float:
    """Words a Q-Digest needs: 2 words per node.

    The worst case is 3 log(U)/eps nodes; measured usage of this
    implementation sits near 1.5 log(U)/eps (see
    ``evaluation.calibration``), which is what the model uses so the
    baseline gets the full benefit of its budget.
    """
    return 2 * 1.5 * universe_log2 / epsilon + 4


def epsilon_for_qdigest_words(words: float, universe_log2: int) -> float:
    """Smallest Q-Digest error achievable within a word budget."""
    if words < 8:
        raise ValueError("budget too small (need at least 8 words)")
    return min(0.5, 3.0 * universe_log2 / max(words - 4.0, 1.0))


@dataclass(frozen=True)
class MemoryBudget:
    """A main-memory budget with a stream/historical split.

    Parameters
    ----------
    total_words:
        Budget in 8-byte words.
    stream_fraction:
        Fraction of the budget given to the stream summary; the paper
        uses 0.5 and notes the optimal split as future work (our
        memory-split ablation explores it).
    """

    total_words: float
    stream_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.total_words <= 0:
            raise ValueError("total_words must be positive")
        if not 0 < self.stream_fraction < 1:
            raise ValueError("stream_fraction must be in (0, 1)")

    @classmethod
    def from_megabytes(
        cls, megabytes: float, stream_fraction: float = 0.5
    ) -> "MemoryBudget":
        """Build a budget from a size in megabytes."""
        return cls(total_words=megabytes * WORDS_PER_MB,
                   stream_fraction=stream_fraction)

    @property
    def stream_words(self) -> float:
        """Words held by the stream-side structures."""
        return self.total_words * self.stream_fraction

    @property
    def historical_words(self) -> float:
        """Words allotted to the historical summaries."""
        return self.total_words * (1.0 - self.stream_fraction)

    def epsilons(self, stream_size: int, kappa: int, num_steps: int
                 ) -> "tuple[float, float]":
        """Derive (eps1, eps2) that fit this budget."""
        eps2 = epsilon2_for_stream_words(self.stream_words, stream_size)
        eps1 = epsilon1_for_historical_words(
            self.historical_words, kappa, num_steps
        )
        return eps1, eps2


def epsilon_for_budget(
    budget: MemoryBudget, stream_size: int, kappa: int, num_steps: int
) -> float:
    """Single engine epsilon honoring Algorithm 1's eps1/eps2 ratios.

    The engine's invariants need ``eps1 = eps/2`` and ``eps2 = eps/4``;
    the binding constraint is whichever side needs the larger epsilon.
    """
    eps1, eps2 = budget.epsilons(stream_size, kappa, num_steps)
    return min(0.5, max(2.0 * eps1, 4.0 * eps2))
