"""Exact aggregates over historical + streaming data.

Quantiles need sketches; count, sum, min, max and mean do not — each
partition's aggregates are computed for free while it is written
(exactly like its summary), and the engine keeps running aggregates of
the live stream.  Any aligned scope (full union, suffix window, or
historical step range) therefore answers *exactly* with zero disk
accesses — the cheap complement to approximate quantile queries, and a
small taste of the paper's "other classes of aggregates" future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..warehouse.partition import Partition


@dataclass(frozen=True)
class AggregateStats:
    """Exact count / sum / min / max of one dataset."""

    count: int
    total: int
    minimum: Optional[int]
    maximum: Optional[int]

    @property
    def mean(self) -> float:
        """Arithmetic mean (NaN when empty)."""
        return self.total / self.count if self.count else float("nan")

    @staticmethod
    def empty() -> "AggregateStats":
        """The aggregate of no data."""
        return AggregateStats(count=0, total=0, minimum=None, maximum=None)

    @staticmethod
    def of_array(values: np.ndarray) -> "AggregateStats":
        """Exact aggregates of an array."""
        if values.size == 0:
            return AggregateStats.empty()
        return AggregateStats(
            count=int(values.size),
            total=int(values.sum()),
            minimum=int(values.min()),
            maximum=int(values.max()),
        )

    def with_value(self, value: int) -> "AggregateStats":
        """Aggregates after appending one element (O(1), no arrays)."""
        if self.count == 0:
            return AggregateStats(
                count=1, total=value, minimum=value, maximum=value
            )
        return AggregateStats(
            count=self.count + 1,
            total=self.total + value,
            minimum=min(self.minimum, value),
            maximum=max(self.maximum, value),
        )

    def merge(self, other: "AggregateStats") -> "AggregateStats":
        """Combine two aggregates."""
        if self.count == 0:
            return other
        if other.count == 0:
            return self
        return AggregateStats(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )


def partition_stats(partition: Partition) -> AggregateStats:
    """Aggregates of one partition.

    Reads the in-memory view: legitimate only because every partition's
    stats are conceptually computed while its data is written (no
    additional disk access), exactly like its summary.
    """
    return AggregateStats.of_array(np.asarray(partition.run.values))


def combine(parts: Iterable[AggregateStats]) -> AggregateStats:
    """Merge a sequence of aggregates into one."""
    result = AggregateStats.empty()
    for stats in parts:
        result = result.merge(stats)
    return result
