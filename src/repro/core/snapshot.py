"""Consistent read snapshots.

The paper's motivating systems (TidalRace, DataDepot) care about
*consistency*: a dashboard refreshing several quantiles must not see
half of them computed before a batch load and half after (Golab &
Johnson, "Consistency in a stream warehouse", is cited as [12]).

:class:`EngineSnapshot` pins a query view at creation time: the
partition list and a deep copy of the stream sketch.  Queries against
the snapshot answer as of that instant, no matter how much the engine
ingests or merges afterwards.  (In this simulation old partitions stay
reachable through the snapshot's references; a file-backed deployment
would pin them through manifest reference counts.)
"""

from __future__ import annotations

import time
from typing import List, Sequence

from ..faults.errors import DiskFault
from ..sketches.base import rank_for_phi
from ..sketches.gk import GKSketch
from ..warehouse.partition import Partition
from .bounds import CombinedSummary
from .config import EngineConfig
from .engine import HybridQuantileEngine, QueryResult
from .filters import AccurateSearch
from .summaries import StreamSummary


def _copy_sketch(sketch: GKSketch) -> GKSketch:
    copied = GKSketch(sketch.epsilon)
    copied._values = list(sketch._values)
    copied._g = list(sketch._g)
    copied._delta = list(sketch._delta)
    copied._n = sketch.n
    return copied


class EngineSnapshot:
    """An immutable, consistent view of an engine's queryable state."""

    def __init__(self, engine: HybridQuantileEngine) -> None:
        self.config: EngineConfig = engine.config
        self._disk = engine.disk
        # The engine's combined view — adopted partitions plus any
        # sealed-but-unmerged pending batches (staged on demand) — so a
        # snapshot taken mid-archive still covers the full union.
        self._partitions: List[Partition] = list(
            engine._queryable_partitions()
        )
        self._gk = _copy_sketch(engine._gk)
        self._ss: StreamSummary = StreamSummary.extract(
            self._gk, self.config.epsilon2
        )
        self.n_historical = sum(len(p) for p in self._partitions)
        self.m_stream = self._gk.n
        # Share the engine's executor (probe parallelism + fault
        # retries) and report degradations back to its counters; a
        # closed executor transparently runs inline, so a snapshot
        # outliving its engine still answers.
        self._executor = engine.query_executor
        self._note_degraded = engine._note_degraded_query
        # The snapshot covers everything sealed (including batches the
        # background archiver has not merged yet), so the step stamp is
        # the sealed step, not the archived one.
        self.created_at_step = engine.steps_sealed

    @property
    def n_total(self) -> int:
        """Total number of elements N = n + m."""
        return self.n_historical + self.m_stream

    def _stream_rank(self, value: int) -> float:
        if self._gk.n == 0:
            return 0.0
        lo, hi = self._gk.rank_bounds(int(value))
        return (lo + hi) / 2.0

    def query_rank(self, rank: int, mode: str = "accurate") -> QueryResult:
        """Answer exactly as the engine would have at snapshot time."""
        if mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")
        if self.n_total == 0:
            raise ValueError("snapshot is empty")
        started = time.perf_counter()
        summaries = [p.summary for p in self._partitions if len(p) > 0]
        combined = CombinedSummary.build(summaries, self._ss)
        rank = max(1, min(int(rank), combined.total_size))
        hist_scope = max(0, combined.total_size - self._ss.stream_size)
        quick_bound = (
            self.config.epsilon1 * hist_scope
            + self.config.epsilon2 * self._ss.stream_size
        )
        degraded = False
        if mode == "quick":
            value = combined.quick_response(rank)
            blocks = 0
            estimated = float(rank)
            iterations = 0
            truncated = False
            bound = quick_bound
        else:
            search = AccurateSearch(
                partitions=self._partitions,
                stream_summary=self._ss,
                combined=combined,
                config=self.config,
                rank=rank,
                stream_rank_fn=self._stream_rank,
                executor=self._executor,
            )
            try:
                outcome = search.run()
            except DiskFault:
                # Same degradation semantics as the live engine: fall
                # back to the quick response, flag the result.
                if not self.config.degrade_on_fault:
                    raise
                outcome = None
                self._note_degraded()
            if outcome is None:
                degraded = True
                value = combined.quick_response(rank)
                blocks = 0
                estimated = float(rank)
                iterations = 0
                truncated = True
                bound = quick_bound
            else:
                value = outcome.value
                blocks = outcome.random_blocks
                estimated = outcome.estimated_rank
                iterations = outcome.iterations
                truncated = outcome.truncated
                bound = self.config.query_epsilon * self._ss.stream_size
        return QueryResult(
            value=int(value),
            target_rank=rank,
            total_size=combined.total_size,
            mode=mode,
            estimated_rank=estimated,
            disk_accesses=blocks,
            iterations=iterations,
            truncated=truncated,
            wall_seconds=time.perf_counter() - started,
            sim_seconds=blocks * self._disk.latency.seconds_per_random_block,
            query_workers=self._executor.workers,
            degraded=degraded,
            rank_error_bound=float(bound),
        )

    def quantile(self, phi: float, mode: str = "accurate") -> QueryResult:
        """Return an approximate ``phi``-quantile (Definition 1)."""
        return self.query_rank(rank_for_phi(phi, self.n_total), mode=mode)

    def quantiles(
        self, phis: Sequence[float], mode: str = "accurate"
    ) -> List[QueryResult]:
        """Several quantiles, all consistent with one another."""
        return [self.quantile(phi, mode=mode) for phi in phis]


def snapshot(engine: HybridQuantileEngine) -> EngineSnapshot:
    """Pin a consistent read view of ``engine``."""
    return EngineSnapshot(engine)
