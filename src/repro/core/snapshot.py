"""Consistent read snapshots.

The paper's motivating systems (TidalRace, DataDepot) care about
*consistency*: a dashboard refreshing several quantiles must not see
half of them computed before a batch load and half after (Golab &
Johnson, "Consistency in a stream warehouse", is cited as [12]).

:class:`EngineSnapshot` pins a query view at creation time.  Since the
epoch layer landed it is a thin wrapper over
:meth:`~repro.core.engine.HybridQuantileEngine.pin` — one refcounted
:class:`~repro.core.epoch.SnapshotHandle` holding the partition list,
a copy-on-query snapshot of the stream sketch, and the epoch stamp.
Queries against the snapshot answer as of that instant, no matter how
much the engine ingests or merges afterwards.  (In this simulation old
partitions stay reachable through the handle's references; a
file-backed deployment would pin them through manifest reference
counts, released when the epoch retires.)
"""

from __future__ import annotations

from typing import List, Sequence

from .config import EngineConfig
from .engine import HybridQuantileEngine, QueryResult
from .epoch import SnapshotHandle


class EngineSnapshot:
    """An immutable, consistent view of an engine's queryable state.

    All queries are answered by the pinned handle, so several quantiles
    read off one snapshot are consistent with one another — and with
    any other snapshot pinned at the same epoch.  Call :meth:`close`
    (or use as a context manager) to release the epoch pin; the
    snapshot keeps answering afterwards.
    """

    def __init__(self, engine: HybridQuantileEngine) -> None:
        self.config: EngineConfig = engine.config
        # The engine's combined view — adopted partitions plus any
        # sealed-but-unmerged pending batches (staged on demand) — so a
        # snapshot taken mid-archive still covers the full union.
        self._handle: SnapshotHandle = engine.pin()
        self.n_historical = self._handle.n_historical
        self.m_stream = self._handle.m_stream
        # The snapshot covers everything sealed (including batches the
        # background archiver has not merged yet), so the step stamp is
        # the sealed step, not the archived one.
        self.created_at_step = self._handle.created_at_step

    @property
    def epoch(self) -> int:
        """The engine epoch this snapshot is pinned at."""
        return self._handle.epoch

    @property
    def handle(self) -> SnapshotHandle:
        """The underlying pinned handle (the serving layer's currency)."""
        return self._handle

    @property
    def n_total(self) -> int:
        """Total number of elements N = n + m."""
        return self._handle.n_total

    def close(self) -> None:
        """Release the epoch pin (idempotent); queries keep working."""
        self._handle.release()

    def __enter__(self) -> "EngineSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def query_rank(self, rank: int, mode: str = "accurate") -> QueryResult:
        """Answer exactly as the engine would have at snapshot time."""
        return self._handle.query_rank(rank, mode=mode)

    def quantile(self, phi: float, mode: str = "accurate") -> QueryResult:
        """Return an approximate ``phi``-quantile (Definition 1)."""
        return self._handle.quantile(phi, mode=mode)

    def quantiles(
        self, phis: Sequence[float], mode: str = "accurate"
    ) -> List[QueryResult]:
        """Several quantiles, all consistent with one another."""
        return [self._handle.quantile(phi, mode=mode) for phi in phis]


def snapshot(engine: HybridQuantileEngine) -> EngineSnapshot:
    """Pin a consistent read view of ``engine``."""
    return EngineSnapshot(engine)
