"""The paper's core contribution: the hybrid quantile engine."""

from .bounds import CombinedSummary
from .config import EngineConfig, ServingConfig
from .engine import HybridQuantileEngine, MemoryReport, QueryResult, StepReport
from .epoch import EpochRegistry, EpochStats, SnapshotHandle
from .monitoring import (
    HealthRule,
    MonitorRule,
    QuantileAlert,
    QuantileWatcher,
    ReliabilityAlert,
    ServiceAlert,
    ServiceRule,
)
from .snapshot import EngineSnapshot, snapshot
from .memory import (
    WORDS_PER_MB,
    MemoryBudget,
    epsilon_for_budget,
    gk_tuple_estimate,
    historical_summary_words,
    stream_summary_words,
)
from .summaries import PartitionSummary, StreamSummary
from .windows import WindowNotAlignedError, resolve_window

__all__ = [
    "CombinedSummary",
    "EngineConfig",
    "EpochRegistry",
    "EpochStats",
    "ServingConfig",
    "SnapshotHandle",
    "HybridQuantileEngine",
    "MemoryReport",
    "QueryResult",
    "StepReport",
    "HealthRule",
    "MonitorRule",
    "QuantileAlert",
    "QuantileWatcher",
    "ReliabilityAlert",
    "ServiceAlert",
    "ServiceRule",
    "EngineSnapshot",
    "snapshot",
    "WORDS_PER_MB",
    "MemoryBudget",
    "epsilon_for_budget",
    "gk_tuple_estimate",
    "historical_summary_words",
    "stream_summary_words",
    "PartitionSummary",
    "StreamSummary",
    "WindowNotAlignedError",
    "resolve_window",
]
