"""The paper's core contribution: the hybrid quantile engine."""

from .bounds import CombinedSummary
from .config import EngineConfig
from .engine import HybridQuantileEngine, MemoryReport, QueryResult, StepReport
from .monitoring import (
    HealthRule,
    MonitorRule,
    QuantileAlert,
    QuantileWatcher,
    ReliabilityAlert,
)
from .snapshot import EngineSnapshot, snapshot
from .memory import (
    WORDS_PER_MB,
    MemoryBudget,
    epsilon_for_budget,
    gk_tuple_estimate,
    historical_summary_words,
    stream_summary_words,
)
from .summaries import PartitionSummary, StreamSummary
from .windows import WindowNotAlignedError, resolve_window

__all__ = [
    "CombinedSummary",
    "EngineConfig",
    "HybridQuantileEngine",
    "MemoryReport",
    "QueryResult",
    "StepReport",
    "HealthRule",
    "MonitorRule",
    "QuantileAlert",
    "QuantileWatcher",
    "ReliabilityAlert",
    "EngineSnapshot",
    "snapshot",
    "WORDS_PER_MB",
    "MemoryBudget",
    "epsilon_for_budget",
    "gk_tuple_estimate",
    "historical_summary_words",
    "stream_summary_words",
    "PartitionSummary",
    "StreamSummary",
    "WindowNotAlignedError",
    "resolve_window",
]
