"""Engine configuration.

Algorithm 1 of the paper fixes the error split ``eps_1 = eps / 2`` for
the historical summaries and ``eps_2 = eps / 4`` for the stream sketch,
with summary lengths ``beta_1 = ceil(1/eps_1) + 1`` and
``beta_2 = ceil(1/eps_2) + 1``.  :class:`EngineConfig` carries those
parameters plus the simulation knobs (block size, merge threshold,
query optimizations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional  # noqa: F401 (Any used in annotations)


@dataclass(frozen=True)
class EngineConfig:
    """All tunables of the hybrid engine.

    Parameters
    ----------
    epsilon:
        Overall error parameter: accurate queries are answered within
        ``O(epsilon * m)`` rank error, where m is the stream size.
    kappa:
        Merge threshold of the historical store (max partitions per
        level).
    block_elems:
        Elements per disk block of the simulated device.
    eps1, eps2:
        Optional overrides of the historical/stream error split
        (used by the memory-split ablation).  Defaults follow
        Algorithm 1.
    block_cache:
        Enable the Section 2.4 per-query block cache optimization.
    probe_budget:
        Optional cap on random block reads per query: the search stops
        early once the cap is reached and returns its current best
        answer (the accuracy/disk-access tradeoff discussed in the
        paper's Section 4).
    universe_log2:
        Hint for value-domain width; bounds the value-bisection depth.
    compaction:
        Historical merge policy: ``"tiered"`` (the paper's — up to
        kappa partitions per level) or ``"leveled"`` (LevelDB-style —
        one partition per level, the Section 4 "improved data
        structures" ablation).
    query_strategy:
        Accurate-response endgame: ``"bisect"`` refines the value
        bisection to the rank-crossing point (default; see
        docs/THEORY.md), while ``"fetch"`` follows Lemma 5 literally —
        narrow the filters until few elements remain between them,
        then read that residual range from every partition and select
        exactly.
    residual_fetch_elems:
        Residual-range size that stops the ``"fetch"`` strategy's
        narrowing (default ``max(ceil(1/eps), block_elems)``, the
        paper's ``1/eps``).
    query_workers:
        Worker threads used by the accurate response to probe disk
        partitions in parallel (the Section 4 parallel-read
        optimization, executed by :mod:`repro.query`).  The default of
        1 runs every probe serially on the calling thread — the exact
        pre-executor code path, so all historical numbers reproduce
        bit-for-bit.  Answers and I/O counts are identical for any
        worker count; only wall-clock changes.
    ingest_mode:
        Archiving mode for ``end_time_step``: ``"sync"`` (default)
        blocks the stream while the batch is sorted, written and merged
        — the exact historical code path; ``"background"`` seals the
        batch and hands it to the :mod:`repro.ingest` archiver thread,
        so the stream (and queries) continue while sort + level merges
        run off the hot path.  After ``engine.flush()`` the answers,
        I/O counters and invariants are bit-identical across modes.
    ingest_queue_batches:
        Backpressure bound of the background archiver: at most this
        many sealed batches may be pending (staged but not merged)
        before ``end_time_step`` blocks, accumulating stall seconds.
    archive_retries:
        Consecutive transient-fault retries the background archiver
        spends on one batch before declaring it failed (the batch stays
        queued and queryable either way; the failure surfaces as a
        typed error on the next producer call or ``close``).
    probe_retries:
        Transient-fault retries the query executor spends on one
        partition probe before the accurate search gives up and — with
        ``degrade_on_fault`` — the query falls back to the quick
        response.
    retry_backoff_seconds, retry_backoff_cap_seconds:
        Capped exponential backoff between retries: retry ``k`` sleeps
        ``min(base * 2**(k-1), cap)``.
    degrade_on_fault:
        When an accurate query exhausts its probe retries, answer from
        the in-memory summaries instead (quick response, widened error
        bound, ``QueryResult.degraded = True``) rather than raising the
        fault to the caller.
    shared_cache_blocks:
        Capacity (in blocks) of the process-wide shared block cache
        (:mod:`repro.storage.shared_cache`) that per-query caches read
        through.  The default of 0 disables the shared tier entirely —
        every query pays the paper's per-query accounting exactly, the
        historical behavior.  With a positive budget, a block already
        resident from an earlier query (or a prefetch) is free; only
        shared-tier misses are charged.
    prefetch_blocks:
        Accurate-path prefetch threshold: once the filter ``(u, v)``
        narrows a partition's candidate range to at most this many
        blocks, the executor reads the whole range ahead of the binary
        search in one batched ranged read.  Only active when the shared
        tier is attached (``shared_cache_blocks > 0``), so legacy
        accounting is untouched when the cache is off.
    sketch_backend:
        Live stream-sketch implementation: ``"gk"`` (default — the
        paper's Greenwald-Khanna sketch, deterministic ``eps``
        guarantee) or ``"kll"`` (the mergeable Karnin-Lang-Liberty
        compactor sketch, ``eps`` guarantee w.h.p.).  KLL is what a
        sharded cluster needs: per-shard sketches merge without error
        blow-up, which GK summaries cannot do.  Single-engine answers
        remain within the same ``eps * m`` contract either way.
    min_gather_shards:
        Cluster partial-gather quorum: the minimum number of shards
        that must contribute before a query answers at all.  The
        default of 0 keeps the strict pre-fault-tolerance behavior —
        every shard must answer, a missing or faulting shard fails the
        query (or degrades it, per ``degrade_on_fault``).  With a
        positive quorum, a gather missing up to ``N - quorum`` shards
        still answers, widening ``rank_error_bound`` by the missing
        shards' element counts and attaching a
        :class:`~repro.core.bounds.PartialResult` to the response.
    wal_fsync:
        Whether an attached ingest write-ahead log fsyncs every
        appended frame before the update is acked (default).  Turning
        it off keeps the framing and replay machinery but downgrades
        the durability guarantee to the OS page cache — a benchmark
        escape hatch, not a production setting.
    storage_backend:
        Where sorted-run payload bytes live
        (:mod:`repro.storage.backends`): ``"simulated"`` (default —
        in-memory arrays, zero real I/O, the deterministic historical
        behavior), ``"mmap"`` (one real file per run, atomic
        write/fsync/rename commits, mmap reads), or ``"object"``
        (tiered: hot run files plus an emulated S3-like bucket that
        cold levels age into, with GET/PUT/LIST request accounting).
        Block-level charges — and therefore every answer and every
        ``DiskStats`` counter — are bit-identical across backends.
    storage_dir:
        Directory the ``mmap``/``object`` backends keep their files
        under.  ``None`` (default) uses a private temporary directory
        that is removed when the engine closes; checkpoints and
        clusters pass an explicit directory under their layout.
    object_tier_level:
        Tiering policy threshold of the ``object`` backend: a run
        placed at this warehouse level or deeper migrates from the hot
        file tier into the object bucket (one PUT), after which its
        cold reads are GET requests.  Level 0 sends every run straight
        to the bucket; higher values keep more of the young levels hot.
    object_get_ms, object_put_ms:
        Modeled per-request round-trip latency of the emulated object
        store, in milliseconds, folded into
        ``SimulatedDisk.simulated_seconds``.
    fetch_coalescing:
        When ``True`` (default) cold reads take the fast path: the
        shared cache dedupes concurrent misses on the same block into
        one in-flight fetch (single-flight), and the object backend
        keeps a fetched-block registry so a charged range only GETs
        its not-yet-streamed sub-ranges, widened by readahead.
        ``False`` reproduces the strict pre-coalescing accounting (one
        request per charge event, shard-lock serialization) — the
        baseline cell of the cold-read ablation.  Either way answers
        and charged ``DiskStats`` blocks are bit-identical; only
        request counts and modeled request latency differ.
    readahead_blocks:
        How many extra blocks each cold ranged GET streams past the
        requested range (charge-neutral: streamed, never charged).
        ``None`` (default) derives the break-even width from the
        latency model — widen while the marginal per-block cost stays
        below the amortized request setup cost,
        ``seconds_per_get // seconds_per_get_block`` (50 blocks at the
        default 5 ms GET / 0.1 ms-per-block).  ``0`` disables
        readahead while keeping coalescing.
    hot_tier_bytes:
        Capacity bound on the object backend's hot file tier, in
        bytes.  When allocation or promotion pushes the tier past the
        budget, least-recently-read unpinned runs are demoted to the
        bucket (atomic migration, counted in ``evicted_runs``).  Runs
        referenced by a live ``SnapshotHandle`` are pinned and never
        evicted — the tier may temporarily exceed the budget instead.
        ``None`` (default) leaves the hot tier unbounded.
    """

    epsilon: float
    kappa: int = 10
    block_elems: int = 1024
    eps1: Optional[float] = None
    eps2: Optional[float] = None
    block_cache: bool = True
    probe_budget: Optional[int] = None
    universe_log2: int = 34
    compaction: str = "tiered"
    query_strategy: str = "bisect"
    residual_fetch_elems: Optional[int] = None
    query_workers: int = 1
    ingest_mode: str = "sync"
    ingest_queue_batches: int = 4
    archive_retries: int = 32
    probe_retries: int = 3
    retry_backoff_seconds: float = 0.002
    retry_backoff_cap_seconds: float = 0.25
    degrade_on_fault: bool = True
    shared_cache_blocks: int = 0
    prefetch_blocks: int = 4
    sketch_backend: str = "gk"
    min_gather_shards: int = 0
    wal_fsync: bool = True
    storage_backend: str = "simulated"
    storage_dir: Optional[str] = None
    object_tier_level: int = 1
    object_get_ms: float = 5.0
    object_put_ms: float = 10.0
    fetch_coalescing: bool = True
    readahead_blocks: Optional[int] = None
    hot_tier_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 < self.epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if self.kappa < 2:
            raise ValueError("kappa must be >= 2")
        if self.block_elems < 1:
            raise ValueError("block_elems must be >= 1")
        for name in ("eps1", "eps2"):
            value = getattr(self, name)
            if value is not None and not 0 < value < 1:
                raise ValueError(f"{name} must be in (0, 1)")
        if self.compaction not in ("tiered", "leveled"):
            raise ValueError("compaction must be 'tiered' or 'leveled'")
        if self.query_strategy not in ("bisect", "fetch"):
            raise ValueError("query_strategy must be 'bisect' or 'fetch'")
        if (self.residual_fetch_elems is not None
                and self.residual_fetch_elems < 1):
            raise ValueError("residual_fetch_elems must be >= 1")
        if self.query_workers < 1:
            raise ValueError("query_workers must be >= 1")
        if self.ingest_mode not in ("sync", "background"):
            raise ValueError("ingest_mode must be 'sync' or 'background'")
        if self.ingest_queue_batches < 1:
            raise ValueError("ingest_queue_batches must be >= 1")
        if self.archive_retries < 0:
            raise ValueError("archive_retries must be >= 0")
        if self.probe_retries < 0:
            raise ValueError("probe_retries must be >= 0")
        if self.retry_backoff_seconds < 0:
            raise ValueError("retry_backoff_seconds must be >= 0")
        if self.retry_backoff_cap_seconds < 0:
            raise ValueError("retry_backoff_cap_seconds must be >= 0")
        if self.shared_cache_blocks < 0:
            raise ValueError("shared_cache_blocks must be >= 0")
        if self.prefetch_blocks < 0:
            raise ValueError("prefetch_blocks must be >= 0")
        if self.sketch_backend not in ("gk", "kll"):
            raise ValueError("sketch_backend must be 'gk' or 'kll'")
        if self.min_gather_shards < 0:
            raise ValueError("min_gather_shards must be >= 0")
        if self.storage_backend not in ("simulated", "mmap", "object"):
            raise ValueError(
                "storage_backend must be 'simulated', 'mmap' or 'object'"
            )
        if self.object_tier_level < 0:
            raise ValueError("object_tier_level must be >= 0")
        if self.object_get_ms < 0:
            raise ValueError("object_get_ms must be >= 0")
        if self.object_put_ms < 0:
            raise ValueError("object_put_ms must be >= 0")
        if self.readahead_blocks is not None and self.readahead_blocks < 0:
            raise ValueError("readahead_blocks must be >= 0")
        if self.hot_tier_bytes is not None and self.hot_tier_bytes < 0:
            raise ValueError("hot_tier_bytes must be >= 0")

    @property
    def epsilon1(self) -> float:
        """Historical-summary error parameter (Algorithm 1: eps / 2)."""
        return self.eps1 if self.eps1 is not None else self.epsilon / 2.0

    @property
    def epsilon2(self) -> float:
        """Stream-sketch error parameter (Algorithm 1: eps / 4)."""
        return self.eps2 if self.eps2 is not None else self.epsilon / 4.0

    @property
    def beta1(self) -> int:
        """Length of each historical partition summary."""
        return math.ceil(1.0 / self.epsilon1) + 1

    @property
    def beta2(self) -> int:
        """Length of the stream summary."""
        return math.ceil(1.0 / self.epsilon2) + 1

    @property
    def query_epsilon(self) -> float:
        """Acceptance slack of the accurate query, as a fraction of m.

        Algorithm 8 stops when the estimated rank of the probe is
        within ``epsilon * m`` of the target.  When the eps1/eps2 split
        is overridden, the slack follows the stream-side error
        (``4 * eps2``), which is what drives the final answer quality.
        """
        if self.eps2 is not None:
            return 4.0 * self.eps2
        return self.epsilon

    @property
    def archive_retry_policy(self) -> "Any":
        """Retry policy the background archiver runs batches under."""
        from ..faults.retry import RetryPolicy

        return RetryPolicy(
            max_retries=self.archive_retries,
            backoff_seconds=self.retry_backoff_seconds,
            backoff_cap_seconds=self.retry_backoff_cap_seconds,
        )

    @property
    def probe_retry_policy(self) -> "Any":
        """Retry policy the query executor runs partition probes under."""
        from ..faults.retry import RetryPolicy

        return RetryPolicy(
            max_retries=self.probe_retries,
            backoff_seconds=self.retry_backoff_seconds,
            backoff_cap_seconds=self.retry_backoff_cap_seconds,
        )

    @property
    def residual_threshold(self) -> int:
        """Residual size for the fetch strategy (Lemma 5's 1/eps)."""
        if self.residual_fetch_elems is not None:
            return self.residual_fetch_elems
        return max(math.ceil(1.0 / self.epsilon), self.block_elems)

    def build_storage_backend(self) -> "Any":
        """Construct the :class:`~repro.storage.backends.BlockDevice`.

        One fresh backend per engine: file-backed backends must not
        share a directory, so callers needing distinct locations (e.g.
        cluster shards) derive configs with distinct ``storage_dir``.
        """
        from ..storage.backends import ObjectStoreLatency, make_backend

        return make_backend(
            self.storage_backend,
            directory=self.storage_dir,
            object_tier_level=self.object_tier_level,
            latency=ObjectStoreLatency(
                seconds_per_get=self.object_get_ms / 1e3,
                seconds_per_put=self.object_put_ms / 1e3,
            ),
            readahead_blocks=self.readahead_blocks,
            coalesce=self.fetch_coalescing,
            hot_tier_bytes=self.hot_tier_bytes,
        )


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of the concurrent query service (:mod:`repro.serving`).

    Parameters
    ----------
    max_queue:
        Admission bound on requests waiting to execute (across modes
        unless ``accurate_queue`` splits the budget).  A request
        arriving past the bound is rejected with a typed
        :class:`~repro.serving.admission.Overloaded` — bounded queues
        instead of unbounded latency collapse.
    accurate_queue:
        Optional separate bound for accurate-path requests (their
        probes hold disk resources much longer than quick answers).
        ``None`` shares ``max_queue``.
    quick_workers:
        Dispatcher threads draining the quick-path queue.  One is the
        sweet spot: the coalescer batches everything that arrived in a
        window into one vectorized pass, so more dispatchers only
        fragment batches.
    accurate_workers:
        Worker threads running accurate searches concurrently (each
        search internally fans partition probes over the engine's
        ``query_workers`` pool).
    coalesce:
        Batch quick requests pinned at the same epoch into one TS merge
        plus one vectorized rank-bound pass (the tentpole win: merges
        per served request drop below 1).
    coalesce_window_ms:
        How long the dispatcher lingers after taking the first request
        of a batch, letting concurrent arrivals join it.
    coalesce_max_batch:
        Hard cap on requests per coalesced batch.
    degrade_on_overload:
        When the accurate queue is full, degrade the request to the
        quick path (flagged on the result) instead of rejecting it —
        the serving-side analogue of ``degrade_on_fault``.
    metrics_epsilon:
        Error parameter of the GK sketches backing the service's
        latency histograms (our own summaries eating our dogfood).
    """

    max_queue: int = 64
    accurate_queue: Optional[int] = None
    quick_workers: int = 1
    accurate_workers: int = 2
    coalesce: bool = True
    coalesce_window_ms: float = 2.0
    coalesce_max_batch: int = 64
    degrade_on_overload: bool = False
    metrics_epsilon: float = 0.01

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.accurate_queue is not None and self.accurate_queue < 1:
            raise ValueError("accurate_queue must be >= 1")
        if self.quick_workers < 1:
            raise ValueError("quick_workers must be >= 1")
        if self.accurate_workers < 1:
            raise ValueError("accurate_workers must be >= 1")
        if self.coalesce_window_ms < 0:
            raise ValueError("coalesce_window_ms must be >= 0")
        if self.coalesce_max_batch < 1:
            raise ValueError("coalesce_max_batch must be >= 1")
        if not 0 < self.metrics_epsilon < 1:
            raise ValueError("metrics_epsilon must be in (0, 1)")

    @property
    def accurate_queue_bound(self) -> int:
        """The effective accurate-path admission bound."""
        return (
            self.accurate_queue
            if self.accurate_queue is not None
            else self.max_queue
        )
