"""Shard routing: deterministic value -> shard placement.

A cluster splits one logical stream across N engine shards.  The
router decides placement, and everything downstream (per-shard
sketches, per-shard epochs, the fused query path) relies on two
properties:

* **determinism** — the same value always lands on the same shard, so
  a replay of a recorded per-shard feed reconstructs each shard
  bit-for-bit (the equivalence harness leans on this);
* **order preservation within a shard** — ``route_many`` keeps each
  shard's elements in arrival order, so fanning a batch out is
  indistinguishable from each shard having observed its sub-stream
  element by element (the same lazy-absorption contract the engines
  already honor).

Two strategies:

``"hash"``
    A splitmix64-style avalanche of the value picks the shard.
    Statistically balanced for any input distribution; the default.
``"range"``
    ``bounds`` (length ``shards - 1``, strictly increasing) cut the
    value domain into contiguous shard ranges via ``searchsorted`` —
    shard 0 gets ``value <= bounds[0]``, and so on.  Useful when
    per-shard locality matters more than balance.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

_STRATEGIES = ("hash", "range")

_MIX_INCREMENT = np.uint64(0x9E3779B97F4A7C15)
_MIX_MULT_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MULT_2 = np.uint64(0x94D049BB133111EB)


def _mix(values: np.ndarray) -> np.ndarray:
    """Splitmix64 finalizer over a uint64 view of the values.

    Negative int64 inputs wrap into uint64 deterministically; all
    arithmetic is modulo 2**64 by construction.
    """
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64) + _MIX_INCREMENT
        z = (z ^ (z >> np.uint64(30))) * _MIX_MULT_1
        z = (z ^ (z >> np.uint64(27))) * _MIX_MULT_2
        return z ^ (z >> np.uint64(31))


class ShardRouter:
    """Deterministic hash- or range-partitioner over ``shards`` shards."""

    def __init__(
        self,
        shards: int,
        strategy: str = "hash",
        bounds: Optional[Sequence[int]] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
            )
        self.shards = int(shards)
        self.strategy = strategy
        if strategy == "range":
            if bounds is None or len(bounds) != shards - 1:
                raise ValueError(
                    "range strategy needs exactly shards - 1 bounds"
                )
            arr = np.asarray(list(bounds), dtype=np.int64)
            if arr.size > 1 and not np.all(np.diff(arr) > 0):
                raise ValueError("bounds must be strictly increasing")
            self.bounds: Optional[np.ndarray] = arr
        else:
            if bounds is not None:
                raise ValueError("bounds only apply to the range strategy")
            self.bounds = None

    def shard_indices(self, values: np.ndarray) -> np.ndarray:
        """Shard index per element (vectorized, arrival order kept)."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            arr = arr.ravel()
        if self.shards == 1:
            return np.zeros(arr.size, dtype=np.int64)
        if self.strategy == "hash":
            return (_mix(arr) % np.uint64(self.shards)).astype(np.int64)
        return np.searchsorted(self.bounds, arr, side="left").astype(
            np.int64
        )

    def shard_of(self, value: int) -> int:
        """Shard index of one value — equals ``shard_indices([value])[0]``."""
        return int(
            self.shard_indices(np.asarray([value], dtype=np.int64))[0]
        )

    def route_many(self, values: np.ndarray) -> List[np.ndarray]:
        """Split a batch into per-shard arrays in one vectorized pass.

        Returns one array per shard (possibly empty), each preserving
        the batch's arrival order — the property that makes a fanned
        batch equivalent to per-element routing.
        """
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            arr = arr.ravel()
        if self.shards == 1:
            return [arr]
        indices = self.shard_indices(arr)
        return [arr[indices == shard] for shard in range(self.shards)]

    def to_manifest(self) -> dict:
        """JSON-safe description, round-tripped by :meth:`from_manifest`."""
        return {
            "shards": self.shards,
            "strategy": self.strategy,
            "bounds": (
                None if self.bounds is None else [int(b) for b in self.bounds]
            ),
        }

    @classmethod
    def from_manifest(cls, manifest: dict) -> "ShardRouter":
        """Rebuild a router from :meth:`to_manifest` output."""
        return cls(
            int(manifest["shards"]),
            strategy=manifest["strategy"],
            bounds=manifest["bounds"],
        )
