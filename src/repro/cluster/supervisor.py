"""Supervised shard recovery: quarantine, restore, rejoin.

:class:`ShardSupervisor` closes the fault-tolerance loop around
:class:`~repro.cluster.engine.ClusterEngine`.  The cluster's side of
the contract is mechanical — :meth:`kill_shard
<repro.cluster.engine.ClusterEngine.kill_shard>` turns a poisoned shard
into a WAL-banking quarantined slot, :meth:`rejoin_shard
<repro.cluster.engine.ClusterEngine.rejoin_shard>` swaps a caught-up
engine back in — and the supervisor drives the middle: health-check
the live shards, restore each quarantined one from its ``shard-NN/``
checkpoint plus WAL roll-forward, and retry with capped (optionally
jittered) backoff from :class:`~repro.faults.retry.RetryPolicy` until
the shard rejoins or the attempt budget is spent.

The state machine per shard::

    HEALTHY --fault--> QUARANTINED --restore ok--> HEALTHY
                           |  ^
          restore failed   |  | backoff elapsed
                           v  |
                        WAITING --budget spent--> FAILED

Everything is deterministic under test: :meth:`tick` takes an explicit
``now``, backoff delays come from the policy's pure schedule, and every
transition is appended to :attr:`events` — the chaos ablation asserts
recovery timing straight off that transcript.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..faults.retry import RetryPolicy
from ..persistence.checkpoint import load_engine
from .engine import ClusterEngine, shard_wal_dir

#: event action labels, in the order a recovery normally emits them.
QUARANTINED = "quarantined"
RESTORE_ATTEMPT = "restore_attempt"
RESTORED = "restored"
RETRY_SCHEDULED = "retry_scheduled"
FAILED = "failed"


@dataclass(frozen=True)
class RecoveryEvent:
    """One supervisor state transition, for the recovery transcript."""

    time: float
    shard: int
    action: str
    detail: str = ""

    def as_dict(self) -> dict:
        """JSON-ready form for transcript artifacts."""
        return {
            "time": self.time,
            "shard": self.shard,
            "action": self.action,
            "detail": self.detail,
        }


class ShardSupervisor:
    """Health-checks a cluster and restores its quarantined shards.

    Parameters
    ----------
    cluster:
        The cluster to supervise.  The supervisor never constructs
        shards itself; it restores them through
        :func:`~repro.persistence.checkpoint.load_engine` and hands
        them back via ``rejoin_shard``.
    checkpoint_dir:
        Root of a :func:`~repro.cluster.persistence.save_cluster`
        checkpoint — restores read ``shard-NN/`` under it.
    retry:
        Backoff budget and schedule for restore attempts.  Attempt
        ``k``'s delay is ``retry.sleep_before(k)`` — deterministic,
        optionally jittered by the policy's seed.
    health_check:
        Optional ``(index, engine) -> Optional[str]`` probe run over
        live shards each tick; a non-``None`` reason quarantines the
        shard.  The default probe calls ``engine.check_invariants()``
        and reports any exception.
    clock:
        Time source used when :meth:`tick` is called without ``now``
        (defaults to :func:`time.monotonic`).  Tests pass explicit
        ``now`` values and never touch the wall clock.
    """

    def __init__(
        self,
        cluster: ClusterEngine,
        checkpoint_dir: "str | Path",
        retry: Optional[RetryPolicy] = None,
        health_check: Optional[
            Callable[[int, object], Optional[str]]
        ] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.cluster = cluster
        self.checkpoint_dir = Path(checkpoint_dir)
        self.retry = retry if retry is not None else RetryPolicy(
            max_retries=3, backoff_seconds=0.1, backoff_cap_seconds=2.0
        )
        self._health_check = (
            health_check if health_check is not None else self._default_probe
        )
        self._clock = clock
        self.events: List[RecoveryEvent] = []
        self._attempts: Dict[int, int] = {}
        self._next_due: Dict[int, float] = {}
        self._failed: Dict[int, str] = {}

    # -- introspection --------------------------------------------------

    @property
    def failed_shards(self) -> Dict[int, str]:
        """Shards whose restore budget is spent -> last failure reason."""
        return dict(self._failed)

    @property
    def pending_shards(self) -> List[int]:
        """Quarantined shards still inside their restore budget."""
        return sorted(
            index
            for index in self.cluster.quarantined_shards
            if index not in self._failed
        )

    def attempts(self, shard: int) -> int:
        """Restore attempts made for ``shard`` so far."""
        return self._attempts.get(shard, 0)

    def dump_events(self, path: "str | Path") -> Path:
        """Write the recovery transcript as JSON (CI artifact)."""
        import json

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                [event.as_dict() for event in self.events], indent=2
            )
        )
        return path

    # -- the supervision loop -------------------------------------------

    @staticmethod
    def _default_probe(index: int, engine: object) -> Optional[str]:
        del index
        try:
            engine.check_invariants()  # type: ignore[attr-defined]
        except BaseException as exc:  # noqa: BLE001 - any break is a fault
            return f"{type(exc).__name__}: {exc}"
        return None

    def _emit(
        self, now: float, shard: int, action: str, detail: str = ""
    ) -> None:
        self.events.append(RecoveryEvent(now, shard, action, detail))

    def tick(self, now: Optional[float] = None) -> List[RecoveryEvent]:
        """One supervision pass; returns the events it emitted.

        Health-checks every live shard (quarantining failures), then
        attempts one restore for each quarantined shard whose backoff
        has elapsed.  Never sleeps: failed attempts schedule a
        ``next_due`` and return, so callers — a loop thread in a real
        deployment, the chaos harness in tests — control the clock.
        """
        if now is None:
            now = self._clock()
        emitted_from = len(self.events)
        # 1. Probe live shards.
        for index, engine in enumerate(self.cluster.shards):
            if engine is None:
                continue
            reason = self._health_check(index, engine)
            if reason is not None:
                self.cluster.kill_shard(index, reason)
                self._emit(now, index, QUARANTINED, reason)
        # 2. Restore due quarantined shards.
        for index in sorted(self.cluster.quarantined_shards):
            if index in self._failed:
                continue
            if self._next_due.get(index, now) > now:
                continue
            self._restore(index, now)
        return self.events[emitted_from:]

    def _restore(self, shard: int, now: float) -> None:
        attempt = self._attempts.get(shard, 0) + 1
        self._attempts[shard] = attempt
        self._emit(now, shard, RESTORE_ATTEMPT, f"attempt {attempt}")
        wal_root = self.cluster.wal_root
        # The slot's retained writer must close before load_engine
        # opens its own on the same directory (one writer per WAL).
        self.cluster.release_wal(shard)
        engine = None
        try:
            engine = load_engine(
                self.checkpoint_dir / f"shard-{shard:02d}",
                disk=self.cluster.new_shard_disk(shard),
                wal_dir=(
                    shard_wal_dir(wal_root, shard)
                    if wal_root is not None
                    else None
                ),
            )
            self.cluster.rejoin_shard(shard, engine)
        except BaseException as exc:  # noqa: BLE001 - any break retries
            if engine is not None:
                try:
                    engine.close()
                except BaseException:  # noqa: BLE001 - best effort
                    pass
            self.cluster.reopen_wal(shard)
            reason = f"{type(exc).__name__}: {exc}"
            if attempt > self.retry.max_retries:
                self._failed[shard] = reason
                self._emit(now, shard, FAILED, reason)
                return
            delay = self.retry.sleep_before(attempt)
            self._next_due[shard] = now + delay
            self._emit(
                now, shard, RETRY_SCHEDULED,
                f"attempt {attempt} failed ({reason}); next in {delay:.3f}s",
            )
            return
        self._attempts.pop(shard, None)
        self._next_due.pop(shard, None)
        self._emit(now, shard, RESTORED, f"after {attempt} attempt(s)")

    def run_until_settled(
        self,
        start: float = 0.0,
        max_ticks: int = 64,
    ) -> float:
        """Drive ticks with a simulated clock until nothing is pending.

        Advances a virtual ``now`` straight to each earliest scheduled
        retry (no real sleeping) and returns the final virtual time.
        Raises if shards are still pending after ``max_ticks`` — the
        caller's budget is the backstop against a shard that can never
        restore but never exhausts its (infinite) policy either.
        """
        now = start
        for _ in range(max_ticks):
            self.tick(now)
            if not self.pending_shards:
                return now
            due = [
                self._next_due.get(index, now)
                for index in self.pending_shards
            ]
            now = max(now, min(due))
        if self.pending_shards:
            raise RuntimeError(
                f"shards {self.pending_shards} still pending after "
                f"{max_ticks} ticks"
            )
        return now
