"""Cluster durability: per-shard checkpoints plus one manifest.

A cluster checkpoint is N independent engine checkpoints (one
``shard-XX/`` directory each, written by the crash-consistent
:func:`~repro.persistence.checkpoint.save_engine`) plus a
``cluster.json`` manifest recording the shard count, the router (so
restored ingest routes identically) and the engine config.  The
manifest is staged to a temp file and committed with one rename
*after* every shard directory exists, so a crash mid-save leaves
either a complete previous checkpoint or a complete new one — the
same discipline the per-engine checkpoint follows internally.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import List, Optional

from ..core.config import EngineConfig
from ..faults.plan import FaultPlan
from ..persistence.checkpoint import load_engine, save_engine
from ..persistence.warehouse_store import PersistenceError
from .engine import ClusterEngine, shard_wal_dir
from .router import ShardRouter

_MANIFEST_FILE = "cluster.json"
_CLUSTER_FORMAT = "repro-cluster-v1"


def _shard_dir(root: Path, index: int) -> Path:
    return root / f"shard-{index:02d}"


def save_cluster(cluster: ClusterEngine, directory: "str | Path") -> Path:
    """Checkpoint every shard under ``directory``; returns its path.

    Layout: ``shard-00/ .. shard-NN/`` (each a full engine checkpoint)
    plus ``cluster.json``.  The manifest is written last, atomically,
    so its presence certifies that every shard directory is complete.
    """
    if cluster.quarantined_shards:
        raise PersistenceError(
            "cannot checkpoint a cluster with quarantined shards "
            f"{sorted(cluster.quarantined_shards)}: their state lives "
            "only in the WAL; restore them first"
        )
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    for index, shard in enumerate(cluster.shards):
        save_engine(shard, _shard_dir(root, index))
    manifest = {
        "format": _CLUSTER_FORMAT,
        "shards": cluster.num_shards,
        "router": cluster.router.to_manifest(),
        "config": dataclasses.asdict(cluster.config),
        "step": cluster.steps_sealed,
    }
    tmp = root / (_MANIFEST_FILE + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2))
    os.replace(tmp, root / _MANIFEST_FILE)
    return root


def load_cluster(
    directory: "str | Path",
    wal_dir: "Optional[str | Path]" = None,
    fault_plan: Optional[FaultPlan] = None,
) -> ClusterEngine:
    """Restore a cluster checkpointed by :func:`save_cluster`.

    Rebuilds the router and config from the manifest, restores each
    shard engine from its own directory (each on a fresh simulated
    disk — or a fault-plan-wrapped one when ``fault_plan`` is given)
    and reassembles the facade with the lockstep step counter intact.

    With ``wal_dir``, each shard rolls forward from its own
    ``shard-NN/`` WAL after its checkpoint loads, recovering every
    batch acked after the checkpoint; the cluster step advances to the
    replayed engines' sealed-step count when the WAL carried seals past
    the manifest.
    """
    root = Path(directory)
    manifest_path = root / _MANIFEST_FILE
    if not manifest_path.exists():
        raise PersistenceError(f"no cluster manifest in {root}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != _CLUSTER_FORMAT:
        raise PersistenceError(
            f"unknown cluster format {manifest.get('format')!r}"
        )
    shards = int(manifest["shards"])
    config = EngineConfig(**manifest["config"])
    router = ShardRouter.from_manifest(manifest["router"])
    engines = []
    for index in range(shards):
        shard_dir = _shard_dir(root, index)
        if not shard_dir.exists():
            raise PersistenceError(
                f"manifest names {shards} shards but {shard_dir} is missing"
            )
        disk = None
        if fault_plan is not None:
            from ..faults.disk import FaultyDisk

            disk = FaultyDisk(
                fault_plan.for_shard(index),
                block_elems=config.block_elems,
            )
        engines.append(
            load_engine(
                shard_dir,
                disk=disk,
                wal_dir=(
                    shard_wal_dir(wal_dir, index)
                    if wal_dir is not None
                    else None
                ),
            )
        )
    cluster = ClusterEngine(
        shards=shards,
        config=config,
        router=router,
        engines=engines,
        wal_dir=wal_dir,
    )
    cluster.fault_plan = fault_plan
    # WAL replay may have sealed steps past the manifest's snapshot.
    cluster._step = max(
        int(manifest["step"]),
        max(engine.steps_sealed for engine in engines),
    )
    return cluster


def list_shard_dirs(directory: "str | Path") -> List[Path]:
    """The checkpoint's shard directories, in shard order."""
    root = Path(directory)
    manifest = json.loads((root / _MANIFEST_FILE).read_text())
    return [_shard_dir(root, i) for i in range(int(manifest["shards"]))]
