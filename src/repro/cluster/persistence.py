"""Cluster durability: per-shard checkpoints plus one manifest.

A cluster checkpoint is N independent engine checkpoints (one
``shard-XX/`` directory each, written by the crash-consistent
:func:`~repro.persistence.checkpoint.save_engine`) plus a
``cluster.json`` manifest recording the shard count, the router (so
restored ingest routes identically) and the engine config.  The
manifest is staged to a temp file and committed with one rename
*after* every shard directory exists, so a crash mid-save leaves
either a complete previous checkpoint or a complete new one — the
same discipline the per-engine checkpoint follows internally.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import List

from ..core.config import EngineConfig
from ..persistence.checkpoint import load_engine, save_engine
from ..persistence.warehouse_store import PersistenceError
from .engine import ClusterEngine
from .router import ShardRouter

_MANIFEST_FILE = "cluster.json"
_CLUSTER_FORMAT = "repro-cluster-v1"


def _shard_dir(root: Path, index: int) -> Path:
    return root / f"shard-{index:02d}"


def save_cluster(cluster: ClusterEngine, directory: "str | Path") -> Path:
    """Checkpoint every shard under ``directory``; returns its path.

    Layout: ``shard-00/ .. shard-NN/`` (each a full engine checkpoint)
    plus ``cluster.json``.  The manifest is written last, atomically,
    so its presence certifies that every shard directory is complete.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    for index, shard in enumerate(cluster.shards):
        save_engine(shard, _shard_dir(root, index))
    manifest = {
        "format": _CLUSTER_FORMAT,
        "shards": cluster.num_shards,
        "router": cluster.router.to_manifest(),
        "config": dataclasses.asdict(cluster.config),
        "step": cluster.steps_sealed,
    }
    tmp = root / (_MANIFEST_FILE + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2))
    os.replace(tmp, root / _MANIFEST_FILE)
    return root


def load_cluster(directory: "str | Path") -> ClusterEngine:
    """Restore a cluster checkpointed by :func:`save_cluster`.

    Rebuilds the router and config from the manifest, restores each
    shard engine from its own directory (each on a fresh simulated
    disk, as at construction) and reassembles the facade with the
    lockstep step counter intact.
    """
    root = Path(directory)
    manifest_path = root / _MANIFEST_FILE
    if not manifest_path.exists():
        raise PersistenceError(f"no cluster manifest in {root}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != _CLUSTER_FORMAT:
        raise PersistenceError(
            f"unknown cluster format {manifest.get('format')!r}"
        )
    shards = int(manifest["shards"])
    config = EngineConfig(**manifest["config"])
    router = ShardRouter.from_manifest(manifest["router"])
    engines = []
    for index in range(shards):
        shard_dir = _shard_dir(root, index)
        if not shard_dir.exists():
            raise PersistenceError(
                f"manifest names {shards} shards but {shard_dir} is missing"
            )
        engines.append(load_engine(shard_dir))
    cluster = ClusterEngine(
        shards=shards, config=config, router=router, engines=engines
    )
    cluster._step = int(manifest["step"])
    return cluster


def list_shard_dirs(directory: "str | Path") -> List[Path]:
    """The checkpoint's shard directories, in shard order."""
    root = Path(directory)
    manifest = json.loads((root / _MANIFEST_FILE).read_text())
    return [_shard_dir(root, i) for i in range(int(manifest["shards"]))]
