"""Sharded multi-engine cluster: fan-out ingest, fused queries.

:class:`ClusterEngine` runs N in-process
:class:`~repro.core.engine.HybridQuantileEngine` shards, each with its
**own** :class:`~repro.storage.disk.SimulatedDisk` — the cluster models
N independent devices, which is exactly what sharding buys: ingest I/O
(sort + archive + merges) divides across devices, so the simulated
critical path (``max`` over shards) shrinks ~linearly with the shard
count even though this process is single-threaded.  A
:class:`~repro.cluster.router.ShardRouter` places elements; batched
ingest fans a numpy array out per shard in one vectorized pass.

Queries go through :class:`ClusterSnapshot`, which pins every shard
(``engine.pin()`` per shard, in shard order) and answers with the same
machinery as a single engine:

* **quick** — per-shard stream summaries plus every shard's partition
  summaries are fused into one :class:`~repro.core.bounds.CombinedSummary`
  (rank bounds are additive across components, so the fused error is
  the single-engine contract over the union:
  ``eps1 * n + eps2 * m``).  With the KLL backend the per-shard
  sketches could equivalently be merged sketch-level first — the fused
  TS route is what keeps the quick path *identical* to the
  single-engine code.
* **accurate** — scatter/gather: the *single-engine*
  :class:`~repro.core.filters.AccurateSearch` runs unchanged over the
  union of all shards' partitions; a :class:`ShardedBlockCache` routes
  each block touch to the owning shard's per-query cache (charging
  that shard's disk), and the stream term of every rank estimate is
  the sum of per-shard pinned-sketch brackets.  With ``shards == 1``
  every probe, filter and snap is bit-identical to the plain engine.

The snapshot's epoch is the tuple of per-shard epochs — hashable and
comparable, so the serving layer's coalescer groups cluster requests
exactly as it groups single-engine ones.
"""

from __future__ import annotations

import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..core.bounds import CombinedSummary, PartialResult, widen_rank_bound
from ..core.config import EngineConfig
from ..core.engine import HybridQuantileEngine, QueryResult, StepReport
from ..core.epoch import SnapshotHandle
from ..core.filters import AccurateSearch
from ..core.summaries import StreamSummary
from ..faults.disk import FaultyDisk
from ..faults.errors import DiskFault
from ..faults.plan import FaultPlan
from ..ingest.wal import WriteAheadLog
from ..query.executor import QueryExecutor
from ..sketches.base import rank_for_phi
from ..storage.cache import BlockCache
from ..warehouse.partition import Partition
from .router import ShardRouter


class ClusterUnavailable(RuntimeError):
    """Too few live shards to satisfy the gather contract."""


class ShardErrors(RuntimeError):
    """Multiple shards failed the same lifecycle operation.

    Raised by :meth:`ClusterEngine.flush` / :meth:`ClusterEngine.close`
    when more than one shard fails, so no shard's poison state is
    masked by an earlier shard's exception.  ``errors`` maps shard
    index to the exception that shard raised.
    """

    def __init__(
        self, operation: str, errors: Mapping[int, BaseException]
    ) -> None:
        self.operation = operation
        self.errors: Dict[int, BaseException] = dict(errors)
        detail = "; ".join(
            f"shard {index}: {type(exc).__name__}: {exc}"
            for index, exc in sorted(self.errors.items())
        )
        super().__init__(
            f"{len(self.errors)} shards failed during {operation}: {detail}"
        )


def shard_wal_dir(root: "str | Path", index: int) -> Path:
    """Per-shard WAL directory (naming mirrors checkpoint shard dirs)."""
    return Path(root) / f"shard-{index:02d}"


def shard_storage_dir(root: "str | Path", index: int) -> Path:
    """Per-shard storage-backend directory (same ``shard-NN`` layout)."""
    return Path(root) / f"shard-{index:02d}"


def shard_config(config: EngineConfig, index: int) -> EngineConfig:
    """The engine config shard ``index`` runs under.

    File-backed storage backends must not share a directory across
    shards, so an explicit ``storage_dir`` is specialized to the
    shard's ``shard-NN/`` subdirectory (mirroring the WAL/checkpoint
    layout).  A ``None`` directory already gives every shard its own
    private tempdir, and the simulated backend has no directory at all
    — both pass through unchanged.
    """
    if config.storage_backend == "simulated" or config.storage_dir is None:
        return config
    return replace(
        config,
        storage_dir=str(shard_storage_dir(config.storage_dir, index)),
    )


class ShardedBlockCache:
    """Routes block touches to the owning shard's per-query cache.

    :class:`~repro.core.filters.AccurateSearch` talks to one cache; a
    cluster query spans runs on N distinct simulated disks.  This
    multiplexer maps each ``run_id`` (globally unique across disks) to
    the per-shard :class:`~repro.storage.cache.BlockCache` built for
    the query, so every charge lands on the disk that actually holds
    the run — per-shard I/O accounting stays exact.

    When a touch raises a :class:`~repro.faults.DiskFault`, the owning
    shard's key is recorded in :attr:`failed_shard` before the fault
    propagates — the culprit attribution the partial-gather retry loop
    uses to exclude exactly the shard that failed.
    """

    def __init__(
        self,
        shard_caches: "Union[Sequence[BlockCache], Mapping[int, BlockCache]]",
        run_to_shard: Dict[int, int],
    ) -> None:
        if isinstance(shard_caches, Mapping):
            self._caches: Dict[int, BlockCache] = dict(shard_caches)
        else:
            self._caches = dict(enumerate(shard_caches))
        self._run_to_shard = dict(run_to_shard)
        #: shard key whose disk faulted a touch (None until one does).
        self.failed_shard: Optional[int] = None
        # Prefetch gating mirrors BlockCache.shared: enabled when any
        # shard reads through a shared tier.
        self.shared = next(
            (
                c.shared
                for _, c in sorted(self._caches.items())
                if c.shared is not None
            ),
            None,
        )

    def _shard_of(self, run_id: int) -> int:
        try:
            return self._run_to_shard[run_id]
        except KeyError:
            raise KeyError(
                f"run {run_id} is not pinned by this cluster snapshot"
            ) from None

    def touch(self, run_id: int, block: int) -> int:
        """Charge one block read against the owning shard's disk."""
        shard = self._shard_of(run_id)
        try:
            return self._caches[shard].touch(run_id, block)
        except DiskFault:
            self.failed_shard = shard
            raise

    def touch_range(
        self, run_id: int, first_block: int, last_block: int
    ) -> int:
        """Charge a ranged read against the owning shard's disk."""
        shard = self._shard_of(run_id)
        try:
            return self._caches[shard].touch_range(
                run_id, first_block, last_block
            )
        except DiskFault:
            self.failed_shard = shard
            raise

    @property
    def blocks_charged(self) -> int:
        """Total blocks charged across every shard (scatter sum)."""
        return sum(c.blocks_charged for c in self._caches.values())

    def per_shard_blocks(self) -> Dict[int, int]:
        """Blocks charged per shard key — the gather-side accounting."""
        return {
            shard: cache.blocks_charged
            for shard, cache in self._caches.items()
        }

    def max_blocks_per_run(self) -> int:
        """Deepest per-partition read chain across all shards."""
        return max(
            (c.max_blocks_per_run() for c in self._caches.values()),
            default=0,
        )


class _FusedStreamSummary:
    """Union-stream facade over per-shard stream summaries.

    Presents exactly the :class:`~repro.core.summaries.StreamSummary`
    surface the accurate search touches — ``stream_size``,
    ``rank_estimate`` and ``largest_at_most`` — each gathered across
    shards (sums for ranks, max for the predecessor).  With one shard
    every method degenerates to the underlying summary's, keeping the
    single-shard cluster bit-identical to a plain engine.
    """

    def __init__(self, summaries: Sequence[StreamSummary]) -> None:
        self._summaries = list(summaries)
        self.stream_size = sum(s.stream_size for s in self._summaries)

    @property
    def is_empty(self) -> bool:
        """Whether no shard held live stream elements."""
        return self.stream_size == 0

    def rank_estimate(self, value: int) -> float:
        """Sum of per-shard Algorithm 8 stream estimates."""
        return sum(s.rank_estimate(value) for s in self._summaries)

    def largest_at_most(self, value: int) -> "int | None":
        """Largest summary element <= value across every shard."""
        candidates = [
            c
            for c in (s.largest_at_most(value) for s in self._summaries)
            if c is not None
        ]
        return max(candidates) if candidates else None


class ClusterSnapshot:
    """A pinned, consistent view across every shard of a cluster.

    Holds one :class:`~repro.core.epoch.SnapshotHandle` per shard (in
    shard order) and mirrors the handle's query surface — ``quantile``,
    ``quantile_many``, ``query_rank``, ``warm``, ``epoch``,
    ``ts_merges_built`` — so the serving layer drives a cluster through
    the exact same duck-typed protocol as a single engine.

    Can be built from any list of pinned handles (not only via
    :meth:`ClusterEngine.pin`): the equivalence harness constructs one
    over *standalone* engines that replayed recorded per-shard feeds
    and checks the answers match the cluster's bit for bit.

    Partial gathers: ``shard_ids`` names the cluster-wide id behind
    each handle, ``missing`` maps quarantined shard ids to their acked
    element counts, and ``shards_total`` is the full cluster width.
    When those are omitted (every legacy construction) the snapshot
    behaves exactly as before — every shard answering, nothing missing.
    """

    def __init__(
        self,
        handles: Sequence[SnapshotHandle],
        config: EngineConfig,
        executor: QueryExecutor,
        shard_ids: Optional[Sequence[int]] = None,
        missing: Optional[Mapping[int, int]] = None,
        shards_total: Optional[int] = None,
    ) -> None:
        if not handles:
            raise ValueError("a cluster snapshot needs at least one shard")
        self.handles = list(handles)
        self.config = config
        self._executor = executor
        #: cluster-wide shard id behind each handle (handle order).
        self.shard_ids: "tuple[int, ...]" = (
            tuple(int(i) for i in shard_ids)
            if shard_ids is not None
            else tuple(range(len(self.handles)))
        )
        if len(self.shard_ids) != len(self.handles):
            raise ValueError(
                f"{len(self.shard_ids)} shard ids for "
                f"{len(self.handles)} handles"
            )
        #: quarantined-at-pin shard id -> acked elements it holds.
        self.missing: Dict[int, int] = (
            {int(k): int(v) for k, v in missing.items()} if missing else {}
        )
        self.shards_total = (
            int(shards_total)
            if shards_total is not None
            else len(self.handles) + len(self.missing)
        )
        #: tuple of per-shard epochs — hashable, so the coalescer's
        #: same-epoch batching works unchanged.
        self.epoch = tuple(h.epoch for h in self.handles)
        self.n_historical = sum(h.n_historical for h in self.handles)
        self.m_stream = sum(h.m_stream for h in self.handles)
        self._combined: Optional[CombinedSummary] = None
        self._merges = 0
        self._released = False

    # -- lifecycle ------------------------------------------------------

    @property
    def released(self) -> bool:
        """Whether :meth:`release` has run."""
        return self._released

    def release(self) -> None:
        """Release every per-shard pin (idempotent)."""
        if not self._released:
            self._released = True
            for handle in self.handles:
                handle.release()

    def __enter__(self) -> "ClusterSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    # -- derived views --------------------------------------------------

    @property
    def n_total(self) -> int:
        """Total elements across all shards at pin time."""
        return self.n_historical + self.m_stream

    def _scope(
        self,
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> "tuple[List[List[Partition]], List[StreamSummary]]":
        """Per-shard (partitions, SS) pairs for the queried scope."""
        partitions: List[List[Partition]] = []
        summaries: List[StreamSummary] = []
        for handle in self.handles:
            parts, ss = handle.scope(window_steps, step_range)
            partitions.append(list(parts))
            summaries.append(ss)
        return partitions, summaries

    def combined(
        self,
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> CombinedSummary:
        """Fused TS over every shard's scope (full scope cached)."""
        if window_steps is None and step_range is None:
            if self._combined is None:
                self._combined = self._build_combined(*self._scope())
            return self._combined
        return self._build_combined(*self._scope(window_steps, step_range))

    def _build_combined(
        self,
        shard_partitions: List[List[Partition]],
        summaries: List[StreamSummary],
    ) -> CombinedSummary:
        partition_summaries = [
            p.summary
            for parts in shard_partitions
            for p in parts
            if len(p) > 0
        ]
        built = CombinedSummary.build(partition_summaries, summaries)
        self._merges += 1
        return built

    @property
    def ts_merges_built(self) -> int:
        """Fused TS merges this snapshot has performed."""
        return self._merges

    def stream_rank(self, value: int) -> float:
        """Union-stream rank estimate: sum of per-shard sketch brackets."""
        return sum(h.stream_rank(value) for h in self.handles)

    def warm(
        self,
        phis: Sequence[float],
        cache: Optional[BlockCache] = None,
        window_steps: Optional[int] = None,
    ) -> int:
        """Per-shard warm pass (no-op without per-shard shared tiers).

        The ``cache`` argument is accepted for handle-protocol
        compatibility but ignored: each shard warms through its own
        tier, reading from its own disk.
        """
        del cache  # per-shard tiers use per-shard caches
        return sum(
            h.warm(phis, window_steps=window_steps) for h in self.handles
        )

    def _quick_bound(self, total: int, m_scope: int) -> float:
        hist_scope = max(0, total - m_scope)
        return (
            self.config.epsilon1 * hist_scope
            + self.config.epsilon2 * m_scope
        )

    def _new_cache(
        self, shard_partitions: List[List[Partition]]
    ) -> ShardedBlockCache:
        """Per-query sharded cache over the pinned per-shard views."""
        return self._new_cache_for(
            range(len(self.handles)), shard_partitions
        )

    def _new_cache_for(
        self,
        positions: Iterable[int],
        shard_partitions: List[List[Partition]],
    ) -> ShardedBlockCache:
        """Sharded cache over a subset of handle positions.

        The partial-gather retry loop rebuilds the per-query cache over
        the surviving shards only, so an excluded shard's runs are
        unreachable (a stray touch raises ``KeyError`` rather than
        silently re-faulting).
        """
        positions = list(positions)
        run_to_shard = {
            p.run.run_id: pos
            for pos in positions
            for p in shard_partitions[pos]
        }
        return ShardedBlockCache(
            {pos: self.handles[pos]._new_cache() for pos in positions},
            run_to_shard,
        )

    # -- queries --------------------------------------------------------

    def query_rank(
        self,
        rank: int,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
        cache: Optional[ShardedBlockCache] = None,
    ) -> QueryResult:
        """Answer over the union of every shard's pinned view.

        Quick mode reads the fused TS; accurate mode runs the
        single-engine search over the union of partitions, with block
        touches routed per shard.  The result mirrors
        :meth:`SnapshotHandle.query_rank` field for field;
        ``parallel_sim_seconds`` is the per-device critical path (max
        blocks charged on any one shard's disk).

        Partial gathers: when shards were quarantined at pin time, or
        a shard's disk faults mid-search and ``min_gather_shards``
        leaves quorum to spare, the answer covers the survivors with
        its rank bound widened by the missing shards' element counts
        (:func:`~repro.core.bounds.widen_rank_bound`) and a
        :class:`~repro.core.bounds.PartialResult` attached to the
        result's ``partial`` field.  With every shard answering and no
        faults, the path — and the answer — is unchanged.
        """
        if mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")
        if self.n_total == 0:
            raise ValueError("snapshot is empty")
        started = time.perf_counter()
        requested = int(rank)
        shard_partitions, summaries = self._scope(window_steps, step_range)
        quorum = max(1, self.config.min_gather_shards)
        # Handle positions excluded mid-search -> their scoped counts.
        excluded: Dict[int, int] = {}
        degraded = False
        parallel_blocks = 0

        def attempt_state(positions: List[int]):
            """(combined, stream_rank_fn, m_scope) over a shard subset."""
            if len(positions) == len(self.handles):
                built = self.combined(window_steps, step_range)
                fn = self.stream_rank if step_range is None else None
            else:
                built = self._build_combined(
                    [shard_partitions[i] for i in positions],
                    [summaries[i] for i in positions],
                )
                if step_range is None:
                    def fn(value: int) -> float:
                        return sum(
                            self.handles[i].stream_rank(value)
                            for i in positions
                        )
                else:
                    fn = None
            scope_m = sum(summaries[i].stream_size for i in positions)
            return built, fn, scope_m

        positions = list(range(len(self.handles)))
        combined, stream_fn, m_scope = attempt_state(positions)
        rank_eff = max(1, min(requested, combined.total_size))
        quick_bound = self._quick_bound(combined.total_size, m_scope)
        if mode == "quick":
            value = combined.quick_response(rank_eff)
            blocks = 0
            estimated = float(rank_eff)
            iterations = 0
            truncated = False
            bound = quick_bound
        else:
            while True:
                # A caller-shared cache only matches the full shard
                # set; exclusion retries always get a fresh one built
                # over the survivors.
                query_cache = cache if not excluded else None
                if query_cache is None:
                    query_cache = self._new_cache_for(
                        positions, shard_partitions
                    )
                before = query_cache.per_shard_blocks()
                search = AccurateSearch(
                    partitions=[
                        p for i in positions for p in shard_partitions[i]
                    ],
                    stream_summary=_FusedStreamSummary(
                        [summaries[i] for i in positions]
                    ),
                    combined=combined,
                    config=self.config,
                    rank=rank_eff,
                    stream_rank_fn=stream_fn,
                    cache=query_cache,
                    executor=self._executor,
                )
                try:
                    outcome = search.run()
                except DiskFault:
                    culprit = query_cache.failed_shard
                    if (
                        self.config.min_gather_shards > 0
                        and culprit is not None
                        and culprit not in excluded
                        and len(positions) - 1 >= quorum
                    ):
                        excluded[culprit] = self.handles[
                            culprit
                        ]._scope_total(window_steps, step_range)
                        positions = [
                            i
                            for i in range(len(self.handles))
                            if i not in excluded
                        ]
                        combined, stream_fn, m_scope = attempt_state(
                            positions
                        )
                        rank_eff = max(
                            1, min(requested, combined.total_size)
                        )
                        quick_bound = self._quick_bound(
                            combined.total_size, m_scope
                        )
                        continue
                    if not self.config.degrade_on_fault:
                        raise
                    outcome = None
                if outcome is None:
                    degraded = True
                    value = combined.quick_response(rank_eff)
                    blocks = 0
                    estimated = float(rank_eff)
                    iterations = 0
                    truncated = True
                    bound = quick_bound
                else:
                    value = outcome.value
                    blocks = outcome.random_blocks
                    estimated = outcome.estimated_rank
                    iterations = outcome.iterations
                    truncated = outcome.truncated
                    bound = self.config.query_epsilon * m_scope
                    after = query_cache.per_shard_blocks()
                    parallel_blocks = max(
                        charged - before.get(shard, 0)
                        for shard, charged in after.items()
                    )
                break
        missing_all = dict(self.missing)
        for pos, count in excluded.items():
            missing_all[self.shard_ids[pos]] = count
        partial: Optional[PartialResult] = None
        if missing_all:
            lost = sum(missing_all.values())
            partial = PartialResult(
                missing_shards=tuple(sorted(missing_all)),
                missing_elements=lost,
                shards_answering=len(positions),
                shards_total=self.shards_total,
                base_bound=float(bound),
            )
            bound = widen_rank_bound(bound, lost)
        latency = self.handles[0]._disk.latency
        return QueryResult(
            value=int(value),
            target_rank=rank_eff,
            total_size=combined.total_size,
            mode=mode,
            estimated_rank=estimated,
            disk_accesses=blocks,
            iterations=iterations,
            truncated=truncated,
            wall_seconds=time.perf_counter() - started,
            sim_seconds=blocks * latency.seconds_per_random_block,
            window_steps=window_steps,
            query_workers=self._executor.workers,
            degraded=degraded,
            rank_error_bound=float(bound),
            parallel_sim_seconds=(
                parallel_blocks * latency.seconds_per_random_block
            ),
            partial=partial,
        )

    def _scope_total(
        self,
        window_steps: Optional[int],
        step_range: "Optional[tuple[int, int]]",
    ) -> int:
        if window_steps is None and step_range is None:
            return self.n_total
        return sum(
            h._scope_total(window_steps, step_range) for h in self.handles
        )

    def quantile(
        self,
        phi: float,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> QueryResult:
        """A phi-quantile of the cluster-wide union (Definition 1)."""
        total = self._scope_total(window_steps, step_range)
        return self.query_rank(
            rank_for_phi(phi, total),
            mode=mode,
            window_steps=window_steps,
            step_range=step_range,
        )

    def quantile_many(
        self,
        phis: Sequence[float],
        mode: str = "quick",
        window_steps: Optional[int] = None,
    ) -> List[QueryResult]:
        """Batched quantiles against the fused view.

        Quick mode: one (cached) fused TS merge, one vectorized
        rank-bound pass — the coalescer's contract, unchanged.
        Accurate mode shares one sharded cache across the searches.
        """
        if mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")
        if self.n_total == 0:
            raise ValueError("snapshot is empty")
        if mode == "accurate":
            shard_partitions, _ = self._scope(window_steps)
            cache = self._new_cache(shard_partitions)
            return [
                self.query_rank(
                    rank_for_phi(
                        phi, self._scope_total(window_steps, None)
                    ),
                    mode="accurate",
                    window_steps=window_steps,
                    cache=cache,
                )
                for phi in phis
            ]
        started = time.perf_counter()
        _, summaries = self._scope(window_steps)
        combined = self.combined(window_steps)
        total = combined.total_size
        ranks = np.asarray(
            [
                max(1, min(rank_for_phi(phi, total), total))
                for phi in phis
            ],
            dtype=np.int64,
        )
        values = combined.quick_responses(ranks)
        bound = self._quick_bound(
            total, sum(s.stream_size for s in summaries)
        )
        partial: Optional[PartialResult] = None
        if self.missing:
            lost = sum(self.missing.values())
            partial = PartialResult(
                missing_shards=tuple(sorted(self.missing)),
                missing_elements=lost,
                shards_answering=len(self.handles),
                shards_total=self.shards_total,
                base_bound=float(bound),
            )
            bound = widen_rank_bound(bound, lost)
        wall = time.perf_counter() - started
        return [
            QueryResult(
                value=int(value),
                target_rank=int(rank),
                total_size=total,
                mode="quick",
                estimated_rank=float(rank),
                disk_accesses=0,
                iterations=0,
                truncated=False,
                wall_seconds=wall,
                sim_seconds=0.0,
                window_steps=window_steps,
                query_workers=self._executor.workers,
                rank_error_bound=float(bound),
                partial=partial,
            )
            for rank, value in zip(ranks, values)
        ]


class ClusterEngine:
    """Facade over N engine shards: one logical stream, one query API.

    Construction creates the shards (each with a fresh simulated disk)
    and the router.  Ingest fans out deterministically; time steps
    advance in lockstep (``end_time_step`` seals every shard); queries
    pin all shards and gather.  The serving layer's
    :class:`~repro.serving.service.QueryService` drives a cluster
    through the same duck-typed surface as a single engine — ``pin``,
    ``config``, ``shared_cache`` (``None``: warm passes are a per-shard
    concern) and ``disk``.

    Fault tolerance:

    * ``fault_plan`` wraps each shard's device in its own seeded
      :class:`~repro.faults.FaultyDisk` (see
      :meth:`FaultPlan.for_shard <repro.faults.plan.FaultPlan.for_shard>`
      for the derivation), so chaos scenarios replay from one integer.
    * ``wal_dir`` gives every shard a durable
      :class:`~repro.ingest.wal.WriteAheadLog` under
      ``<wal_dir>/shard-NN/``; acked ingest survives a shard crash.
    * :meth:`kill_shard` quarantines a poisoned shard — its slot turns
      ``None``, ingest routed to it banks into the retained WAL writer,
      queries gather partially (quorum permitting) — and
      :meth:`rejoin_shard` swaps a restored engine back in.  The
      :class:`~repro.cluster.supervisor.ShardSupervisor` automates the
      quarantine -> restore -> rejoin loop.
    """

    def __init__(
        self,
        shards: int = 2,
        config: Optional[EngineConfig] = None,
        epsilon: Optional[float] = None,
        router: Optional[ShardRouter] = None,
        engines: Optional[Sequence[HybridQuantileEngine]] = None,
        fault_plan: Optional[FaultPlan] = None,
        wal_dir: "Optional[str | Path]" = None,
    ) -> None:
        if config is None:
            if epsilon is None:
                raise ValueError("pass epsilon or a full EngineConfig")
            config = EngineConfig(epsilon=epsilon)
        self.config = config
        self.router = (
            router if router is not None else ShardRouter(shards)
        )
        if self.router.shards != shards:
            raise ValueError(
                f"router covers {self.router.shards} shards, "
                f"cluster has {shards}"
            )
        self.fault_plan = fault_plan
        if engines is not None:
            if fault_plan is not None:
                raise ValueError(
                    "fault_plan applies to cluster-built shards; wrap "
                    "the disks yourself when passing explicit engines"
                )
            if len(engines) != shards:
                raise ValueError(
                    f"got {len(engines)} engines for {shards} shards"
                )
            self.shards: "List[Optional[HybridQuantileEngine]]" = list(
                engines
            )
        else:
            self.shards = [
                HybridQuantileEngine(
                    config=shard_config(config, index),
                    disk=(
                        FaultyDisk(
                            fault_plan.for_shard(index),
                            block_elems=config.block_elems,
                        )
                        if fault_plan is not None
                        else None
                    ),
                )
                for index in range(shards)
            ]
        self._wal_root: Optional[Path] = (
            Path(wal_dir) if wal_dir is not None else None
        )
        self._wals: "List[Optional[WriteAheadLog]]" = [None] * shards
        if self._wal_root is not None:
            for index, shard in enumerate(self.shards):
                wal = getattr(shard, "_wal", None)
                if wal is None:
                    wal = WriteAheadLog(
                        shard_wal_dir(self._wal_root, index),
                        fsync=config.wal_fsync,
                    )
                    shard.attach_wal(wal)
                self._wals[index] = wal
        #: quarantined shard index -> reason string.
        self._quarantined: Dict[int, str] = {}
        #: cumulative acked elements per shard — cluster-side truth
        #: that survives a shard's death (recovery must match it).
        self._shard_elems: List[int] = [
            int(shard.n_total) for shard in self.shards
        ]
        self._executor = QueryExecutor(
            workers=config.query_workers,
            retry=config.probe_retry_policy,
        )
        self._step = 0

    # -- ingest ---------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of engine shards (quarantined slots included)."""
        return len(self.shards)

    @property
    def quarantined_shards(self) -> Dict[int, str]:
        """Quarantined shard index -> reason (copy)."""
        return dict(self._quarantined)

    def _wal_only_append(self, shard: int, chunk: np.ndarray) -> None:
        """Bank a quarantined shard's sub-batch into its retained WAL.

        The append is durable before the caller's ack returns, so the
        supervisor's recovery (checkpoint + WAL roll-forward) observes
        every element ever acked for the slot.  Without a WAL there is
        nowhere durable to put the data — refuse the write.
        """
        wal = self._wals[shard]
        if wal is None:
            raise ClusterUnavailable(
                f"shard {shard} is quarantined and has no WAL to bank "
                "writes into"
            )
        wal.append_batch(chunk)

    def stream_update(self, value: int) -> None:
        """Route one live element to its shard (WAL-only if quarantined)."""
        shard = self.router.shard_of(value)
        engine = self.shards[shard]
        if engine is None:
            self._wal_only_append(
                shard, np.asarray([value], dtype=np.int64)
            )
        else:
            engine.stream_update(value)
        self._shard_elems[shard] += 1

    def stream_update_many(self, values: np.ndarray) -> int:
        """Fan a numpy batch out per shard in one vectorized pass.

        Each shard receives its sub-stream in arrival order, so the
        fanned batch is indistinguishable from element-wise routing
        (and each shard's own batched path preserves its single-engine
        bit-identity contract).  Sub-batches routed to a quarantined
        shard are banked durably into its WAL and applied at recovery.
        Returns the number of elements ingested.
        """
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            arr = arr.ravel()
        if arr.size == 0:
            return 0
        for shard, chunk in enumerate(self.router.route_many(arr)):
            if not chunk.size:
                continue
            engine = self.shards[shard]
            if engine is None:
                self._wal_only_append(shard, chunk)
            else:
                engine.stream_update_many(chunk)
            self._shard_elems[shard] += int(chunk.size)
        return int(arr.size)

    def stream_update_batch(self, values: Iterable[int]) -> None:
        """Iterable convenience wrapper over :meth:`stream_update_many`."""
        if isinstance(values, np.ndarray):
            self.stream_update_many(values)
        else:
            self.stream_update_many(
                np.fromiter(values, dtype=np.int64)
            )

    def end_time_step(self) -> "List[Optional[StepReport]]":
        """Seal the current step on every shard (lockstep).

        Returns the per-shard step reports in shard order.  All shards
        seal even when a shard received no elements this step, so step
        numbering — and therefore windowed queries — stays aligned
        across the cluster.  A quarantined shard gets a seal frame in
        its WAL instead (recovery replays it to the same lockstep) and
        a ``None`` placeholder in the report list.
        """
        reports: "List[Optional[StepReport]]" = []
        for index, shard in enumerate(self.shards):
            if shard is None:
                wal = self._wals[index]
                if wal is not None:
                    wal.append_seal(self._step + 1)
                reports.append(None)
            else:
                reports.append(shard.end_time_step())
        self._step += 1
        return reports

    def flush(self) -> "List[Optional[List[StepReport]]]":
        """Drain every live shard's archiver (all attempted, errors joined).

        Every live shard is flushed even when an earlier one fails;
        quarantined slots yield ``None``.  A single failure re-raises
        that shard's original exception unchanged; multiple failures
        raise :class:`ShardErrors` carrying all of them, so one
        poisoned shard can never mask another's state.
        """
        results: "List[Optional[List[StepReport]]]" = (
            [None] * len(self.shards)
        )
        errors: Dict[int, BaseException] = {}
        for index, shard in enumerate(self.shards):
            if shard is None:
                continue
            try:
                results[index] = shard.flush()
            except BaseException as exc:  # noqa: BLE001 - flush all first
                errors[index] = exc
        if len(errors) == 1:
            raise next(iter(errors.values()))
        if errors:
            raise ShardErrors("flush", errors)
        return results

    # -- stats ----------------------------------------------------------

    @property
    def n_historical(self) -> int:
        """Elements archived across all live shards."""
        return sum(
            s.n_historical for s in self.shards if s is not None
        )

    @property
    def m_stream(self) -> int:
        """Live stream elements across all live shards."""
        return sum(s.m_stream for s in self.shards if s is not None)

    @property
    def n_total(self) -> int:
        """Total elements held by live shards (quarantined excluded)."""
        return self.n_historical + self.m_stream

    @property
    def n_acked(self) -> int:
        """Total elements ever acked, quarantined shards included."""
        return sum(self._shard_elems)

    @property
    def steps_sealed(self) -> int:
        """Lockstep count of sealed time steps."""
        return self._step

    @property
    def shared_cache(self):
        """Always ``None``: shared tiers live inside each shard.

        The serving layer checks this to decide whether to run warm
        passes itself; for a cluster, warming is delegated per shard
        via :meth:`ClusterSnapshot.warm`.
        """
        return None

    @property
    def disk(self):
        """First live shard's disk (protocol compatibility)."""
        for shard in self.shards:
            if shard is not None:
                return shard.disk
        raise ClusterUnavailable("every shard is quarantined")

    def available_window_sizes(self) -> List[int]:
        """Window sizes answerable on every live shard."""
        live = [s for s in self.shards if s is not None]
        if not live:
            return []
        common = set(live[0].available_window_sizes())
        for shard in live[1:]:
            common &= set(shard.available_window_sizes())
        return sorted(common)

    def per_shard_sim_seconds(self) -> List[float]:
        """Simulated seconds accrued on each shard's device so far.

        ``max`` over the list is the cluster's I/O critical path — the
        wall-clock a deployment with one real device per shard would
        observe; ``sum`` is the single-device equivalent.  Quarantined
        slots report ``0.0`` (their device is gone with the engine).
        """
        return [
            s.disk.simulated_seconds() if s is not None else 0.0
            for s in self.shards
        ]

    def shard_reports(self) -> List[dict]:
        """Per-shard metrics: sizes, epochs, I/O — the gather side.

        One dict per shard with ingest sizes, epoch-layer counters and
        simulated-device accounting, ready for the serving layer's
        metrics endpoint or the ablation's JSON rows.
        """
        reports = []
        for index, shard in enumerate(self.shards):
            if shard is None:
                reports.append(
                    {
                        "shard": index,
                        "quarantined": self._quarantined.get(
                            index, "unknown"
                        ),
                        "acked_elements": self._shard_elems[index],
                    }
                )
                continue
            stats = shard.epoch_stats
            counters = shard.disk.stats.counters
            reports.append(
                {
                    "shard": index,
                    "n_historical": shard.n_historical,
                    "m_stream": shard.m_stream,
                    "steps_sealed": shard.steps_sealed,
                    "epoch": stats.current_epoch,
                    "ts_merges": stats.ts_merges,
                    "live_pins": stats.live_pins,
                    "io_total": counters.total,
                    "io_sequential": (
                        counters.sequential_reads + counters.sequential_writes
                    ),
                    "io_random": counters.random_reads,
                    "sim_seconds": shard.disk.simulated_seconds(),
                }
            )
        return reports

    # -- queries --------------------------------------------------------

    def pin(self) -> ClusterSnapshot:
        """Pin every live shard (in shard order) into one consistent view.

        Per-shard pins are individually atomic against that shard's
        sealing; cross-shard exactness holds when ingest is quiesced
        (the equivalence harness's regime).  On failure every
        already-acquired pin is released.

        With quarantined shards: strict gather
        (``min_gather_shards == 0``, the default) raises
        :class:`ClusterUnavailable`; otherwise the snapshot carries the
        missing shards' acked counts so every answer widens its bound
        and reports a :class:`~repro.core.bounds.PartialResult`.
        Quorum is ``max(1, min_gather_shards)`` live shards.
        """
        live = [
            (index, shard)
            for index, shard in enumerate(self.shards)
            if shard is not None
        ]
        if self._quarantined:
            if self.config.min_gather_shards <= 0:
                raise ClusterUnavailable(
                    f"shards {sorted(self._quarantined)} are quarantined "
                    "and min_gather_shards is 0 (strict gather)"
                )
            quorum = max(1, self.config.min_gather_shards)
            if len(live) < quorum:
                raise ClusterUnavailable(
                    f"only {len(live)} of {len(self.shards)} shards are "
                    f"live; gather quorum is {quorum}"
                )
        handles: List[SnapshotHandle] = []
        try:
            for _, shard in live:
                handles.append(shard.pin())
        except BaseException:
            for handle in handles:
                handle.release()
            raise
        return ClusterSnapshot(
            handles,
            self.config,
            self._executor,
            shard_ids=[index for index, _ in live],
            missing={
                index: self._shard_elems[index]
                for index in self._quarantined
            },
            shards_total=len(self.shards),
        )

    def query_rank(
        self,
        rank: int,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> QueryResult:
        """Rank query over the cluster-wide union (pin, gather, release)."""
        with self.pin() as snapshot:
            return snapshot.query_rank(
                rank,
                mode=mode,
                window_steps=window_steps,
                step_range=step_range,
            )

    def quantile(
        self,
        phi: float,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> QueryResult:
        """A phi-quantile of the cluster-wide union."""
        with self.pin() as snapshot:
            return snapshot.quantile(
                phi,
                mode=mode,
                window_steps=window_steps,
                step_range=step_range,
            )

    def quantile_many(
        self,
        phis: Sequence[float],
        mode: str = "quick",
        window_steps: Optional[int] = None,
    ) -> List[QueryResult]:
        """Batched quantiles over one pinned cluster view."""
        with self.pin() as snapshot:
            return snapshot.quantile_many(
                phis, mode=mode, window_steps=window_steps
            )

    # -- fault handling -------------------------------------------------

    def kill_shard(self, shard: int, reason: str = "poisoned") -> None:
        """Quarantine a shard: detach its WAL, tear the engine down.

        The WAL writer is retained by the cluster, so ingest routed to
        the dead shard keeps acking durably (WAL-only) while the
        supervisor restores it.  Errors from the dying engine are
        swallowed — the shard is being quarantined *because* it is
        broken.
        """
        engine = self.shards[shard]
        if engine is None:
            raise ValueError(f"shard {shard} is already quarantined")
        wal = getattr(engine, "_wal", None)
        if wal is not None:
            engine.detach_wal()
            self._wals[shard] = wal
        try:
            engine.close()
        except BaseException:  # noqa: BLE001 - quarantining a broken shard
            pass
        self.shards[shard] = None
        self._quarantined[shard] = str(reason)

    def rejoin_shard(
        self, shard: int, engine: HybridQuantileEngine
    ) -> None:
        """Swap a restored engine back into a quarantined slot.

        The engine must have caught up to the cluster: same sealed-step
        count and the full acked element count for the slot — both are
        what checkpoint-plus-WAL-replay recovery guarantees.  Adopts
        the restored engine's WAL writer as the slot's writer.
        """
        if self.shards[shard] is not None:
            raise ValueError(f"shard {shard} is not quarantined")
        if engine.steps_sealed != self._step:
            raise ValueError(
                f"restored shard sealed {engine.steps_sealed} steps, "
                f"cluster is at {self._step}"
            )
        if engine.n_total != self._shard_elems[shard]:
            raise ValueError(
                f"restored shard holds {engine.n_total} elements, "
                f"{self._shard_elems[shard]} were acked"
            )
        self.shards[shard] = engine
        self._quarantined.pop(shard, None)
        wal = getattr(engine, "_wal", None)
        if wal is not None:
            self._wals[shard] = wal

    def release_wal(self, shard: int) -> None:
        """Close and drop the cluster-retained WAL writer for a slot.

        The supervisor calls this right before restoring the shard:
        ``load_engine(wal_dir=...)`` opens its own writer on the same
        directory, and a directory admits exactly one live writer.
        """
        wal = self._wals[shard]
        if wal is not None:
            self._wals[shard] = None
            wal.close()

    def reopen_wal(self, shard: int) -> None:
        """Reopen a quarantined slot's WAL writer after a failed restore.

        Idempotent; a no-op without a WAL root or when a writer is
        already open.  Keeps the slot durably writable between restore
        attempts.
        """
        if self._wal_root is None or self._wals[shard] is not None:
            return
        self._wals[shard] = WriteAheadLog(
            shard_wal_dir(self._wal_root, shard),
            fsync=self.config.wal_fsync,
        )

    @property
    def wal_root(self) -> Optional[Path]:
        """Root directory holding the per-shard WALs (``None`` if off)."""
        return self._wal_root

    def new_shard_disk(self, index: int):
        """A fresh device for restoring shard ``index``.

        Honors the cluster's fault plan (the restored shard draws the
        same per-shard schedule as the one it replaces); ``None`` when
        no plan is installed, letting ``load_engine`` build a plain
        simulated disk.
        """
        if self.fault_plan is None:
            return None
        return FaultyDisk(
            self.fault_plan.for_shard(index),
            block_elems=self.config.block_elems,
        )

    def dump_fault_transcripts(
        self, directory: "str | Path"
    ) -> List[Path]:
        """Write each live shard's fault transcript JSON (CI artifact)."""
        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        for index, shard in enumerate(self.shards):
            if shard is None or not isinstance(shard.disk, FaultyDisk):
                continue
            written.append(
                shard.disk.dump_transcript(
                    out / f"shard-{index:02d}.json"
                )
            )
        return written

    # -- lifecycle ------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate every live shard plus the cluster's lockstep contract."""
        for index, shard in enumerate(self.shards):
            if shard is None:
                continue
            shard.check_invariants()
            if shard.steps_sealed != self._step:
                raise AssertionError(
                    f"shard sealed {shard.steps_sealed} steps, "
                    f"cluster sealed {self._step}"
                )
            if shard.n_total != self._shard_elems[index]:
                raise AssertionError(
                    f"shard {index} holds {shard.n_total} elements, "
                    f"{self._shard_elems[index]} were acked"
                )

    def close(self) -> None:
        """Close every shard and the executor (all attempted, errors joined).

        Every live shard is closed even when an earlier one fails, and
        quarantined slots' cluster-retained WAL writers are closed too.
        A single failure re-raises that shard's original exception
        unchanged; multiple failures raise :class:`ShardErrors` with
        all of them — a poisoned shard cannot mask another's.
        """
        errors: Dict[int, BaseException] = {}
        for index, shard in enumerate(self.shards):
            if shard is None:
                continue
            try:
                shard.close()
            except BaseException as exc:  # noqa: BLE001 - close all first
                errors[index] = exc
        for index, wal in enumerate(self._wals):
            if wal is not None and self.shards[index] is None:
                self._wals[index] = None
                try:
                    wal.close()
                except BaseException as exc:  # noqa: BLE001
                    errors.setdefault(index, exc)
        self._executor.close()
        if len(errors) == 1:
            raise next(iter(errors.values()))
        if errors:
            raise ShardErrors("close", errors)

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
