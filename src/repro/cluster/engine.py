"""Sharded multi-engine cluster: fan-out ingest, fused queries.

:class:`ClusterEngine` runs N in-process
:class:`~repro.core.engine.HybridQuantileEngine` shards, each with its
**own** :class:`~repro.storage.disk.SimulatedDisk` — the cluster models
N independent devices, which is exactly what sharding buys: ingest I/O
(sort + archive + merges) divides across devices, so the simulated
critical path (``max`` over shards) shrinks ~linearly with the shard
count even though this process is single-threaded.  A
:class:`~repro.cluster.router.ShardRouter` places elements; batched
ingest fans a numpy array out per shard in one vectorized pass.

Queries go through :class:`ClusterSnapshot`, which pins every shard
(``engine.pin()`` per shard, in shard order) and answers with the same
machinery as a single engine:

* **quick** — per-shard stream summaries plus every shard's partition
  summaries are fused into one :class:`~repro.core.bounds.CombinedSummary`
  (rank bounds are additive across components, so the fused error is
  the single-engine contract over the union:
  ``eps1 * n + eps2 * m``).  With the KLL backend the per-shard
  sketches could equivalently be merged sketch-level first — the fused
  TS route is what keeps the quick path *identical* to the
  single-engine code.
* **accurate** — scatter/gather: the *single-engine*
  :class:`~repro.core.filters.AccurateSearch` runs unchanged over the
  union of all shards' partitions; a :class:`ShardedBlockCache` routes
  each block touch to the owning shard's per-query cache (charging
  that shard's disk), and the stream term of every rank estimate is
  the sum of per-shard pinned-sketch brackets.  With ``shards == 1``
  every probe, filter and snap is bit-identical to the plain engine.

The snapshot's epoch is the tuple of per-shard epochs — hashable and
comparable, so the serving layer's coalescer groups cluster requests
exactly as it groups single-engine ones.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.bounds import CombinedSummary
from ..core.config import EngineConfig
from ..core.engine import HybridQuantileEngine, QueryResult, StepReport
from ..core.epoch import SnapshotHandle
from ..core.filters import AccurateSearch
from ..core.summaries import StreamSummary
from ..faults.errors import DiskFault
from ..query.executor import QueryExecutor
from ..sketches.base import rank_for_phi
from ..storage.cache import BlockCache
from ..warehouse.partition import Partition
from .router import ShardRouter


class ShardedBlockCache:
    """Routes block touches to the owning shard's per-query cache.

    :class:`~repro.core.filters.AccurateSearch` talks to one cache; a
    cluster query spans runs on N distinct simulated disks.  This
    multiplexer maps each ``run_id`` (globally unique across disks) to
    the per-shard :class:`~repro.storage.cache.BlockCache` built for
    the query, so every charge lands on the disk that actually holds
    the run — per-shard I/O accounting stays exact.
    """

    def __init__(
        self,
        shard_caches: Sequence[BlockCache],
        run_to_shard: Dict[int, int],
    ) -> None:
        self._caches = list(shard_caches)
        self._run_to_shard = dict(run_to_shard)
        # Prefetch gating mirrors BlockCache.shared: enabled when any
        # shard reads through a shared tier.
        self.shared = next(
            (c.shared for c in self._caches if c.shared is not None), None
        )

    def _cache_for(self, run_id: int) -> BlockCache:
        try:
            return self._caches[self._run_to_shard[run_id]]
        except KeyError:
            raise KeyError(
                f"run {run_id} is not pinned by this cluster snapshot"
            ) from None

    def touch(self, run_id: int, block: int) -> None:
        """Charge one block read against the owning shard's disk."""
        self._cache_for(run_id).touch(run_id, block)

    def touch_range(
        self, run_id: int, first_block: int, last_block: int
    ) -> None:
        """Charge a ranged read against the owning shard's disk."""
        self._cache_for(run_id).touch_range(run_id, first_block, last_block)

    @property
    def blocks_charged(self) -> int:
        """Total blocks charged across every shard (scatter sum)."""
        return sum(c.blocks_charged for c in self._caches)

    def per_shard_blocks(self) -> List[int]:
        """Blocks charged per shard — the gather side of the accounting."""
        return [c.blocks_charged for c in self._caches]

    def max_blocks_per_run(self) -> int:
        """Deepest per-partition read chain across all shards."""
        return max((c.max_blocks_per_run() for c in self._caches), default=0)


class _FusedStreamSummary:
    """Union-stream facade over per-shard stream summaries.

    Presents exactly the :class:`~repro.core.summaries.StreamSummary`
    surface the accurate search touches — ``stream_size``,
    ``rank_estimate`` and ``largest_at_most`` — each gathered across
    shards (sums for ranks, max for the predecessor).  With one shard
    every method degenerates to the underlying summary's, keeping the
    single-shard cluster bit-identical to a plain engine.
    """

    def __init__(self, summaries: Sequence[StreamSummary]) -> None:
        self._summaries = list(summaries)
        self.stream_size = sum(s.stream_size for s in self._summaries)

    @property
    def is_empty(self) -> bool:
        """Whether no shard held live stream elements."""
        return self.stream_size == 0

    def rank_estimate(self, value: int) -> float:
        """Sum of per-shard Algorithm 8 stream estimates."""
        return sum(s.rank_estimate(value) for s in self._summaries)

    def largest_at_most(self, value: int) -> "int | None":
        """Largest summary element <= value across every shard."""
        candidates = [
            c
            for c in (s.largest_at_most(value) for s in self._summaries)
            if c is not None
        ]
        return max(candidates) if candidates else None


class ClusterSnapshot:
    """A pinned, consistent view across every shard of a cluster.

    Holds one :class:`~repro.core.epoch.SnapshotHandle` per shard (in
    shard order) and mirrors the handle's query surface — ``quantile``,
    ``quantile_many``, ``query_rank``, ``warm``, ``epoch``,
    ``ts_merges_built`` — so the serving layer drives a cluster through
    the exact same duck-typed protocol as a single engine.

    Can be built from any list of pinned handles (not only via
    :meth:`ClusterEngine.pin`): the equivalence harness constructs one
    over *standalone* engines that replayed recorded per-shard feeds
    and checks the answers match the cluster's bit for bit.
    """

    def __init__(
        self,
        handles: Sequence[SnapshotHandle],
        config: EngineConfig,
        executor: QueryExecutor,
    ) -> None:
        if not handles:
            raise ValueError("a cluster snapshot needs at least one shard")
        self.handles = list(handles)
        self.config = config
        self._executor = executor
        #: tuple of per-shard epochs — hashable, so the coalescer's
        #: same-epoch batching works unchanged.
        self.epoch = tuple(h.epoch for h in self.handles)
        self.n_historical = sum(h.n_historical for h in self.handles)
        self.m_stream = sum(h.m_stream for h in self.handles)
        self._combined: Optional[CombinedSummary] = None
        self._merges = 0
        self._released = False

    # -- lifecycle ------------------------------------------------------

    @property
    def released(self) -> bool:
        """Whether :meth:`release` has run."""
        return self._released

    def release(self) -> None:
        """Release every per-shard pin (idempotent)."""
        if not self._released:
            self._released = True
            for handle in self.handles:
                handle.release()

    def __enter__(self) -> "ClusterSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    # -- derived views --------------------------------------------------

    @property
    def n_total(self) -> int:
        """Total elements across all shards at pin time."""
        return self.n_historical + self.m_stream

    def _scope(
        self,
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> "tuple[List[List[Partition]], List[StreamSummary]]":
        """Per-shard (partitions, SS) pairs for the queried scope."""
        partitions: List[List[Partition]] = []
        summaries: List[StreamSummary] = []
        for handle in self.handles:
            parts, ss = handle.scope(window_steps, step_range)
            partitions.append(list(parts))
            summaries.append(ss)
        return partitions, summaries

    def combined(
        self,
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> CombinedSummary:
        """Fused TS over every shard's scope (full scope cached)."""
        if window_steps is None and step_range is None:
            if self._combined is None:
                self._combined = self._build_combined(*self._scope())
            return self._combined
        return self._build_combined(*self._scope(window_steps, step_range))

    def _build_combined(
        self,
        shard_partitions: List[List[Partition]],
        summaries: List[StreamSummary],
    ) -> CombinedSummary:
        partition_summaries = [
            p.summary
            for parts in shard_partitions
            for p in parts
            if len(p) > 0
        ]
        built = CombinedSummary.build(partition_summaries, summaries)
        self._merges += 1
        return built

    @property
    def ts_merges_built(self) -> int:
        """Fused TS merges this snapshot has performed."""
        return self._merges

    def stream_rank(self, value: int) -> float:
        """Union-stream rank estimate: sum of per-shard sketch brackets."""
        return sum(h.stream_rank(value) for h in self.handles)

    def warm(
        self,
        phis: Sequence[float],
        cache: Optional[BlockCache] = None,
        window_steps: Optional[int] = None,
    ) -> int:
        """Per-shard warm pass (no-op without per-shard shared tiers).

        The ``cache`` argument is accepted for handle-protocol
        compatibility but ignored: each shard warms through its own
        tier, reading from its own disk.
        """
        del cache  # per-shard tiers use per-shard caches
        return sum(
            h.warm(phis, window_steps=window_steps) for h in self.handles
        )

    def _quick_bound(self, total: int, m_scope: int) -> float:
        hist_scope = max(0, total - m_scope)
        return (
            self.config.epsilon1 * hist_scope
            + self.config.epsilon2 * m_scope
        )

    def _new_cache(
        self, shard_partitions: List[List[Partition]]
    ) -> ShardedBlockCache:
        """Per-query sharded cache over the pinned per-shard views."""
        run_to_shard = {
            p.run.run_id: shard
            for shard, parts in enumerate(shard_partitions)
            for p in parts
        }
        return ShardedBlockCache(
            [h._new_cache() for h in self.handles], run_to_shard
        )

    # -- queries --------------------------------------------------------

    def query_rank(
        self,
        rank: int,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
        cache: Optional[ShardedBlockCache] = None,
    ) -> QueryResult:
        """Answer over the union of every shard's pinned view.

        Quick mode reads the fused TS; accurate mode runs the
        single-engine search over the union of partitions, with block
        touches routed per shard.  The result mirrors
        :meth:`SnapshotHandle.query_rank` field for field;
        ``parallel_sim_seconds`` is the per-device critical path (max
        blocks charged on any one shard's disk).
        """
        if mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")
        if self.n_total == 0:
            raise ValueError("snapshot is empty")
        started = time.perf_counter()
        shard_partitions, summaries = self._scope(window_steps, step_range)
        combined = self.combined(window_steps, step_range)
        rank = max(1, min(int(rank), combined.total_size))
        m_scope = sum(s.stream_size for s in summaries)
        quick_bound = self._quick_bound(combined.total_size, m_scope)
        degraded = False
        parallel_blocks = 0
        if mode == "quick":
            value = combined.quick_response(rank)
            blocks = 0
            estimated = float(rank)
            iterations = 0
            truncated = False
            bound = quick_bound
        else:
            if cache is None:
                cache = self._new_cache(shard_partitions)
            before = cache.per_shard_blocks()
            search = AccurateSearch(
                partitions=[
                    p for parts in shard_partitions for p in parts
                ],
                stream_summary=_FusedStreamSummary(summaries),
                combined=combined,
                config=self.config,
                rank=rank,
                stream_rank_fn=(
                    self.stream_rank if step_range is None else None
                ),
                cache=cache,
                executor=self._executor,
            )
            try:
                outcome = search.run()
            except DiskFault:
                if not self.config.degrade_on_fault:
                    raise
                outcome = None
            if outcome is None:
                degraded = True
                value = combined.quick_response(rank)
                blocks = 0
                estimated = float(rank)
                iterations = 0
                truncated = True
                bound = quick_bound
            else:
                value = outcome.value
                blocks = outcome.random_blocks
                estimated = outcome.estimated_rank
                iterations = outcome.iterations
                truncated = outcome.truncated
                bound = self.config.query_epsilon * m_scope
                parallel_blocks = max(
                    after - prior
                    for after, prior in zip(
                        cache.per_shard_blocks(), before
                    )
                )
        latency = self.handles[0]._disk.latency
        return QueryResult(
            value=int(value),
            target_rank=rank,
            total_size=combined.total_size,
            mode=mode,
            estimated_rank=estimated,
            disk_accesses=blocks,
            iterations=iterations,
            truncated=truncated,
            wall_seconds=time.perf_counter() - started,
            sim_seconds=blocks * latency.seconds_per_random_block,
            window_steps=window_steps,
            query_workers=self._executor.workers,
            degraded=degraded,
            rank_error_bound=float(bound),
            parallel_sim_seconds=(
                parallel_blocks * latency.seconds_per_random_block
            ),
        )

    def _scope_total(
        self,
        window_steps: Optional[int],
        step_range: "Optional[tuple[int, int]]",
    ) -> int:
        if window_steps is None and step_range is None:
            return self.n_total
        return sum(
            h._scope_total(window_steps, step_range) for h in self.handles
        )

    def quantile(
        self,
        phi: float,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> QueryResult:
        """A phi-quantile of the cluster-wide union (Definition 1)."""
        total = self._scope_total(window_steps, step_range)
        return self.query_rank(
            rank_for_phi(phi, total),
            mode=mode,
            window_steps=window_steps,
            step_range=step_range,
        )

    def quantile_many(
        self,
        phis: Sequence[float],
        mode: str = "quick",
        window_steps: Optional[int] = None,
    ) -> List[QueryResult]:
        """Batched quantiles against the fused view.

        Quick mode: one (cached) fused TS merge, one vectorized
        rank-bound pass — the coalescer's contract, unchanged.
        Accurate mode shares one sharded cache across the searches.
        """
        if mode not in ("quick", "accurate"):
            raise ValueError("mode must be 'quick' or 'accurate'")
        if self.n_total == 0:
            raise ValueError("snapshot is empty")
        if mode == "accurate":
            shard_partitions, _ = self._scope(window_steps)
            cache = self._new_cache(shard_partitions)
            return [
                self.query_rank(
                    rank_for_phi(
                        phi, self._scope_total(window_steps, None)
                    ),
                    mode="accurate",
                    window_steps=window_steps,
                    cache=cache,
                )
                for phi in phis
            ]
        started = time.perf_counter()
        _, summaries = self._scope(window_steps)
        combined = self.combined(window_steps)
        total = combined.total_size
        ranks = np.asarray(
            [
                max(1, min(rank_for_phi(phi, total), total))
                for phi in phis
            ],
            dtype=np.int64,
        )
        values = combined.quick_responses(ranks)
        bound = self._quick_bound(
            total, sum(s.stream_size for s in summaries)
        )
        wall = time.perf_counter() - started
        return [
            QueryResult(
                value=int(value),
                target_rank=int(rank),
                total_size=total,
                mode="quick",
                estimated_rank=float(rank),
                disk_accesses=0,
                iterations=0,
                truncated=False,
                wall_seconds=wall,
                sim_seconds=0.0,
                window_steps=window_steps,
                query_workers=self._executor.workers,
                rank_error_bound=float(bound),
            )
            for rank, value in zip(ranks, values)
        ]


class ClusterEngine:
    """Facade over N engine shards: one logical stream, one query API.

    Construction creates the shards (each with a fresh simulated disk)
    and the router.  Ingest fans out deterministically; time steps
    advance in lockstep (``end_time_step`` seals every shard); queries
    pin all shards and gather.  The serving layer's
    :class:`~repro.serving.service.QueryService` drives a cluster
    through the same duck-typed surface as a single engine — ``pin``,
    ``config``, ``shared_cache`` (``None``: warm passes are a per-shard
    concern) and ``disk``.
    """

    def __init__(
        self,
        shards: int = 2,
        config: Optional[EngineConfig] = None,
        epsilon: Optional[float] = None,
        router: Optional[ShardRouter] = None,
        engines: Optional[Sequence[HybridQuantileEngine]] = None,
    ) -> None:
        if config is None:
            if epsilon is None:
                raise ValueError("pass epsilon or a full EngineConfig")
            config = EngineConfig(epsilon=epsilon)
        self.config = config
        self.router = (
            router if router is not None else ShardRouter(shards)
        )
        if self.router.shards != shards:
            raise ValueError(
                f"router covers {self.router.shards} shards, "
                f"cluster has {shards}"
            )
        if engines is not None:
            if len(engines) != shards:
                raise ValueError(
                    f"got {len(engines)} engines for {shards} shards"
                )
            self.shards: List[HybridQuantileEngine] = list(engines)
        else:
            self.shards = [
                HybridQuantileEngine(config=config) for _ in range(shards)
            ]
        self._executor = QueryExecutor(
            workers=config.query_workers,
            retry=config.probe_retry_policy,
        )
        self._step = 0

    # -- ingest ---------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of engine shards."""
        return len(self.shards)

    def stream_update(self, value: int) -> None:
        """Route one live element to its shard."""
        self.shards[self.router.shard_of(value)].stream_update(value)

    def stream_update_many(self, values: np.ndarray) -> int:
        """Fan a numpy batch out per shard in one vectorized pass.

        Each shard receives its sub-stream in arrival order, so the
        fanned batch is indistinguishable from element-wise routing
        (and each shard's own batched path preserves its single-engine
        bit-identity contract).  Returns the number of elements
        ingested.
        """
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            arr = arr.ravel()
        if arr.size == 0:
            return 0
        for shard, chunk in zip(self.shards, self.router.route_many(arr)):
            if chunk.size:
                shard.stream_update_many(chunk)
        return int(arr.size)

    def stream_update_batch(self, values: Iterable[int]) -> None:
        """Iterable convenience wrapper over :meth:`stream_update_many`."""
        if isinstance(values, np.ndarray):
            self.stream_update_many(values)
        else:
            self.stream_update_many(
                np.fromiter(values, dtype=np.int64)
            )

    def end_time_step(self) -> List[StepReport]:
        """Seal the current step on every shard (lockstep).

        Returns the per-shard step reports in shard order.  All shards
        seal even when a shard received no elements this step, so step
        numbering — and therefore windowed queries — stays aligned
        across the cluster.
        """
        reports = [shard.end_time_step() for shard in self.shards]
        self._step += 1
        return reports

    def flush(self) -> List[List[StepReport]]:
        """Drain every shard's archiver; per-shard authoritative reports."""
        return [shard.flush() for shard in self.shards]

    # -- stats ----------------------------------------------------------

    @property
    def n_historical(self) -> int:
        """Elements archived across all shards."""
        return sum(s.n_historical for s in self.shards)

    @property
    def m_stream(self) -> int:
        """Live stream elements across all shards."""
        return sum(s.m_stream for s in self.shards)

    @property
    def n_total(self) -> int:
        """Total elements ingested across all shards."""
        return self.n_historical + self.m_stream

    @property
    def steps_sealed(self) -> int:
        """Lockstep count of sealed time steps."""
        return self._step

    @property
    def shared_cache(self):
        """Always ``None``: shared tiers live inside each shard.

        The serving layer checks this to decide whether to run warm
        passes itself; for a cluster, warming is delegated per shard
        via :meth:`ClusterSnapshot.warm`.
        """
        return None

    @property
    def disk(self):
        """Shard 0's disk (protocol compatibility; see per-shard stats)."""
        return self.shards[0].disk

    def available_window_sizes(self) -> List[int]:
        """Window sizes answerable on every shard (lockstep: identical)."""
        common = set(self.shards[0].available_window_sizes())
        for shard in self.shards[1:]:
            common &= set(shard.available_window_sizes())
        return sorted(common)

    def per_shard_sim_seconds(self) -> List[float]:
        """Simulated seconds accrued on each shard's device so far.

        ``max`` over the list is the cluster's I/O critical path — the
        wall-clock a deployment with one real device per shard would
        observe; ``sum`` is the single-device equivalent.
        """
        return [s.disk.simulated_seconds() for s in self.shards]

    def shard_reports(self) -> List[dict]:
        """Per-shard metrics: sizes, epochs, I/O — the gather side.

        One dict per shard with ingest sizes, epoch-layer counters and
        simulated-device accounting, ready for the serving layer's
        metrics endpoint or the ablation's JSON rows.
        """
        reports = []
        for index, shard in enumerate(self.shards):
            stats = shard.epoch_stats
            counters = shard.disk.stats.counters
            reports.append(
                {
                    "shard": index,
                    "n_historical": shard.n_historical,
                    "m_stream": shard.m_stream,
                    "steps_sealed": shard.steps_sealed,
                    "epoch": stats.current_epoch,
                    "ts_merges": stats.ts_merges,
                    "live_pins": stats.live_pins,
                    "io_total": counters.total,
                    "io_sequential": (
                        counters.sequential_reads + counters.sequential_writes
                    ),
                    "io_random": counters.random_reads,
                    "sim_seconds": shard.disk.simulated_seconds(),
                }
            )
        return reports

    # -- queries --------------------------------------------------------

    def pin(self) -> ClusterSnapshot:
        """Pin every shard (in shard order) into one consistent view.

        Per-shard pins are individually atomic against that shard's
        sealing; cross-shard exactness holds when ingest is quiesced
        (the equivalence harness's regime).  On failure every
        already-acquired pin is released.
        """
        handles: List[SnapshotHandle] = []
        try:
            for shard in self.shards:
                handles.append(shard.pin())
        except BaseException:
            for handle in handles:
                handle.release()
            raise
        return ClusterSnapshot(handles, self.config, self._executor)

    def query_rank(
        self,
        rank: int,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> QueryResult:
        """Rank query over the cluster-wide union (pin, gather, release)."""
        with self.pin() as snapshot:
            return snapshot.query_rank(
                rank,
                mode=mode,
                window_steps=window_steps,
                step_range=step_range,
            )

    def quantile(
        self,
        phi: float,
        mode: str = "accurate",
        window_steps: Optional[int] = None,
        step_range: "Optional[tuple[int, int]]" = None,
    ) -> QueryResult:
        """A phi-quantile of the cluster-wide union."""
        with self.pin() as snapshot:
            return snapshot.quantile(
                phi,
                mode=mode,
                window_steps=window_steps,
                step_range=step_range,
            )

    def quantile_many(
        self,
        phis: Sequence[float],
        mode: str = "quick",
        window_steps: Optional[int] = None,
    ) -> List[QueryResult]:
        """Batched quantiles over one pinned cluster view."""
        with self.pin() as snapshot:
            return snapshot.quantile_many(
                phis, mode=mode, window_steps=window_steps
            )

    # -- lifecycle ------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate every shard plus the cluster's lockstep contract."""
        for shard in self.shards:
            shard.check_invariants()
            if shard.steps_sealed != self._step:
                raise AssertionError(
                    f"shard sealed {shard.steps_sealed} steps, "
                    f"cluster sealed {self._step}"
                )

    def close(self) -> None:
        """Close every shard and the query executor (errors deferred)."""
        first_error: Optional[BaseException] = None
        for shard in self.shards:
            try:
                shard.close()
            except BaseException as exc:  # noqa: BLE001 - close all first
                if first_error is None:
                    first_error = exc
        self._executor.close()
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
