"""Sharded multi-engine cluster: routing, scatter/gather, durability."""

from .engine import ClusterEngine, ClusterSnapshot, ShardedBlockCache
from .persistence import list_shard_dirs, load_cluster, save_cluster
from .router import ShardRouter

__all__ = [
    "ClusterEngine",
    "ClusterSnapshot",
    "ShardedBlockCache",
    "ShardRouter",
    "list_shard_dirs",
    "load_cluster",
    "save_cluster",
]
