"""Sharded multi-engine cluster: routing, scatter/gather, durability."""

from .engine import (
    ClusterEngine,
    ClusterSnapshot,
    ClusterUnavailable,
    ShardedBlockCache,
    ShardErrors,
    shard_wal_dir,
)
from .persistence import list_shard_dirs, load_cluster, save_cluster
from .router import ShardRouter
from .supervisor import RecoveryEvent, ShardSupervisor

__all__ = [
    "ClusterEngine",
    "ClusterSnapshot",
    "ClusterUnavailable",
    "RecoveryEvent",
    "ShardErrors",
    "ShardSupervisor",
    "ShardedBlockCache",
    "ShardRouter",
    "list_shard_dirs",
    "load_cluster",
    "save_cluster",
    "shard_wal_dir",
]
