"""Tiered storage: the same engine on RAM, mmap files, and a bucket.

The storage backend decides where run payloads live — resident arrays
(``simulated``, the default), one atomically-committed ``.npy`` file
per run read through mmap (``mmap``), or hot files plus an emulated
S3-like bucket that cold warehouse levels age into (``object``).  It
never decides what a query answers or charges: this demo feeds the
same seeded stream through all three backends and shows bit-identical
quick and accurate answers with bit-identical charged block I/O, while
the object tier racks up GETs, PUTs and migrations on top — and shows
the shared cache absorbing the GETs of a warm sweep entirely.

    python examples/tiered_storage.py
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro import EngineConfig, HybridQuantileEngine

STEPS = 8
BATCH = 20_000
SEED = 42
PHIS = (0.05, 0.5, 0.95, 0.99)
BACKENDS = ("simulated", "mmap", "object")


def build_engine(backend: str, directory: Path) -> HybridQuantileEngine:
    config = EngineConfig(
        epsilon=0.01,
        kappa=3,  # small fan-in so runs merge upward and go cold
        block_elems=100,
        shared_cache_blocks=4096,
        storage_backend=backend,
        storage_dir=str(directory) if backend != "simulated" else None,
        object_tier_level=1,
    )
    engine = HybridQuantileEngine(config=config)
    rng = np.random.default_rng(SEED)
    for _ in range(STEPS):
        engine.stream_update_many(
            rng.normal(5e5, 1e5, BATCH).astype(np.int64)
        )
        engine.end_time_step()
    engine.stream_update_many(rng.normal(5e5, 1e5, BATCH).astype(np.int64))
    return engine


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-tiered-"))
    answers = {}
    charged = {}
    try:
        for backend in BACKENDS:
            engine = build_engine(backend, root / backend)
            device = engine.disk.backend

            quick = [
                engine.quantile(p, mode="quick").value for p in PHIS
            ]
            cold_before = device.stats()
            accurate = [
                engine.quantile(p, mode="accurate").value for p in PHIS
            ]
            cold = device.stats().delta_since(cold_before)

            warm_before = device.stats()
            for p in PHIS:
                engine.quantile(p, mode="accurate")
            warm = device.stats().delta_since(warm_before)

            counters = engine.disk.stats.counters
            answers[backend] = (quick, accurate)
            charged[backend] = counters.random_reads

            print(f"=== {backend} backend ===")
            print(f"  quick    : {quick}")
            print(f"  accurate : {accurate}")
            print(f"  charged random reads : {counters.random_reads}")
            if backend == "object":
                stats = device.stats()
                print(f"  tier residency : {stats.object_runs} runs cold, "
                      f"{stats.hot_runs} hot "
                      f"({stats.migrations} migrations)")
                print(f"  cold sweep : {cold.gets} GETs "
                      f"({cold.get_blocks} blocks)")
                print(f"  warm sweep : {warm.gets} GETs "
                      "(shared-cache hits never become requests)")
                print("  modeled seconds with request latency : "
                      f"{engine.disk.simulated_seconds():.4f}")
            engine.close()

        baseline = answers["simulated"]
        assert all(answers[b] == baseline for b in BACKENDS)
        assert len({charged[b] for b in BACKENDS}) == 1
        print("\nall three backends: bit-identical answers, "
              f"identical {charged['simulated']} charged blocks")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
