"""Quickstart: quantiles over the union of historical and streaming data.

Runs the hybrid engine over a few archived time steps plus a live
stream, queries the median and tail quantiles both ways (quick and
accurate), and checks the answers against an exact oracle.

    python examples/quickstart.py
"""

import numpy as np

from repro import ExactQuantiles, HybridQuantileEngine

EPSILON = 0.01  # rank error <= ~EPSILON * stream_size
KAPPA = 10      # merge threshold of the historical store
STEPS = 20      # archived time steps
BATCH = 50_000  # elements per time step


def main() -> None:
    rng = np.random.default_rng(7)
    engine = HybridQuantileEngine(epsilon=EPSILON, kappa=KAPPA,
                                  block_elems=100)
    oracle = ExactQuantiles()  # ground truth, for demonstration only

    print(f"Loading {STEPS} time steps of {BATCH:,} elements each...")
    for step in range(STEPS):
        batch = rng.normal(100e6, 10e6, BATCH).astype(np.int64)
        engine.stream_update_batch(batch)   # live stream
        oracle.update_batch(batch)
        report = engine.end_time_step()     # archive into the warehouse
        if report.merged_levels:
            print(f"  step {report.step}: merged partitions "
                  f"({report.io_total:,} disk accesses)")

    live = rng.normal(100e6, 10e6, BATCH).astype(np.int64)
    engine.stream_update_batch(live)        # today's not-yet-archived data
    oracle.update_batch(live)

    print(f"\nDataset: {engine.n_historical:,} historical + "
          f"{engine.m_stream:,} streaming elements")
    memory = engine.memory_report()
    print(f"Engine memory: {memory.total_words:,} words "
          f"({memory.total_megabytes:.2f} MB)\n")

    header = f"{'phi':>5} {'mode':>9} {'answer':>12} {'true rank':>12} " \
             f"{'target':>12} {'disk I/O':>9}"
    print(header)
    print("-" * len(header))
    for phi in (0.25, 0.5, 0.75, 0.95, 0.99):
        for mode in ("quick", "accurate"):
            result = engine.quantile(phi, mode=mode)
            true_rank = oracle.rank(result.value)
            print(f"{phi:>5} {mode:>9} {result.value:>12,} "
                  f"{true_rank:>12,} {result.target_rank:>12,} "
                  f"{result.disk_accesses:>9}")

    median = engine.quantile(0.5)
    exact = oracle.query_rank(median.target_rank)
    print(f"\nAccurate median {median.value:,} vs exact {exact:,} "
          f"(stream-bounded error, independent of history size)")


if __name__ == "__main__":
    main()
