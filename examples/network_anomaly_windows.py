"""Network monitoring with windowed quantile queries.

The paper motivates integrated historical + streaming analytics with
network monitoring for intrusion detection: compare the traffic
distribution of the last few time steps against long-run history.  This
demo streams synthetic source/destination flow keys, injects a scan
burst (one source fanning out to many destinations) late in the trace,
and uses *windowed* quantile queries — answerable whenever the window
aligns with partition boundaries — to spot the distribution shift that
full-history queries dilute away.

    python examples/network_anomaly_windows.py
"""

import numpy as np

from repro import HybridQuantileEngine, WindowNotAlignedError
from repro.workloads import NetworkTraceWorkload

STEPS = 27          # archived time steps (kappa=3 gives windows 1,3,9,27)
FLOWS = 30_000      # flows per step
SCAN_SOURCE = (1 << 20) - 1   # scanning host: sorts above all real traffic


def scan_burst(rng: np.random.Generator, size: int) -> np.ndarray:
    """A port-scan-like burst: one source, many random destinations."""
    destinations = rng.integers(0, 1 << 20, size, dtype=np.int64)
    return (np.int64(SCAN_SOURCE) << 20) | destinations


def main() -> None:
    workload = NetworkTraceWorkload(seed=4)
    rng = np.random.default_rng(99)
    engine = HybridQuantileEngine(epsilon=0.01, kappa=3, block_elems=100)

    print(f"Archiving {STEPS} steps of {FLOWS:,} flows each...")
    for step in range(STEPS):
        engine.stream_update_batch(workload.generate(FLOWS))
        engine.end_time_step()

    # The live step mixes normal traffic with the scan burst.
    normal = workload.generate(FLOWS // 2)
    burst = scan_burst(rng, FLOWS // 2)
    engine.stream_update_batch(np.concatenate([normal, burst]))

    print(f"Live stream: {engine.m_stream:,} flows "
          f"(half of them a scan burst from host {SCAN_SOURCE})\n")

    print("Feasible historical windows (time steps):",
          engine.available_window_sizes())
    try:
        engine.quantile(0.5, window_steps=5)
    except WindowNotAlignedError as exc:
        print(f"Window of 5 steps rejected as expected: {exc}\n")

    header = (f"{'window':>7} {'p50 source':>11} {'p90 source':>11} "
              f"{'disk I/O':>9}")
    print(header)
    print("-" * len(header))
    for window in [0] + engine.available_window_sizes():
        kwargs = {"window_steps": window} if window else {}
        p50 = engine.quantile(0.5, **kwargs)
        p90 = engine.quantile(0.9, **kwargs)
        label = f"{window or 'all'}"
        print(f"{label:>7} {p50.value >> 20:>11} {p90.value >> 20:>11} "
              f"{p50.disk_accesses + p90.disk_accesses:>9}")

    small = engine.quantile(0.9, window_steps=1)
    full = engine.quantile(0.9)
    print("\nThe scan source dominates the upper quantiles of the "
          "1-step window:")
    print(f"  p90 source over last step : {small.value >> 20}")
    print(f"  p90 source over all data  : {full.value >> 20}")


if __name__ == "__main__":
    main()
