"""Standing quantile alerts over a drifting distribution.

The paper's introduction motivates quantiles through DSMS-style
real-time alerting.  This demo registers standing p50/p99 threshold
rules with a :class:`~repro.core.monitoring.QuantileWatcher`, streams a
workload whose mean drifts upward and then jumps (a regression after a
deploy, say), and shows the alerts firing the moment the distribution
crosses the thresholds — each evaluation reading one consistent
snapshot, while quick-mode rules cost zero disk accesses.

    python examples/alerting_and_drift.py
"""

from repro import HybridQuantileEngine, QuantileWatcher
from repro.workloads import DriftWorkload

STEPS = 16
BATCH = 15_000


def main() -> None:
    workload = DriftWorkload(
        seed=5,
        start_mean=1_000_000,
        drift_per_batch=25_000,
        stddev=80_000,
        jump_at=12,           # the "bad deploy"
        jump_to=2_500_000,
    )
    engine = HybridQuantileEngine(epsilon=0.01, kappa=4, block_elems=100)
    watcher = QuantileWatcher(engine)
    watcher.add("median-drift", phi=0.5, above=1_150_000)
    watcher.add("p99-blowup", phi=0.99, above=2_400_000)

    print(f"{'step':>4} {'batch mean':>12} {'p50':>12} {'p99':>12}  alerts")
    for step in range(1, STEPS + 1):
        batch = workload.generate(BATCH)
        engine.stream_update_batch(batch)
        alerts = watcher.evaluate()
        p50 = engine.quantile(0.5, mode="quick").value
        p99 = engine.quantile(0.99, mode="quick").value
        names = ", ".join(a.rule.name for a in alerts) or "-"
        print(f"{step:>4} {batch.mean():>12,.0f} {p50:>12,} {p99:>12,}"
              f"  {names}")
        engine.end_time_step()

    print("\nThe p99 rule fires the step the regression lands; the median")
    print("rule fires once enough drifted data accumulates in the union.")


if __name__ == "__main__":
    main()
