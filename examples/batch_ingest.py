"""Batched ingest: the vectorized write path, timed and verified.

Feeds the same seeded stream twice — element at a time through
``stream_update`` and in numpy chunks through ``stream_update_many``
— then shows the two properties the batch path promises: the batched
feed is an order of magnitude (measured: two orders) faster, and
every quantile answer is bit-identical, because the engine absorbs
pending elements into its sketch lazily at read points, so how the
buffer was filled cannot matter.

    python examples/batch_ingest.py
"""

import time

import numpy as np

from repro import HybridQuantileEngine

EPSILON = 0.01
KAPPA = 10
STEPS = 4
BATCH = 100_000   # elements per archived time step
CHUNK = 4_096     # elements per stream_update_many call
PHIS = (0.25, 0.5, 0.75, 0.95, 0.99)


def feed_scalar(engine: HybridQuantileEngine, steps) -> float:
    """Element-at-a-time baseline; returns update wall seconds."""
    spent = 0.0
    for batch in steps:
        start = time.perf_counter()
        for value in batch.tolist():
            engine.stream_update(value)
        spent += time.perf_counter() - start
        engine.end_time_step()
    return spent


def feed_batched(engine: HybridQuantileEngine, steps) -> float:
    """Chunked numpy feed through the vectorized path."""
    spent = 0.0
    for batch in steps:
        start = time.perf_counter()
        for lo in range(0, batch.size, CHUNK):
            engine.stream_update_many(batch[lo:lo + CHUNK])
        spent += time.perf_counter() - start
        engine.end_time_step()
    return spent


def main() -> None:
    steps = [
        np.random.default_rng(42 + i)
        .normal(100e6, 10e6, BATCH)
        .astype(np.int64)
        for i in range(STEPS)
    ]
    elements = STEPS * BATCH

    print(f"Ingesting {STEPS} steps x {BATCH:,} elements, twice...")
    scalar_engine = HybridQuantileEngine(epsilon=EPSILON, kappa=KAPPA,
                                         block_elems=100)
    scalar_seconds = feed_scalar(scalar_engine, steps)
    batched_engine = HybridQuantileEngine(epsilon=EPSILON, kappa=KAPPA,
                                          block_elems=100)
    batched_seconds = feed_batched(batched_engine, steps)

    print(f"  scalar : {elements / scalar_seconds:>12,.0f} updates/s "
          f"({scalar_seconds:.2f}s)")
    print(f"  batched: {elements / batched_seconds:>12,.0f} updates/s "
          f"({batched_seconds:.2f}s, chunks of {CHUNK:,})")
    print(f"  speedup: {scalar_seconds / batched_seconds:,.0f}x\n")

    header = f"{'phi':>5} {'scalar feed':>14} {'batched feed':>14}"
    print(header)
    print("-" * len(header))
    mismatches = 0
    for phi in PHIS:
        scalar_answer = scalar_engine.quantile(phi).value
        batched_answer = batched_engine.quantile(phi).value
        mismatches += scalar_answer != batched_answer
        print(f"{phi:>5} {scalar_answer:>14,} {batched_answer:>14,}")
    if mismatches:
        raise SystemExit(f"{mismatches} answers differ — should be 0")
    print("\nEvery answer bit-identical: the batch path changes "
          "throughput, never results.")


if __name__ == "__main__":
    main()
