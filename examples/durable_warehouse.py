"""Durable warehouse: checkpoint, 'crash', recover, keep ingesting.

A data-stream warehouse must survive restarts without losing either
the archived partitions or the live stream sketch's state.  This demo
checkpoints the engine, discards the in-memory instance (the "crash"),
restores from disk, verifies the answers are identical, and then keeps
ingesting — plus shows that corruption of a partition file is caught by
the manifest checksums.

    python examples/durable_warehouse.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import HybridQuantileEngine
from repro.persistence import (
    PersistenceError,
    load_engine,
    save_engine,
)
from repro.workloads import UniformWorkload

STEPS = 12
BATCH = 20_000


def main() -> None:
    workload = UniformWorkload(seed=3)
    engine = HybridQuantileEngine(epsilon=0.01, kappa=4, block_elems=100)
    for _ in range(STEPS):
        engine.stream_update_batch(workload.generate(BATCH))
        engine.end_time_step()
    engine.stream_update_batch(workload.generate(BATCH))  # live stream

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "warehouse"
        save_engine(engine, checkpoint)
        files = sorted(p.name for p in (checkpoint / "warehouse").iterdir())
        print(f"Checkpointed {engine.n_total:,} elements to {checkpoint}")
        print(f"  warehouse files: {', '.join(files)}\n")

        before = {phi: engine.quantile(phi).value
                  for phi in (0.25, 0.5, 0.95)}
        del engine  # the "crash"

        restored = load_engine(checkpoint)
        print("Recovered engine state:")
        print(f"  historical: {restored.n_historical:,} elements over "
              f"{restored.steps_loaded} steps")
        print(f"  live stream: {restored.m_stream:,} elements "
              "(sketch state intact)")
        agreement = all(
            restored.quantile(phi).value == value
            for phi, value in before.items()
        )
        print(f"  answers identical to pre-crash: {agreement}\n")

        restored.end_time_step()
        restored.stream_update_batch(workload.generate(BATCH))
        print(f"Continued ingesting: now {restored.n_total:,} elements, "
              f"median {restored.quantile(0.5).value:,}\n")

        # Corrupt one partition file: recovery must refuse it.
        save_engine(restored, checkpoint)
        victim = next(iter((checkpoint / "warehouse").glob("part-*.npy")))
        blob = bytearray(victim.read_bytes())
        blob[-3] ^= 0xFF
        victim.write_bytes(bytes(blob))
        try:
            load_engine(checkpoint)
            print("corruption was NOT detected (unexpected)")
        except (PersistenceError, ValueError) as exc:
            print(f"Corrupted {victim.name}: recovery correctly refused —")
            print(f"  {exc}")


if __name__ == "__main__":
    main()
