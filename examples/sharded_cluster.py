"""Sharded cluster: one stream fanned over four engines.

A :class:`~repro.cluster.ClusterEngine` hash-routes every value to one
of N independent engines, each with its own simulated disk.  Ingest
and accurate-query I/O run on all shards concurrently, so the modeled
cost is the *critical path* — the max per-shard simulated seconds —
not the sum.  This demo feeds the same seeded stream into a plain
engine and a 4-shard cluster (KLL backend, so per-shard summaries
merge without inflating the bound), compares simulated ingest I/O,
shows quick answers agreeing within bounds and accurate answers
gathering the exact union rank, then round-trips the cluster through
a checkpoint.

    python examples/sharded_cluster.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ClusterEngine, EngineConfig, HybridQuantileEngine
from repro.cluster import load_cluster, save_cluster

SHARDS = 4
STEPS = 6
BATCH = 20_000
PHIS = (0.1, 0.5, 0.9, 0.99)


def feed(target, seed=1234):
    rng = np.random.default_rng(seed)
    for _ in range(STEPS):
        target.stream_update_many(
            rng.integers(0, 2**32, BATCH, dtype=np.int64)
        )
        target.end_time_step()
    target.flush()


def main() -> None:
    config = EngineConfig(
        epsilon=0.01, kappa=4, block_elems=100, sketch_backend="kll"
    )
    single = HybridQuantileEngine(config=config)
    cluster = ClusterEngine(shards=SHARDS, config=config)
    feed(single)
    feed(cluster)

    single_sim = single.disk.simulated_seconds()
    per_shard = cluster.per_shard_sim_seconds()
    critical = max(per_shard)
    print(f"ingest: {STEPS} steps x {BATCH:,} values, {SHARDS} shards")
    print(f"  single-engine simulated I/O   {single_sim * 1e3:8.1f} ms")
    print(f"  cluster critical path (max)   {critical * 1e3:8.1f} ms"
          f"  ({single_sim / critical:.1f}x)")
    for report in cluster.shard_reports():
        print(f"    shard {report['shard']}: n={report['n_historical']:,}"
              f"  sim={report['sim_seconds'] * 1e3:.1f} ms"
              f"  random reads={report['io_random']}")

    print(f"\n{'phi':>5} {'single acc':>12} {'cluster acc':>12}"
          f" {'cluster quick':>14} {'quick err<=':>11}")
    for phi in PHIS:
        exact = single.quantile(phi, mode="accurate")
        gathered = cluster.quantile(phi, mode="accurate")
        quick = cluster.quantile(phi, mode="quick")
        print(f"{phi:>5} {exact.value:>12,} {gathered.value:>12,}"
              f" {quick.value:>14,} {quick.rank_error_bound:>11.0f}")

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "cluster"
        save_cluster(cluster, root)
        restored = load_cluster(root)
        same = all(
            restored.quantile(phi, mode="accurate").value
            == cluster.quantile(phi, mode="accurate").value
            for phi in PHIS
        )
        restored.close()
    print(f"\ncheckpoint round-trip: answers identical = {same}")
    print("accurate answers gather the exact union rank across shards;")
    print("quick answers share one fused merged-KLL summary per epoch.")

    single.close()
    cluster.close()


if __name__ == "__main__":
    main()
