"""Heavy hitters over historical + streaming data (extension).

The paper names heavy hitters next to quantiles as the analytical
primitives that lack integrated historical/streaming methods, and its
future work asks for "other classes of aggregates in this model".  The
library's :class:`~repro.frequent.HeavyHittersEngine` carries the same
design over: Misra-Gries on the stream, the identical leveled
warehouse with partition summaries for candidates, and exact on-disk
counting — so count error is bounded by the stream alone, exactly like
the quantile guarantee.

Scenario: find the top talkers on a peering link across 20 archived
steps plus the live window, where one host only recently went loud.

    python examples/heavy_hitters_monitoring.py
"""

import numpy as np

from repro.frequent import HeavyHittersEngine, MisraGriesSketch
from repro.workloads import NetworkTraceWorkload

STEPS = 20
FLOWS = 20_000
CHRONIC_TALKER = 0x11111  # loud through all of history
RECENT_TALKER = 0x22222   # loud only in the live stream


def with_talker(base: np.ndarray, talker: int, share: float,
                rng: np.random.Generator) -> np.ndarray:
    planted = np.full(int(share * len(base)), np.int64(talker) << 20)
    mixed = np.concatenate([base[: len(base) - len(planted)], planted])
    rng.shuffle(mixed)
    return mixed


def main() -> None:
    rng = np.random.default_rng(11)
    workload = NetworkTraceWorkload(seed=12)
    engine = HeavyHittersEngine(epsilon=0.01, kappa=5, block_elems=100)
    everything = []

    print(f"Archiving {STEPS} steps of {FLOWS:,} flows "
          f"(host {CHRONIC_TALKER:#x} takes 8% throughout)...")
    for _ in range(STEPS):
        batch = with_talker(workload.generate(FLOWS), CHRONIC_TALKER,
                            0.08, rng)
        everything.append(batch)
        engine.stream_update_batch(batch)
        engine.end_time_step()

    live = with_talker(workload.generate(FLOWS), RECENT_TALKER, 0.30, rng)
    everything.append(live)
    engine.stream_update_batch(live)
    data = np.concatenate(everything)

    print(f"Live stream: host {RECENT_TALKER:#x} bursts to 30%\n")
    report = engine.heavy_hitters(phi=0.012)
    print(f"phi=0.012 heavy hitters over {report.total_size:,} flows "
          f"(threshold {report.threshold:,.0f}); "
          f"{report.candidates_checked} candidates, "
          f"{report.disk_accesses} disk accesses:")
    print(f"{'source':>10} {'count bracket':>23} {'true':>10}")
    for hitter in report.hitters[:8]:
        true = int(np.sum(data == hitter.value))
        print(f"{hitter.value >> 20:>10_x} "
              f"[{hitter.count_low:>10,}, {hitter.count_high:>10,}] "
              f"{true:>10,}")

    # Contrast with a pure-streaming Misra-Gries over all of T.
    pure = MisraGriesSketch.for_epsilon(0.01)
    pure.update_batch(data)
    chronic_key = np.int64(CHRONIC_TALKER) << 20
    true = int(np.sum(data == chronic_key))
    print(f"\nChronic talker true count : {true:,}")
    print(f"  hybrid bracket width    : "
          f"{[h for h in report.hitters if h.value == chronic_key][0].count_high - [h for h in report.hitters if h.value == chronic_key][0].count_low:,}"
          f" (bounded by eps * live stream)")
    print(f"  pure-streaming estimate : {pure.estimate(int(chronic_key)):,}"
          f" (may undercount by eps * N = {0.01 * len(data):,.0f})")


if __name__ == "__main__":
    main()
