"""Web-service latency monitoring (the paper's motivating Section 1 use).

A web service logs per-request latency in microseconds; each hour the
batch is archived to the warehouse.  Operators watch the median (the
"typical" user) and the 0.95/0.99 tail quantiles over *all* traffic —
historical plus the in-flight hour — and want today's live numbers in
the context of weeks of history.

The demo also shows why the hybrid engine matters: a pure-streaming GK
sketch at equal memory answers with error proportional to the entire
history, while the hybrid answer's error stays bounded by the current
hour.

    python examples/web_latency_monitoring.py
"""

import numpy as np

from repro import ExactQuantiles, HybridQuantileEngine, PureStreamingEngine

HOURS = 48          # archived time steps
REQUESTS = 40_000   # requests per hour
EPSILON = 0.01


def hourly_latencies(rng: np.random.Generator, hour: int,
                     size: int) -> np.ndarray:
    """Log-normal service latency with a nightly slowdown."""
    nightly = 1.0 + 0.3 * (hour % 24 in range(0, 6))  # backups at night
    base = rng.lognormal(mean=8.0, sigma=0.6, size=size) * nightly
    # a handful of timeouts stretch the tail
    timeouts = rng.random(size) < 0.001
    base[timeouts] *= 50
    return np.maximum(base.astype(np.int64), 1)


def main() -> None:
    rng = np.random.default_rng(2016)
    hybrid = HybridQuantileEngine(epsilon=EPSILON, kappa=10, block_elems=100)
    streaming = PureStreamingEngine(kind="gk", epsilon=EPSILON,
                                    universe_log2=26)
    oracle = ExactQuantiles()

    print(f"Ingesting {HOURS} hourly batches of {REQUESTS:,} requests...")
    for hour in range(HOURS):
        batch = hourly_latencies(rng, hour, REQUESTS)
        for engine in (hybrid, streaming):
            engine.stream_update_batch(batch)
            engine.end_time_step()
        oracle.update_batch(batch)

    live = hourly_latencies(rng, HOURS, REQUESTS)
    hybrid.stream_update_batch(live)
    streaming.stream_update_batch(live)
    oracle.update_batch(live)

    print(f"\nTotal requests observed: {oracle.n:,} "
          f"({hybrid.m_stream:,} in the live hour)\n")
    header = (f"{'quantile':>9} {'exact us':>10} {'hybrid us':>10} "
              f"{'stream us':>10} {'hybrid err':>11} {'stream err':>11}")
    print(header)
    print("-" * len(header))
    for phi, label in ((0.5, "median"), (0.95, "p95"), (0.99, "p99")):
        target = max(1, int(np.ceil(phi * oracle.n)))
        exact = oracle.query_rank(target)
        ours = hybrid.quantile(phi)
        theirs = streaming.quantile(phi)
        our_err = abs(oracle.rank(ours.value) - target)
        their_err = abs(oracle.rank(theirs.value) - target)
        print(f"{label:>9} {exact:>10,} {ours.value:>10,} "
              f"{theirs.value:>10,} {our_err:>11,} {their_err:>11,}")

    print("\nRank errors: hybrid is bounded by the live hour "
          f"(~{EPSILON * hybrid.m_stream:.0f}); pure streaming degrades "
          f"with total history (~{EPSILON * oracle.n:.0f}).")
    p99 = hybrid.quantile(0.99)
    print(f"Accurate p99 cost: {p99.disk_accesses} random block reads, "
          f"{p99.sim_seconds * 1000:.1f} ms simulated disk time.")


if __name__ == "__main__":
    main()
