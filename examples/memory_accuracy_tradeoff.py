"""Exploring the accuracy / memory / disk-access tradeoff (Section 4).

Sweeps a main-memory budget, derives the engine's error parameters from
it with the 50/50 split of Section 3.1 (via the invertible memory model
in ``repro.core.memory``), and reports how accuracy and query-time disk
accesses respond — the three-way tradeoff the paper's conclusion maps
out.  Also sweeps the stream/historical split, the paper's stated open
question.

    python examples/memory_accuracy_tradeoff.py
"""

import numpy as np

from repro import EngineConfig, ExactQuantiles, HybridQuantileEngine, MemoryBudget

STEPS = 16
BATCH = 25_000
PHIS = (0.25, 0.5, 0.75, 0.95)


def run_once(eps1: float, eps2: float, seed: int = 21):
    """Load a fixed workload into an engine with the given split."""
    rng = np.random.default_rng(seed)
    config = EngineConfig(
        epsilon=min(0.5, 4 * eps2), eps1=eps1, eps2=eps2,
        kappa=10, block_elems=100,
    )
    engine = HybridQuantileEngine(config=config)
    oracle = ExactQuantiles()
    for _ in range(STEPS):
        batch = rng.integers(10**8, 10**9, BATCH, dtype=np.int64)
        engine.stream_update_batch(batch)
        oracle.update_batch(batch)
        engine.end_time_step()
    live = rng.integers(10**8, 10**9, BATCH, dtype=np.int64)
    engine.stream_update_batch(live)
    oracle.update_batch(live)

    errors, accesses = [], []
    for phi in PHIS:
        result = engine.quantile(phi)
        target = result.target_rank
        err = max(
            0,
            oracle.rank_strict(result.value) + 1 - target,
            target - oracle.rank(result.value),
        )
        errors.append(err / target)
        accesses.append(result.disk_accesses)
    report = engine.memory_report()
    return np.mean(errors), np.mean(accesses), report.total_words


def main() -> None:
    print("Memory sweep (50/50 split)")
    header = (f"{'budget kw':>10} {'eps1':>9} {'eps2':>9} "
              f"{'rel error':>10} {'disk I/O':>9} {'used kw':>8}")
    print(header)
    print("-" * len(header))
    for kilowords in (4, 8, 16, 32, 64):
        budget = MemoryBudget(total_words=kilowords * 1000)
        eps1, eps2 = budget.epsilons(BATCH, kappa=10, num_steps=STEPS)
        error, io, used = run_once(eps1, eps2)
        print(f"{kilowords:>10} {eps1:>9.2e} {eps2:>9.2e} "
              f"{error:>10.2e} {io:>9.1f} {used / 1000:>8.1f}")

    print("\nSplit sweep (fixed 16k-word budget; paper: optimal split "
          "is an open question)")
    header = (f"{'stream %':>9} {'eps1':>9} {'eps2':>9} "
              f"{'rel error':>10} {'disk I/O':>9}")
    print(header)
    print("-" * len(header))
    for fraction in (0.2, 0.4, 0.5, 0.6, 0.8):
        budget = MemoryBudget(total_words=16_000, stream_fraction=fraction)
        eps1, eps2 = budget.epsilons(BATCH, kappa=10, num_steps=STEPS)
        error, io, _ = run_once(eps1, eps2)
        print(f"{fraction * 100:>9.0f} {eps1:>9.2e} {eps2:>9.2e} "
              f"{error:>10.2e} {io:>9.1f}")

    print("\nMore memory buys accuracy at slightly higher summary-scan "
          "cost; giving the stream side more of the budget is what "
          "drives the final error down.")


if __name__ == "__main__":
    main()
