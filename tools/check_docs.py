"""Documentation lint: docstring audit + markdown link checker.

Two dependency-free checks that keep the operator-facing documentation
layer from rotting (the CI docs job runs this script; the tier-1 suite
runs the same functions via ``tests/test_docs.py``):

* ``check_docstrings(paths)`` — an AST pass mirroring pydocstyle's
  D100–D104 missing-docstring rules (module, public class, public
  method, public function, package ``__init__``) over the public API
  surface.  Names with a leading underscore and dunder methods are
  exempt, matching pydocstyle's definition of "public".
* ``check_markdown_links(files)`` — every relative link target in the
  given markdown files must exist on disk (anchors stripped; absolute
  URLs and ``mailto:`` skipped).

Run from the repository root::

    python tools/check_docs.py

Exits non-zero listing every violation, so CI output shows the full
set at once rather than the first failure.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories whose public API must be fully docstringed.
DOCSTRING_SCOPES = ("src/repro/core", "src/repro/serving", "src/repro/cluster")

#: Markdown trees the link checker walks.
MARKDOWN_SCOPES = ("docs", "README.md", "CHANGES.md")

_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_in_class(node: ast.ClassDef, path: Path) -> "list[str]":
    problems = []
    if _is_public(node.name) and ast.get_docstring(node) is None:
        problems.append(f"{path}:{node.lineno}: class {node.name}")
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(child.name) and ast.get_docstring(child) is None:
                problems.append(
                    f"{path}:{child.lineno}: method "
                    f"{node.name}.{child.name}"
                )
    return problems


def check_docstrings(paths=DOCSTRING_SCOPES) -> "list[str]":
    """Return one line per missing public docstring under ``paths``."""
    problems = []
    for scope in paths:
        root = REPO_ROOT / scope
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(REPO_ROOT)
            tree = ast.parse(path.read_text(encoding="utf-8"))
            if ast.get_docstring(tree) is None:
                kind = "package" if path.name == "__init__.py" else "module"
                problems.append(f"{rel}:1: {kind} docstring missing")
            for node in tree.body:
                if isinstance(node, ast.ClassDef):
                    problems.extend(_missing_in_class(node, rel))
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if (
                        _is_public(node.name)
                        and ast.get_docstring(node) is None
                    ):
                        problems.append(
                            f"{rel}:{node.lineno}: function {node.name}"
                        )
    return problems


def _markdown_files(scopes=MARKDOWN_SCOPES) -> "list[Path]":
    files = []
    for scope in scopes:
        path = REPO_ROOT / scope
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def check_markdown_links(files=None) -> "list[str]":
    """Return one line per broken relative link in the markdown set."""
    problems = []
    for path in _markdown_files() if files is None else files:
        text = path.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), start=1):
            for target in _LINK_PATTERN.findall(line):
                if target.startswith(
                    ("http://", "https://", "mailto:", "#")
                ):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                resolved = (path.parent / relative).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                        f"broken link -> {target}"
                    )
    return problems


def main() -> int:
    """Run both checks; print violations and return an exit code."""
    problems = check_docstrings() + check_markdown_links()
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print("docs: docstring audit and link check clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
