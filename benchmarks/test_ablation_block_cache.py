"""Ablation A2: the Section 2.4 block-cache optimization.

The paper: "the recursive search needs to proceed only as long as the
pair of elements u and v are in different disk blocks. Once u and v
are within the same disk block, we ... store the block in memory ...
This yielded a reduction in the number of disk accesses."  This
ablation toggles the per-query block cache and measures that
reduction; accuracy must be unaffected (the same values are read
either way).
"""

from common import accuracy_scale, hybrid_engine, memory_words, show
from conftest import run_once
from repro.evaluation import ExperimentRunner
from repro.workloads import UniformWorkload


def one_run(block_cache: bool):
    scale = accuracy_scale()
    words = memory_words(250, scale)
    engine = hybrid_engine(words, scale, block_cache=block_cache)
    runner = ExperimentRunner(
        workload=UniformWorkload(seed=88),
        num_steps=scale.steps,
        batch_elems=scale.batch,
        keep_oracle=False,
    )
    result = runner.run({"ours": engine}, phis=(0.1, 0.25, 0.5, 0.75, 0.9))
    run = result["ours"]
    return (
        run.mean_query_disk_accesses,
        run.median_relative_error,
        [q.result.value for q in run.queries],
    )


def sweep():
    with_cache = one_run(block_cache=True)
    without = one_run(block_cache=False)
    return with_cache, without


def test_ablation_block_cache(benchmark):
    (io_on, err_on, values_on), (io_off, err_off, values_off) = run_once(
        benchmark, sweep
    )
    show(
        "Ablation A2: block-cache optimization (Uniform, 250 paper-MB)",
        ["variant", "query disk accesses", "rel error"],
        [["cache on", io_on, err_on], ["cache off", io_off, err_off]],
    )
    # The optimization strictly reduces (never increases) disk reads.
    assert io_on < io_off
    # Identical answers: the cache only changes accounting.
    assert values_on == values_off
