"""Figure 6: per-step update time breakdown vs memory, four datasets.

Paper result: the update time decomposes into load / sort / merge /
summary, with sort and merge dominating; the hybrid engine's update
costs about 1.5x the pure-streaming baselines (which skip sorting), and
the breakdown is essentially flat in the memory budget.
"""

import pytest

from common import (
    accuracy_scale,
    all_workloads,
    gk_engine,
    hybrid_engine,
    memory_words,
    qdigest_engine,
    show,
)
from conftest import run_once
from repro.evaluation import ExperimentRunner

MEMORY_POINTS = (100, 300, 500)


def sweep(workload):
    scale = accuracy_scale()
    rows = []
    for paper_mb in MEMORY_POINTS:
        words = memory_words(paper_mb, scale)
        runner = ExperimentRunner(
            workload=workload,
            num_steps=scale.steps,
            batch_elems=scale.batch,
            keep_oracle=False,
        )
        result = runner.run(
            {
                "ours": hybrid_engine(words, scale),
                "gk": gk_engine(words, scale),
                "qdigest": qdigest_engine(
                    words, scale, workload.universe_log2
                ),
            },
            phis=(0.5,),
        )
        ours = result["ours"].mean_update_seconds()
        ours_total = (
            result["ours"].ingest_seconds / scale.steps + ours["sim_io"]
        )
        gk_total = (
            result["gk"].ingest_seconds / scale.steps
            + result["gk"].mean_update_seconds()["sim_io"]
        )
        qd_total = (
            result["qdigest"].ingest_seconds / scale.steps
            + result["qdigest"].mean_update_seconds()["sim_io"]
        )
        rows.append(
            [
                paper_mb,
                ours["load"],
                ours["sort"],
                ours["merge"],
                ours["summary"],
                ours["sim_io"],
                ours_total,
                gk_total,
                qd_total,
            ]
        )
    return rows


@pytest.mark.parametrize(
    "panel", range(4), ids=["a_uniform", "b_normal", "c_wikipedia", "d_network"]
)
def test_fig6_update_time_vs_memory(benchmark, panel):
    workload = all_workloads()[panel]
    rows = run_once(benchmark, lambda: sweep(workload))
    show(
        f"Figure 6{'abcd'[panel]}: update time breakdown vs memory "
        f"({workload.name}; seconds/step, sim_io = simulated disk time)",
        [
            "paper MB", "load s", "sort s", "merge s", "summary s",
            "sim_io s", "ours total", "gk total", "qd total",
        ],
        rows,
    )
    for row in rows:
        ours_total, gk_total = row[6], row[7]
        # Ours costs more than pure streaming (it sorts), but stays
        # within a small factor (paper: ~1.5x).
        assert ours_total <= max(gk_total, 1e-9) * 25, row
    # all components non-negative
    assert all(value >= 0 for row in rows for value in row[1:])
