"""Ablation A9: the shared block cache on the accurate path.

The tentpole claim of the shared-cache PR: a warehouse-resident block
cache shared across queries turns the paper's per-query block
accounting into a cold/warm quantity — the first sweep over the
warehouse pays (almost) the historical cost, and every later query of
the same epoch finds its upper index blocks and residual ranges
resident, charging measurably fewer blocks.  This ablation measures
exactly that, cold vs. warm vs. disabled, both serially and under the
32-client accurate-path serving workload, and lands the table in
``BENCH_cache.json``.

Acceptance checks asserted here:

* warm queries charge measurably fewer blocks per accurate query than
  cold ones — serially and under 32 concurrent clients;
* every answer, cold or warm, shared tier or not, is bit-identical to
  a serial replay against the same engine state;
* aggregate charge counts of the shared-tier serving runs are
  deterministic across repeated seeded runs (the per-run sharded
  charge-once protocol at work — request interleaving and accurate-path
  dedup may reshuffle *who* pays, never *how much*);
* with the tier disabled, repeating a serial sweep repeats its charges
  exactly (the historical per-query accounting regression check).
"""


import numpy as np

from conftest import run_once
from common import bench_path, show, write_bench
from repro.core.config import ServingConfig
from repro.serving import QueryService
from repro.serving.bench import BENCH_PHIS, build_bench_engine
from repro.serving.loadgen import LoadGenerator

STEPS = 5
BATCH = 10_000
SEED = 7
CLIENTS = 32
REQUESTS_PER_CLIENT = 8
SHARED_BLOCKS = 4096
RESULT_FILE = bench_path("cache")


def build(shared_blocks):
    return build_bench_engine(
        steps=STEPS,
        batch=BATCH,
        seed=SEED,
        shared_cache_blocks=shared_blocks,
    )


def serial_sweep(engine, label):
    """One accurate query per phi; returns the per-query row."""
    results = [engine.quantile(phi, mode="accurate") for phi in BENCH_PHIS]
    blocks = [r.disk_accesses for r in results]
    walls = np.asarray([r.wall_seconds for r in results])
    return {
        "config": label,
        "clients": 1,
        "queries": len(results),
        "blocks_charged": int(sum(blocks)),
        "blocks_per_query": sum(blocks) / len(blocks),
        "p50_ms": float(np.percentile(walls, 50)) * 1e3,
        "p99_ms": float(np.percentile(walls, 99)) * 1e3,
        "values": [r.value for r in results],
    }


def serving_run(engine, label):
    """One 32-client closed-loop accurate run; returns the row."""
    serving = ServingConfig(
        max_queue=max(64, 4 * CLIENTS), accurate_queue=4 * CLIENTS
    )
    reads_before = engine.disk.stats.counters.random_reads
    with QueryService(engine, serving) as service:
        generator = LoadGenerator(service, phis=BENCH_PHIS, seed=SEED)
        result = generator.closed_loop(
            CLIENTS, REQUESTS_PER_CLIENT, mode="accurate"
        )
        snapshot = service.metrics_snapshot()
    charged = engine.disk.stats.counters.random_reads - reads_before
    # The engine is quiescent during the run: a serial replay of each
    # phi against the same state must reproduce every answer.
    serial = {
        phi: engine.quantile(phi, mode="accurate").value
        for phi in sorted({phi for phi, _, _ in result.answers})
    }
    identical = all(
        value == serial[phi] for phi, value, _ in result.answers
    )
    accurate = snapshot.latency["accurate"]
    return {
        "config": label,
        "clients": CLIENTS,
        "requests": result.requests,
        "served": result.served,
        "blocks_charged": int(charged),
        "blocks_per_query": charged / result.served,
        "p50_ms": accurate.p50 * 1e3,
        "p99_ms": accurate.p99 * 1e3,
        "bit_identical": identical,
        "cache_hits": snapshot.cache_hits,
        "cache_hit_rate": snapshot.cache_hit_rate,
        "warm_passes": snapshot.warm_passes,
        "warm_blocks": snapshot.warm_blocks,
        "answers": sorted(
            (phi, value) for phi, value, _ in result.answers
        ),
    }


def shared_serving_scenario():
    """Cold then warm 32-client runs on one shared-tier engine."""
    engine = build(SHARED_BLOCKS)
    try:
        cold = serving_run(engine, "shared-cold")
        warm = serving_run(engine, "shared-warm")
    finally:
        engine.close()
    return cold, warm


def sweep():
    doc = {
        "benchmark": "cache_ablation",
        "meta": {
            "steps": STEPS,
            "batch": BATCH,
            "seed": SEED,
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "shared_cache_blocks": SHARED_BLOCKS,
            "phis": list(BENCH_PHIS),
            "shards": 1,
            "sketch_backend": "gk",
            "storage_backend": "simulated",
            "object_tier": False,
        },
    }

    # Serial: disabled sweeps twice (accounting regression), shared
    # engine sweeps cold then warm.
    disabled = build(0)
    try:
        doc["serial"] = [
            serial_sweep(disabled, "disabled"),
            serial_sweep(disabled, "disabled-repeat"),
        ]
        doc["serving"] = [serving_run(disabled, "disabled")]
    finally:
        disabled.close()
    shared = build(SHARED_BLOCKS)
    try:
        doc["serial"].append(serial_sweep(shared, "shared-cold"))
        doc["serial"].append(serial_sweep(shared, "shared-warm"))
    finally:
        shared.close()

    # Serving: two identical seeded shared-tier scenarios — the second
    # exists purely to assert charge-count determinism.
    first_cold, first_warm = shared_serving_scenario()
    second_cold, second_warm = shared_serving_scenario()
    doc["serving"] += [first_cold, first_warm]
    doc["determinism"] = {
        "cold_blocks": [
            first_cold["blocks_charged"], second_cold["blocks_charged"]
        ],
        "warm_blocks": [
            first_warm["blocks_charged"], second_warm["blocks_charged"]
        ],
        "answers_identical": (
            first_cold["answers"] == second_cold["answers"]
            and first_warm["answers"] == second_warm["answers"]
        ),
    }
    return doc


def test_ablation_cache(benchmark):
    doc = run_once(benchmark, sweep)
    show(
        "Ablation A9: shared block cache (serial accurate sweeps)",
        ["config", "queries", "blocks", "blocks/query", "p50 ms", "p99 ms"],
        [
            [
                r["config"], r["queries"], r["blocks_charged"],
                round(r["blocks_per_query"], 2),
                round(r["p50_ms"], 3), round(r["p99_ms"], 3),
            ]
            for r in doc["serial"]
        ],
    )
    show(
        "Ablation A9: shared block cache (32-client accurate serving)",
        [
            "config", "served", "blocks", "blocks/query", "hit rate",
            "p50 ms", "p99 ms", "identical",
        ],
        [
            [
                r["config"], r["served"], r["blocks_charged"],
                round(r["blocks_per_query"], 2),
                round(r.get("cache_hit_rate", 0.0), 3),
                round(r["p50_ms"], 2), round(r["p99_ms"], 2),
                r["bit_identical"],
            ]
            for r in doc["serving"]
        ],
    )
    # The schema's common table: one row per serial config plus one
    # per serving scenario (the detailed groups stay alongside).
    doc["rows"] = doc["serial"] + doc["serving"]
    write_bench("cache", doc)

    serial = {r["config"]: r for r in doc["serial"]}
    serving = {r["config"]: r for r in doc["serving"]}

    # Historical accounting regression: without the shared tier each
    # query pays its own full block set, every time, identically.
    assert (
        serial["disabled"]["blocks_charged"]
        == serial["disabled-repeat"]["blocks_charged"]
    )
    assert serial["disabled"]["values"] == serial["disabled-repeat"]["values"]

    # Answers never depend on the cache configuration.
    for row in doc["serial"]:
        assert row["values"] == serial["disabled"]["values"], row["config"]

    # The headline: a warm shared tier charges measurably fewer blocks
    # per accurate query than a cold one — serially...
    assert (
        serial["shared-warm"]["blocks_charged"]
        <= serial["shared-cold"]["blocks_charged"] / 2
    )
    # ...and under the 32-client serving workload.
    assert (
        serving["shared-warm"]["blocks_charged"]
        <= serving["shared-cold"]["blocks_charged"] / 2
    )
    assert (
        serving["shared-warm"]["blocks_per_query"]
        < serving["disabled"]["blocks_per_query"]
    )
    assert serving["shared-warm"]["cache_hits"] > 0

    # Every served answer matched its serial replay, bit for bit.
    for row in doc["serving"]:
        assert row["served"] == row["requests"]
        assert row["bit_identical"], row["config"]

    # Deterministic charge counts across repeated seeded runs: the
    # shared tier charges each resident block once globally, so the
    # aggregate is interleaving-proof.
    determinism = doc["determinism"]
    assert determinism["cold_blocks"][0] == determinism["cold_blocks"][1]
    assert determinism["warm_blocks"][0] == determinism["warm_blocks"][1]
    assert determinism["answers_identical"]
