"""Benchmark-suite configuration.

Every bench runs its full experiment exactly once inside the
``benchmark`` fixture (rounds=1), so ``pytest benchmarks/
--benchmark-only`` both regenerates each figure's table and reports how
long the simulation took.
"""

import sys
from pathlib import Path

import pytest

# Make `import common` work no matter where pytest is invoked from.
sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_collection_modifyitems(items):
    """Every benchmark is benchmark-adjacent by definition: mark slow.

    Lets one invocation cover both suites while keeping the quick
    signal quick: ``pytest tests/ benchmarks/ -m "not slow"`` runs only
    tier-1, and ``-m slow`` selects the figure/ablation regenerators.
    """
    for item in items:
        item.add_marker(pytest.mark.slow)


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
