"""Figure 12: scalability in the historical data size.

Paper result (Normal, stream fixed at one batch, memory fixed,
kappa = 10): as historical data grows from 10 to 100 batches,
(a) relative error *decreases* (absolute error is stream-bounded while
the denominator phi*N grows), (b) per-step update cost grows, and
(c) query disk accesses grow (more partitions and bigger searches).
"""

from common import accuracy_scale, hybrid_engine, memory_words, show
from conftest import run_once
from repro.evaluation import ExperimentRunner
from repro.workloads import NormalWorkload

STEP_COUNTS = (5, 10, 20, 30)


def sweep():
    base = accuracy_scale()
    rows = []
    for steps in STEP_COUNTS:
        scale = type(base)(steps=steps, batch=base.batch,
                           block_elems=base.block_elems)
        words = memory_words(250, scale)
        engine = hybrid_engine(words, scale)
        runner = ExperimentRunner(
            workload=NormalWorkload(seed=5),
            num_steps=steps,
            batch_elems=scale.batch,
            keep_oracle=False,
        )
        result = runner.run({"ours": engine}, phis=(0.25, 0.5, 0.75))
        run = result["ours"]
        rows.append(
            [
                steps,
                engine.n_historical,
                run.median_relative_error,
                run.mean_update_io,
                run.mean_query_disk_accesses,
            ]
        )
    return rows


def test_fig12_scale_historical(benchmark):
    rows = run_once(benchmark, sweep)
    show(
        "Figure 12: accuracy and cost vs historical size "
        "(Normal, stream fixed at one batch)",
        ["steps", "n historical", "rel error", "update io", "query disk"],
        rows,
    )
    # (a) relative error shrinks as history grows (>= 2x over a 6x
    # range of history; the paper shows ~1/n).
    assert rows[-1][2] <= rows[0][2] / 2
    # (c) query disk accesses do not shrink with more history.
    assert rows[-1][4] >= rows[0][4] * 0.8
