"""Figure 7: update time and disk accesses per step vs kappa.

Paper result: update cost generally decreases as kappa grows (fewer,
later merges), with an anomaly around kappa = 9-10 caused by a single
expensive double merge landing inside the 100-step horizon; the
number of disk accesses and the update time track each other.
"""

import pytest

from common import PAPER_KAPPAS, all_workloads, hybrid_engine, io_scale, show
from conftest import run_once
from repro.evaluation import ExperimentRunner


def sweep(workload):
    scale = io_scale()
    words = 4000
    rows = []
    for kappa in PAPER_KAPPAS:
        engine = hybrid_engine(words, scale, kappa=kappa)
        runner = ExperimentRunner(
            workload=workload,
            num_steps=scale.steps,
            batch_elems=scale.batch,
            stream_elems=1,
            keep_oracle=False,
        )
        result = runner.run({"ours": engine}, phis=(0.5,))
        run = result["ours"]
        merge_io = sum(r.io_merge for r in run.step_reports) / scale.steps
        seconds = run.ingest_seconds / scale.steps + sum(
            r.sim_seconds for r in run.step_reports
        ) / scale.steps
        rows.append([kappa, run.mean_update_io, merge_io, seconds])
    return rows


@pytest.mark.parametrize(
    "panel", range(4), ids=["a_uniform", "b_normal", "c_wikipedia", "d_network"]
)
def test_fig7_update_vs_kappa(benchmark, panel):
    workload = all_workloads()[panel]
    rows = run_once(benchmark, lambda: sweep(workload))
    show(
        f"Figure 7{'abcd'[panel]}: update cost vs kappa ({workload.name}; "
        f"per-step averages over {io_scale().steps} steps)",
        ["kappa", "avg disk accesses", "avg merge accesses", "update s"],
        rows,
    )
    by_kappa = {row[0]: row[1] for row in rows}
    # The paper's kappa = 9 anomaly: a double merge makes 9 dearer
    # than 10 over a 100-step horizon.
    assert by_kappa[9] > by_kappa[10]
    # Large kappa merges rarely: cheapest updates at the top end.
    assert by_kappa[30] <= by_kappa[3]
    # Every step pays at least the batch write.
    assert min(row[1] for row in rows) >= io_scale().blocks_per_batch
