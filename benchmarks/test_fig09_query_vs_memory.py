"""Figure 9: query runtime and disk accesses vs memory, four datasets.

Paper result: the accurate response costs a modest number of random
block reads (low hundreds at 100 GB scale) that *decreases* slightly
with more memory (denser summaries narrow the on-disk search), while
pure-streaming queries touch no disk at all; the hybrid query time
stays within a small factor of the streaming baselines.
"""

import pytest

from common import (
    PAPER_MEMORY_MB,
    accuracy_scale,
    all_workloads,
    memory_words,
    run_contenders,
    show,
)
from conftest import run_once


def sweep(workload):
    scale = accuracy_scale()
    rows = []
    for paper_mb in PAPER_MEMORY_MB:
        words = memory_words(paper_mb, scale)
        result = run_contenders(
            workload, scale, words, include_quick=False
        )
        ours = result["ours"]
        rows.append(
            [
                paper_mb,
                ours.mean_query_disk_accesses,
                ours.mean_query_seconds,
                result["gk"].mean_query_seconds,
                result["qdigest"].mean_query_seconds,
            ]
        )
    return rows


@pytest.mark.parametrize(
    "panel", range(4), ids=["a_uniform", "b_normal", "c_wikipedia", "d_network"]
)
def test_fig9_query_vs_memory(benchmark, panel):
    workload = all_workloads()[panel]
    rows = run_once(benchmark, lambda: sweep(workload))
    show(
        f"Figure 9{'abcd'[panel]}: query cost vs memory ({workload.name}; "
        "seconds include simulated disk latency)",
        ["paper MB", "ours disk", "ours s", "gk s", "qdigest s"],
        rows,
    )
    accesses = [row[1] for row in rows]
    # Queries touch the disk, but only a bounded handful of blocks.
    assert all(0 < a < 1000 for a in accesses)
    # More memory never makes the disk search substantially worse
    # (paper: slight decrease).
    assert accesses[-1] <= accesses[0] * 1.5
