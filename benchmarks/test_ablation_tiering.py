"""Ablation A13: tiered storage backends behind the block-device protocol.

The tentpole claim of the storage-backend PR: where the bytes live is
orthogonal to what the engine charges.  The same seeded workload runs
on all three backends — simulated (resident arrays), mmap (one real
file per run), object (hot files plus an emulated bucket that cold
levels age into) — and must produce bit-identical quick and accurate
answers with bit-identical charged block I/O.  The backends differ
only in request-level accounting: the object tier counts GETs, PUTs
and migrations and folds per-request latency into the modeled clock.

Acceptance checks asserted here:

* quick and accurate answers are identical across the three backends,
  phi for phi, and so are the charged random/sequential counters;
* the object backend actually tiered: runs migrated into the bucket
  and cold accurate sweeps issue GETs against it;
* a warm sweep (shared cache resident) issues far fewer GETs than the
  cold sweep — request accounting follows the charge paths, so cache
  hits never become object requests;
* the object tier's modeled time exceeds the same workload's mmap
  time (requests cost latency), while charged blocks stay equal.

The table lands in ``BENCH_tiering.json``.
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np

from conftest import run_once
from common import show, write_bench
from repro import EngineConfig, HybridQuantileEngine

STEPS = 8
BATCH = 20_000
SEED = 1013
KAPPA = 3  # small fan-in so level-0 runs merge upward (and migrate)
SHARED_BLOCKS = 4096
OBJECT_TIER_LEVEL = 1
PHIS = (0.05, 0.25, 0.5, 0.75, 0.95, 0.99)
BACKENDS = ("simulated", "mmap", "object")


def build(backend, directory):
    config = EngineConfig(
        epsilon=0.01,
        kappa=KAPPA,
        block_elems=100,
        shared_cache_blocks=SHARED_BLOCKS,
        storage_backend=backend,
        storage_dir=str(directory) if backend != "simulated" else None,
        object_tier_level=OBJECT_TIER_LEVEL,
    )
    engine = HybridQuantileEngine(config=config)
    rng = np.random.default_rng(SEED)
    for _ in range(STEPS):
        engine.stream_update_many(
            rng.normal(5e5, 1e5, size=BATCH).astype(np.int64)
        )
        engine.end_time_step()
    # Leave a live stream tail so queries exercise the HS ∪ SS union.
    engine.stream_update_many(
        rng.normal(5e5, 1e5, size=BATCH // 2).astype(np.int64)
    )
    return engine


def accurate_sweep(engine):
    results = [engine.quantile(phi, mode="accurate") for phi in PHIS]
    return (
        [r.value for r in results],
        sum(r.disk_accesses for r in results),
    )


def run_backend(backend, directory):
    engine = build(backend, directory)
    try:
        quick = [engine.quantile(phi, mode="quick").value for phi in PHIS]
        device = engine.disk.backend

        cold_before = device.stats()
        accurate, cold_blocks = accurate_sweep(engine)
        cold = device.stats().delta_since(cold_before)

        warm_before = device.stats()
        accurate_warm, warm_blocks = accurate_sweep(engine)
        warm = device.stats().delta_since(warm_before)

        engine.check_invariants()
        counters = engine.disk.stats.counters
        stats = device.stats()
        return {
            "backend": backend,
            "quick": quick,
            "accurate": accurate,
            "accurate_warm": accurate_warm,
            "random_reads": int(counters.random_reads),
            "sequential_reads": int(counters.sequential_reads),
            "sequential_writes": int(counters.sequential_writes),
            "cold_blocks": int(cold_blocks),
            "warm_blocks": int(warm_blocks),
            "cold_gets": int(cold.gets),
            "cold_get_blocks": int(cold.get_blocks),
            "warm_gets": int(warm.gets),
            "puts": int(stats.puts),
            "lists": int(stats.lists),
            "migrations": int(stats.migrations),
            "object_runs": int(stats.object_runs),
            "hot_runs": int(stats.hot_runs),
            "sim_seconds": float(engine.disk.simulated_seconds()),
        }
    finally:
        engine.close()


def sweep():
    root = Path(tempfile.mkdtemp(prefix="repro-tiering-"))
    try:
        rows = [
            run_backend(backend, root / backend) for backend in BACKENDS
        ]
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "benchmark": "tiering_ablation",
        "meta": {
            "steps": STEPS,
            "batch": BATCH,
            "seed": SEED,
            "kappa": KAPPA,
            "shared_cache_blocks": SHARED_BLOCKS,
            "object_tier_level": OBJECT_TIER_LEVEL,
            "phis": list(PHIS),
            "shards": 1,
            "sketch_backend": "gk",
            "storage_backend": "object",
            "object_tier": True,
            "backends_swept": list(BACKENDS),
        },
        "rows": rows,
    }


def test_ablation_tiering(benchmark):
    doc = run_once(benchmark, sweep)
    show(
        "Ablation A13: tiered storage backends (identical charges, "
        "request accounting on top)",
        [
            "backend", "random reads", "cold GETs", "warm GETs",
            "PUTs", "migrations", "cold runs", "sim s",
        ],
        [
            [
                r["backend"], r["random_reads"], r["cold_gets"],
                r["warm_gets"], r["puts"], r["migrations"],
                r["object_runs"], round(r["sim_seconds"], 4),
            ]
            for r in doc["rows"]
        ],
    )
    write_bench("tiering", doc)

    rows = {row["backend"]: row for row in doc["rows"]}
    baseline = rows["simulated"]

    # The moat: answers and charged I/O are backend-independent.
    for name in BACKENDS:
        row = rows[name]
        assert row["quick"] == baseline["quick"], name
        assert row["accurate"] == baseline["accurate"], name
        assert row["accurate_warm"] == row["accurate"], name
        assert row["random_reads"] == baseline["random_reads"], name
        assert row["sequential_reads"] == baseline["sequential_reads"], name
        assert row["sequential_writes"] == baseline["sequential_writes"], name
        assert row["cold_blocks"] == baseline["cold_blocks"], name
        assert row["warm_blocks"] == baseline["warm_blocks"], name

    # Request counters stay zero off the object backend.
    for name in ("simulated", "mmap"):
        row = rows[name]
        assert row["cold_gets"] == 0 and row["puts"] == 0, name
        assert row["sim_seconds"] == baseline["sim_seconds"], name

    # The object backend actually tiered and served cold reads as GETs.
    tiered = rows["object"]
    assert tiered["migrations"] > 0
    assert tiered["object_runs"] > 0
    assert tiered["cold_gets"] > 0
    assert tiered["cold_get_blocks"] >= tiered["cold_gets"]

    # Warm sweeps find the shared tier resident: cache hits charge
    # nothing, so they never become object requests.
    assert tiered["warm_gets"] <= tiered["cold_gets"] / 4
    assert tiered["warm_blocks"] < tiered["cold_blocks"]

    # Requests cost modeled latency on top of the block model.
    assert tiered["sim_seconds"] > rows["mmap"]["sim_seconds"]
