"""Ablation A14: the cold-read fast path under concurrent clients.

The perf claim of the cold-read PR: ranged partial-object GETs with a
fetched-block registry, break-even readahead and single-flight fetch
coalescing cut the object tier's *request* traffic — GET count and
modeled request latency — by >= 5x on a 32-client cold accurate
scatter, while the *charge* layer (the paper's modeled block I/O) and
every answer stay bit-identical to the PR-9 baseline.

Six cells: {simulated, mmap, object} x {coalescing on, off}.  The
``fetch_coalescing=False`` cells reproduce the PR-9 behaviour exactly
(shard-lock serialized shared cache, one GET per charged range, no
readahead), so the object/off cell is the baseline the >= 5x speedup
is measured against.

Asserted here:

* accurate answers and charged random/sequential-read counters are
  bit-identical across all six cells — coalescing and concurrency
  change request accounting only, never what the engine charges;
* the object/on cell issues <= 1/5 the GETs of object/off and accrues
  <= 1/5 its modeled request latency;
* reported (not asserted, they are workload-shaped): the single-flight
  dedup ratio (coalesced waits per miss) and the mean GET width
  (``get_blocks / gets``) that readahead buys.

The table lands in ``BENCH_coldread.json``.
"""

import shutil
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from conftest import run_once
from common import show, write_bench
from repro import EngineConfig, HybridQuantileEngine

STEPS = 8
BATCH = 20_000
SEED = 1013
KAPPA = 3
SHARED_BLOCKS = 4096
OBJECT_TIER_LEVEL = 1
CLIENTS = 32
#: 4 scattered phis per client — a cold accurate scatter over the
#: whole distribution, so probes spray across every tiered run.
PHIS = tuple(np.round(np.linspace(0.004, 0.996, 4 * CLIENTS), 5))
BACKENDS = ("simulated", "mmap", "object")
SPEEDUP_FLOOR = 5.0


def build(backend, coalescing, directory):
    config = EngineConfig(
        epsilon=0.01,
        kappa=KAPPA,
        block_elems=100,
        shared_cache_blocks=SHARED_BLOCKS,
        storage_backend=backend,
        storage_dir=str(directory) if backend != "simulated" else None,
        object_tier_level=OBJECT_TIER_LEVEL,
        fetch_coalescing=coalescing,
    )
    engine = HybridQuantileEngine(config=config)
    rng = np.random.default_rng(SEED)
    for _ in range(STEPS):
        engine.stream_update_many(
            rng.normal(5e5, 1e5, size=BATCH).astype(np.int64)
        )
        engine.end_time_step()
    # Leave a live stream tail so queries exercise the HS ∪ SS union.
    engine.stream_update_many(
        rng.normal(5e5, 1e5, size=BATCH // 2).astype(np.int64)
    )
    return engine


def request_seconds(device, delta):
    """Modeled request latency of one stats delta (read side only)."""
    model = getattr(device, "latency", None)
    if model is None:
        return 0.0
    return (
        delta.gets * model.seconds_per_get
        + delta.get_blocks * model.seconds_per_get_block
    )


def run_cell(backend, coalescing, directory):
    engine = build(backend, coalescing, directory)
    try:
        device = engine.disk.backend
        counters = engine.disk.stats.counters
        rr0, sr0 = counters.random_reads, counters.sequential_reads
        before = device.stats()
        epoch0 = engine.epoch_stats

        # 32 clients, 4 scattered accurate quantiles each, all cold.
        answers = [None] * len(PHIS)

        def client(i):
            for j in range(i, len(PHIS), CLIENTS):
                answers[j] = engine.quantile(
                    PHIS[j], mode="accurate"
                ).value

        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            list(pool.map(client, range(CLIENTS)))

        delta = device.stats().delta_since(before)
        epoch1 = engine.epoch_stats
        engine.check_invariants()
        misses = epoch1.cache_misses - epoch0.cache_misses
        waits = (
            epoch1.cache_coalesced_waits - epoch0.cache_coalesced_waits
        )
        return {
            "backend": backend,
            "coalescing": bool(coalescing),
            "accurate": [int(v) for v in answers],
            "random_reads": int(counters.random_reads - rr0),
            "sequential_reads": int(counters.sequential_reads - sr0),
            "gets": int(delta.gets),
            "get_blocks": int(delta.get_blocks),
            "get_width": (
                round(delta.get_blocks / delta.gets, 2) if delta.gets else 0.0
            ),
            "coalesced_waits": int(waits),
            "dedup_ratio": round(waits / misses, 3) if misses else 0.0,
            "request_seconds": round(request_seconds(device, delta), 6),
            "migrations": int(device.stats().migrations),
            "object_runs": int(device.stats().object_runs),
        }
    finally:
        engine.close()


def sweep():
    root = Path(tempfile.mkdtemp(prefix="repro-coldread-"))
    try:
        rows = [
            run_cell(backend, coalescing, root / f"{backend}-{coalescing}")
            for backend in BACKENDS
            for coalescing in (True, False)
        ]
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "benchmark": "coldread_ablation",
        "meta": {
            "steps": STEPS,
            "batch": BATCH,
            "seed": SEED,
            "kappa": KAPPA,
            "shared_cache_blocks": SHARED_BLOCKS,
            "object_tier_level": OBJECT_TIER_LEVEL,
            "clients": CLIENTS,
            "queries": len(PHIS),
            "speedup_floor": SPEEDUP_FLOOR,
            "shards": 1,
            "sketch_backend": "gk",
            "storage_backend": "object",
            "object_tier": True,
            "backends_swept": list(BACKENDS),
        },
        "rows": rows,
    }


def test_ablation_coldread(benchmark):
    doc = run_once(benchmark, sweep)
    show(
        "Ablation A14: cold-read fast path "
        "(32-client cold accurate scatter)",
        [
            "backend", "coalesce", "random reads", "GETs", "GET blocks",
            "width", "dedup", "req s",
        ],
        [
            [
                r["backend"], r["coalescing"], r["random_reads"],
                r["gets"], r["get_blocks"], r["get_width"],
                r["dedup_ratio"], r["request_seconds"],
            ]
            for r in doc["rows"]
        ],
    )
    write_bench("coldread", doc)

    rows = {
        (row["backend"], row["coalescing"]): row for row in doc["rows"]
    }
    baseline = rows[("simulated", True)]

    # The moat: answers and charged I/O are identical in every cell —
    # across backends, and with coalescing on or off, despite 32
    # clients racing on the shared cache.
    for key, row in rows.items():
        assert row["accurate"] == baseline["accurate"], key
        assert row["random_reads"] == baseline["random_reads"], key
        assert row["sequential_reads"] == baseline["sequential_reads"], key

    # Request counters exist only on the object tier.
    for backend in ("simulated", "mmap"):
        for coalescing in (True, False):
            row = rows[(backend, coalescing)]
            assert row["gets"] == 0, (backend, coalescing)
            assert row["request_seconds"] == 0.0, (backend, coalescing)

    fast = rows[("object", True)]
    slow = rows[("object", False)]
    assert slow["gets"] > 0 and fast["gets"] > 0
    assert fast["migrations"] > 0 and fast["object_runs"] > 0

    # The tentpole: >= 5x fewer GETs and >= 5x less modeled request
    # latency than the PR-9 baseline cell, for identical answers.
    assert fast["gets"] * SPEEDUP_FLOOR <= slow["gets"], (
        fast["gets"], slow["gets"]
    )
    assert (
        fast["request_seconds"] * SPEEDUP_FLOOR <= slow["request_seconds"]
    ), (fast["request_seconds"], slow["request_seconds"])

    # Readahead is why: coalesced GETs are wide, baseline GETs narrow.
    assert fast["get_width"] > slow["get_width"]
