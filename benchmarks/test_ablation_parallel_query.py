"""Ablation A4: parallel partition reads (paper Section 4, implemented).

"During query processing on historical data, different disk partitions
can be processed in parallel, leading to a lower latency by
overlapping different disk reads."  The engine executes this through
``repro.query``: with ``query_workers > 1`` the accurate response fans
its per-partition rank searches out over a thread pool.  This ablation
reports, per kappa:

* the *modeled* speedup — serial simulated latency (every block read
  paid in sequence) over the parallel critical path (deepest
  single-partition chain), the paper's 1 ms/random-block model;
* the *realized* speedup — measured wall-clock of the same accurate
  queries executed serially vs. on the thread pool.

The modeled number is what a disk-bound deployment gains; the realized
number on the simulated (in-memory) disk is GIL- and handoff-bound and
is reported to keep the model honest rather than to win.  More
partitions (larger kappa) means more overlap for both.
"""

import time

from common import (
    accuracy_scale,
    hybrid_engine,
    memory_words,
    show,
)
from conftest import run_once
from repro.evaluation import ExperimentRunner
from repro.workloads import UniformWorkload

KAPPAS = (3, 10, 20)
PHIS = (0.1, 0.25, 0.5, 0.75, 0.9)
WALL_REPEATS = 5
# Sized to cover the per-kappa partition fan-out, not the core count:
# probe threads overlap (simulated) I/O waits, so more threads than
# cores is the realistic deployment shape.
WORKERS = 8


def measured_wall_seconds(engine, workers: int) -> float:
    """Mean wall-clock of one accurate query pass at ``workers``."""
    engine.set_query_workers(workers)
    # Warm-up pass: the first parallel query pays thread-pool creation.
    for phi in PHIS:
        engine.quantile(phi)
    started = time.perf_counter()
    for _ in range(WALL_REPEATS):
        for phi in PHIS:
            engine.quantile(phi)
    return (time.perf_counter() - started) / (WALL_REPEATS * len(PHIS))


def sweep():
    scale = accuracy_scale()
    words = memory_words(250, scale)
    rows = []
    for kappa in KAPPAS:
        engine = hybrid_engine(words, scale, kappa=kappa)
        runner = ExperimentRunner(
            workload=UniformWorkload(seed=55),
            num_steps=scale.steps,
            batch_elems=scale.batch,
            keep_oracle=False,
        )
        result = runner.run({"ours": engine}, phis=PHIS)
        queries = [q.result for q in result["ours"].queries]
        serial = sum(q.sim_seconds for q in queries) / len(queries)
        parallel = sum(q.parallel_sim_seconds for q in queries) / len(queries)
        partitions = engine.store.partition_count()
        modeled_speedup = serial / parallel if parallel else 1.0
        wall_serial = measured_wall_seconds(engine, workers=1)
        wall_parallel = measured_wall_seconds(engine, workers=WORKERS)
        engine.close()
        realized_speedup = (
            wall_serial / wall_parallel if wall_parallel else 1.0
        )
        rows.append([
            kappa, partitions, serial, parallel, modeled_speedup,
            wall_serial, wall_parallel, realized_speedup,
        ])
    return rows


def test_ablation_parallel_query(benchmark):
    rows = run_once(benchmark, sweep)
    show(
        "Ablation A4: modeled vs realized parallel query speedup "
        f"(Uniform, 250 paper-MB, {WORKERS} workers)",
        [
            "kappa", "partitions", "serial s", "parallel s", "modeled x",
            "wall serial s", "wall parallel s", "realized x",
        ],
        rows,
    )
    for row in rows:
        kappa, partitions, serial, parallel, modeled = row[:5]
        wall_serial, wall_parallel, realized = row[5:]
        assert parallel <= serial + 1e-12
        # With more than one partition, overlapped reads must win in
        # the latency model.
        if partitions > 1:
            assert modeled > 1.0
        # The realized measurement must be a sane, positive timing.
        assert wall_serial > 0 and wall_parallel > 0 and realized > 0
    # Overlapping partition reads buys a substantial modeled latency
    # win somewhere in the sweep (the paper's motivation).  The exact
    # speedup-vs-kappa relationship depends on per-partition chain
    # depths, so no monotonicity is asserted; the realized (GIL-bound)
    # speedup is reported, not asserted.
    assert max(row[4] for row in rows) >= 2.0
