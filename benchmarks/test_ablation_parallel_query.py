"""Ablation A4: parallel partition reads (paper Section 4, future work).

"During query processing on historical data, different disk partitions
can be processed in parallel, leading to a lower latency by
overlapping different disk reads."  The engine tracks each query's
per-partition read chains; this ablation compares the serial latency
(all reads sequential) against the parallel critical path (max chain),
as a function of kappa — more partitions means more overlap to win.
"""

from common import (
    accuracy_scale,
    hybrid_engine,
    memory_words,
    show,
)
from conftest import run_once
from repro.evaluation import ExperimentRunner
from repro.workloads import UniformWorkload

KAPPAS = (3, 10, 20)


def sweep():
    scale = accuracy_scale()
    words = memory_words(250, scale)
    rows = []
    for kappa in KAPPAS:
        engine = hybrid_engine(words, scale, kappa=kappa)
        runner = ExperimentRunner(
            workload=UniformWorkload(seed=55),
            num_steps=scale.steps,
            batch_elems=scale.batch,
            keep_oracle=False,
        )
        result = runner.run(
            {"ours": engine}, phis=(0.1, 0.25, 0.5, 0.75, 0.9)
        )
        queries = [q.result for q in result["ours"].queries]
        serial = sum(q.sim_seconds for q in queries) / len(queries)
        parallel = sum(q.parallel_sim_seconds for q in queries) / len(queries)
        partitions = engine.store.partition_count()
        speedup = serial / parallel if parallel else 1.0
        rows.append([kappa, partitions, serial, parallel, speedup])
    return rows


def test_ablation_parallel_query(benchmark):
    rows = run_once(benchmark, sweep)
    show(
        "Ablation A4: serial vs parallel query latency "
        "(Uniform, 250 paper-MB)",
        ["kappa", "partitions", "serial s", "parallel s", "speedup"],
        rows,
    )
    for kappa, partitions, serial, parallel, speedup in rows:
        assert parallel <= serial + 1e-12
        # With more than one partition, parallel reads must win.
        if partitions > 1:
            assert speedup > 1.0
    # Overlapping partition reads buys a substantial latency win
    # somewhere in the sweep (the paper's motivation for the parallel
    # direction).  The exact speedup-vs-kappa relationship depends on
    # per-partition chain depths, so no monotonicity is asserted.
    assert max(row[4] for row in rows) >= 2.0
