"""Ablation A7: background ingest — overlap archiving with the stream.

The synchronous path stalls the stream for every step's full archive
latency (sort + level merges + summary construction).  With
``ingest_mode="background"`` the engine seals the batch, resets the
live sketch and hands the archive work to the ``repro.ingest`` thread;
the stream only ever waits on backpressure.  This ablation drives the
same interleaved ingest+query workload through both modes and reports

* per-step stream stall (the number a latency SLO cares about),
* archive latency (the same work, now off the hot path),
* end-to-end wall time of the whole run,

and writes the table to ``BENCH_ingest.json`` next to this file.  On a
multi-core host the background mode's total stall must come in strictly
below the sync mode's archive time (the overlap is real, not just
deferred accounting); answers after ``flush()`` must be identical in
both modes — the equivalence the unit suite verifies exhaustively at
small scale, re-checked here at benchmark scale.
"""

import os
import time


from common import accuracy_scale, bench_path, hybrid_engine, show, write_bench
from conftest import run_once
from repro.workloads import NormalWorkload

PHIS = (0.25, 0.5, 0.75, 0.95)
KAPPA = 10
QUERIES_PER_STEP = 2
RESULT_FILE = bench_path("ingest")


def drive(mode):
    """One interleaved ingest+query run; returns metrics + answers."""
    scale = accuracy_scale()
    engine = hybrid_engine(
        max(64, scale.batch // 10), scale, kappa=KAPPA, ingest_mode=mode
    )
    workload = NormalWorkload(seed=909)
    stall = 0.0
    archive_wall = 0.0
    mid_run_answers = []
    started = time.perf_counter()
    for step in range(scale.steps):
        engine.stream_update_batch(workload.generate(scale.batch))
        report = engine.end_time_step()
        stall += report.stall_seconds
        if report.archived:
            archive_wall += report.archive_wall_seconds
        # interleaved queries: the background archiver keeps working
        # underneath these
        if step % (scale.steps // (QUERIES_PER_STEP * 4) or 1) == 0:
            for phi in PHIS[:QUERIES_PER_STEP]:
                mid_run_answers.append(engine.quantile(phi).value)
    flushed = engine.flush()
    end_to_end = time.perf_counter() - started
    stats = engine.ingest_stats
    if stats is not None:
        archive_wall = stats.archive_wall_seconds
        # flush-time waiting is stream stall too: the producer blocked
        # on the archiver catching up
        stall = stats.stall_seconds
    final_answers = [engine.quantile(phi).value for phi in PHIS]
    layout = [
        (p.level, p.start_step, p.end_step, len(p))
        for p in engine.store.partitions()
    ]
    engine.check_invariants()
    io_total = engine.disk.stats.counters.total
    io_archive = sum(
        getattr(engine.disk.stats, bucket).total
        for bucket in ("load", "sort", "merge")
    )
    queue_depth = stats.max_queue_depth if stats is not None else 0
    engine.close()
    return {
        "mode": mode,
        "stall_seconds": stall,
        "archive_wall_seconds": archive_wall,
        "end_to_end_seconds": end_to_end,
        "max_queue_depth": queue_depth,
        "steps": scale.steps,
        "io_total": io_total,
        "io_archive": io_archive,
        "flushed_reports": len(flushed),
        "mid_run_answers": mid_run_answers,
        "final_answers": final_answers,
        "layout": layout,
    }


def sweep():
    return [drive("sync"), drive("background")]


def test_ablation_ingest(benchmark):
    rows = run_once(benchmark, sweep)
    sync, background = rows
    show(
        "Ablation A7: sync vs background ingest (Normal, interleaved "
        "queries)",
        [
            "mode", "stall s", "archive s", "end-to-end s", "max depth",
            "io blocks",
        ],
        [
            [
                r["mode"],
                r["stall_seconds"],
                r["archive_wall_seconds"],
                r["end_to_end_seconds"],
                r["max_queue_depth"],
                r["io_total"],
            ]
            for r in rows
        ],
    )
    write_bench(
        "ingest",
        {
            "benchmark": "ingest_ablation",
            "meta": {
                "shards": 1,
                "sketch_backend": "gk",
                "storage_backend": "simulated",
                "object_tier": False,
            },
            "rows": [
                {
                    key: row[key]
                    for key in (
                        "mode",
                        "stall_seconds",
                        "archive_wall_seconds",
                        "end_to_end_seconds",
                        "max_queue_depth",
                        "steps",
                        "io_total",
                        "io_archive",
                    )
                }
                for row in rows
            ],
        },
    )

    # Identical work: the archival phases (load/sort/merge) charge the
    # same blocks in both modes, and after flush() the layout and every
    # answer match.  io_total is *not* compared: a query that lands
    # mid-archive probes the extra still-unmerged pending partition, so
    # query-phase random reads depend on archiver timing by design.
    assert sync["io_archive"] == background["io_archive"]
    assert sync["layout"] == background["layout"]
    assert sync["mid_run_answers"] == background["mid_run_answers"]
    assert sync["final_answers"] == background["final_answers"]
    assert background["flushed_reports"] == background["steps"]

    # In sync mode the stream stalls for the entire archive latency.
    assert sync["stall_seconds"] >= sync["archive_wall_seconds"] * 0.95
    # The overlap claim needs a second core to archive on; on a
    # single-core host the background thread merely time-slices, so the
    # strict inequality is only asserted with real parallel hardware.
    if (os.cpu_count() or 1) >= 2:
        assert (
            background["stall_seconds"] < sync["archive_wall_seconds"]
        ), (
            background["stall_seconds"], sync["archive_wall_seconds"],
        )
