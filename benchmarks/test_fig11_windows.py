"""Figure 11: windowed queries — feasible sizes and cost vs window.

Paper result (Normal, 100 steps): with kappa = 3 only a handful of
window sizes align with partition boundaries, while kappa = 10 offers
many more choices (fewer merges leave more boundaries intact); query
cost grows with the window size, since wider windows cover more data.
"""

from common import accuracy_scale, hybrid_engine, memory_words, show
from conftest import run_once
from repro.evaluation import ExperimentRunner
from repro.workloads import NormalWorkload


def sweep():
    scale = accuracy_scale()
    words = memory_words(250, scale)
    out = {}
    for kappa in (3, 10):
        engine = hybrid_engine(words, scale, kappa=kappa)
        runner = ExperimentRunner(
            workload=NormalWorkload(seed=42),
            num_steps=scale.steps,
            batch_elems=scale.batch,
            keep_oracle=False,
        )
        runner.run({"ours": engine}, phis=())
        engine.stream_update_batch(NormalWorkload(seed=43).generate(scale.batch))
        rows = []
        for window in engine.available_window_sizes():
            result = engine.quantile(0.5, window_steps=window)
            rows.append(
                [
                    window,
                    result.total_size,
                    result.disk_accesses,
                    result.wall_seconds + result.sim_seconds,
                ]
            )
        out[kappa] = rows
    return out


def test_fig11_windows(benchmark):
    out = run_once(benchmark, sweep)
    for kappa, rows in sorted(out.items()):
        show(
            f"Figure 11 (kappa={kappa}): query cost vs window size "
            f"(Normal, {accuracy_scale().steps} steps)",
            ["window steps", "window N", "disk accesses", "query s"],
            rows,
        )
    windows3 = [row[0] for row in out[3]]
    windows10 = [row[0] for row in out[10]]
    # kappa = 10 offers at least as many window choices as kappa = 3.
    assert len(windows10) >= len(windows3)
    # Full history is always available; sizes strictly increase.
    for windows in (windows3, windows10):
        assert windows[-1] == accuracy_scale().steps
        assert windows == sorted(windows)
    # Wider windows cover more data.
    for rows in out.values():
        sizes = [row[1] for row in rows]
        assert sizes == sorted(sizes)
