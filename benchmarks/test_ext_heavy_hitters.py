"""Extension E1: heavy hitters over the union (future-work aggregate).

The paper's introduction pairs heavy hitters with quantiles as the
primitives needing integrated historical+streaming processing; its
conclusion asks for "other classes of aggregates in this model".  This
bench runs the library's hybrid heavy-hitters engine (Misra-Gries on
the stream + exact block-counted counting on the leveled warehouse)
against a pure-streaming Misra-Gries over all of T, and reproduces the
quantile result's shape: count error bounded by the stream versus the
whole dataset, at the price of a bounded number of disk accesses.
"""

import numpy as np

from common import accuracy_scale, show
from conftest import run_once
from repro.frequent import HeavyHittersEngine, MisraGriesSketch
from repro.workloads import NetworkTraceWorkload

HEAVY_HOSTS = (0x11111, 0x22222, 0x33333)
HEAVY_SHARE = 0.05


def planted_batch(workload, rng, size):
    base = workload.generate(size)
    planted = np.concatenate(
        [
            np.full(int(HEAVY_SHARE * size), np.int64(host) << 20)
            for host in HEAVY_HOSTS
        ]
    )
    mixed = np.concatenate([base[: size - len(planted)], planted])
    rng.shuffle(mixed)
    return mixed


def sweep():
    scale = accuracy_scale()
    rng = np.random.default_rng(123)
    workload = NetworkTraceWorkload(seed=321)
    engine = HeavyHittersEngine(epsilon=0.01, kappa=10,
                                block_elems=scale.block_elems)
    pure = MisraGriesSketch.for_epsilon(0.01)
    chunks = []
    for _ in range(scale.steps):
        batch = planted_batch(workload, rng, scale.batch)
        chunks.append(batch)
        engine.stream_update_batch(batch)
        pure.update_batch(batch)
        engine.end_time_step()
    live = planted_batch(workload, rng, scale.batch)
    chunks.append(live)
    engine.stream_update_batch(live)
    pure.update_batch(live)
    data = np.concatenate(chunks)

    report = engine.heavy_hitters(phi=HEAVY_SHARE / 2)
    hybrid = {h.value: h for h in report.hitters}
    rows = []
    for host in HEAVY_HOSTS:
        key = int(np.int64(host) << 20)
        true = int(np.sum(data == key))
        hit = hybrid.get(key)
        hybrid_err = (
            max(hit.count_high - true, true - hit.count_low)
            if hit
            else float("nan")
        )
        pure_err = true - pure.estimate(key)
        rows.append([f"{host:#x}", true, hybrid_err, pure_err])
    return rows, report, engine, data


def test_ext_heavy_hitters(benchmark):
    rows, report, engine, data = run_once(benchmark, sweep)
    show(
        "Extension E1: heavy-hitter count error, hybrid vs pure streaming "
        f"({report.candidates_checked} candidates, "
        f"{report.disk_accesses} disk accesses)",
        ["host", "true count", "hybrid err", "pure MG err"],
        rows,
    )
    stream_bound = engine.config.epsilon2 * engine.m_stream + 1
    for _, true, hybrid_err, pure_err in rows:
        # every planted host found, with stream-bounded error
        assert hybrid_err == hybrid_err  # not NaN
        assert hybrid_err <= stream_bound
        # pure streaming undercounts with error that scales with N
        assert hybrid_err <= max(pure_err, stream_bound)
    assert 0 < report.disk_accesses < 50_000
