"""Figure 4: relative error vs main memory, four datasets.

Paper result: at equal memory, the accurate response beats the pure
streaming algorithms (GK, Q-Digest) by roughly two orders of magnitude,
and the quick response lands in the same regime as Q-Digest.  Error
falls as memory grows for every method.
"""

import numpy as np
import pytest

from common import (
    PAPER_MEMORY_MB,
    accuracy_scale,
    all_workloads,
    memory_words,
    run_contenders,
    show,
)
from conftest import run_once

CONTENDERS = ("ours", "gk", "qdigest", "quick")


def sweep(workload):
    scale = accuracy_scale()
    rows = []
    for paper_mb in PAPER_MEMORY_MB:
        words = memory_words(paper_mb, scale)
        result = run_contenders(workload, scale, words)
        rows.append(
            [paper_mb, words]
            + [result[name].median_relative_error for name in CONTENDERS]
        )
    return rows


@pytest.mark.parametrize(
    "panel", range(4), ids=["a_uniform", "b_normal", "c_wikipedia", "d_network"]
)
def test_fig4_accuracy_vs_memory(benchmark, panel):
    workload = all_workloads()[panel]
    rows = run_once(benchmark, lambda: sweep(workload))
    show(
        f"Figure 4{'abcd'[panel]}: relative error vs memory "
        f"({workload.name})",
        ["paper MB", "words"] + [f"err:{c}" for c in CONTENDERS],
        rows,
    )
    ratios_gk = []
    for row in rows:
        ours, gk, qdigest, quick = row[2:]
        # Headline claim: ours dominates pure streaming at every
        # memory point (paper reports ~100x; the paper's N/m ratio is
        # 101 versus our 31, and GK's empirical error is noisy at
        # simulation scale, so we assert dominance per point plus a
        # strong aggregate ratio).
        assert ours <= gk + 1e-12, row
        assert ours <= qdigest / 5 + 1e-12, row
        ratios_gk.append(gk / max(ours, 1e-12))
    geometric_mean = float(np.prod(ratios_gk)) ** (1 / len(ratios_gk))
    assert geometric_mean >= 3, ratios_gk
    # Error decreases as memory grows (compare the sweep's ends).
    assert rows[-1][2] <= rows[0][2] * 1.5
