"""Figure 13: scalability in the stream size.

Paper result (Normal, historical data fixed, memory fixed, kappa = 10):
as the live stream grows from 0.2x to 1x of a batch, (a) relative
error grows roughly linearly (absolute error is eps * m), while
(b) update and (c) query disk accesses are essentially flat — they are
driven by the historical structure, not the stream.
"""

from common import accuracy_scale, hybrid_engine, memory_words, show
from conftest import run_once
from repro.evaluation import ExperimentRunner
from repro.workloads import NormalWorkload

STREAM_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def sweep():
    scale = accuracy_scale()
    words = memory_words(250, scale)
    rows = []
    for fraction in STREAM_FRACTIONS:
        stream_elems = max(100, int(fraction * scale.batch))
        engine = hybrid_engine(words, scale)
        runner = ExperimentRunner(
            workload=NormalWorkload(seed=6),
            num_steps=scale.steps,
            batch_elems=scale.batch,
            stream_elems=stream_elems,
            keep_oracle=False,
        )
        result = runner.run({"ours": engine}, phis=(0.25, 0.5, 0.75))
        run = result["ours"]
        rows.append(
            [
                stream_elems,
                run.median_relative_error,
                run.mean_update_io,
                run.mean_query_disk_accesses,
            ]
        )
    return rows


def test_fig13_scale_stream(benchmark):
    rows = run_once(benchmark, sweep)
    show(
        "Figure 13: accuracy and cost vs stream size "
        "(Normal, historical data fixed)",
        ["stream m", "rel error", "update io", "query disk"],
        rows,
    )
    # (a) error grows with the stream (allow noise; compare ends).
    assert rows[-1][1] >= rows[0][1]
    # (b) update I/O identical across stream sizes (historical cost).
    assert len({row[2] for row in rows}) == 1
    # (c) query disk accesses stay within a small band.
    accesses = [row[3] for row in rows]
    assert max(accesses) <= max(4 * min(accesses), min(accesses) + 40)
