"""Shared infrastructure for the figure-reproduction benchmarks.

Scale mapping (see DESIGN.md section 3).  The paper loads 1 GB batches
for ~100 time steps with 100 KB disk blocks and sweeps 100-500 MB of
main memory.  We keep every *ratio* and shrink the absolute volume:

* accuracy/query figures: 30 steps x 40 000 elements, and a "paper MB"
  memory label maps to the same memory-to-batch fraction (100 MB / 1 GB
  = 0.1, so "100 MB" means a word budget of 0.1 x batch elements);
* update-I/O figures: 100 steps x 10 000 blocks per batch — the exact
  blocks-per-batch ratio of the paper, so the Figure 7/8 disk-access
  counts reproduce at the paper's absolute magnitudes.

Set ``REPRO_BENCH_SCALE`` (a float, default 1.0) to grow or shrink
every batch size.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import (
    EngineConfig,
    HybridQuantileEngine,
    PureStreamingEngine,
)
from repro.core.memory import (
    MemoryBudget,
    epsilon_for_pure_gk_words,
    epsilon_for_qdigest_words,
)
from repro.evaluation import ExperimentResult, ExperimentRunner, print_table
from repro.workloads import (
    NetworkTraceWorkload,
    NormalWorkload,
    UniformWorkload,
    WikipediaWorkload,
    Workload,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: every ablation writes its artifact here: benchmarks/BENCH_<name>.json
BENCH_DIR = Path(__file__).resolve().parent

#: keys every BENCH artifact must carry so the JSON files line up —
#: ``meta.shards``/``meta.sketch_backend`` identify the topology even
#: for single-engine ablations (shards=1, backend "gk").
_BENCH_REQUIRED_TOP = ("benchmark", "meta", "rows")
_BENCH_REQUIRED_META = (
    "shards", "sketch_backend", "storage_backend", "object_tier",
)
_BENCH_BACKENDS = ("gk", "kll")
_BENCH_STORAGE_BACKENDS = ("simulated", "mmap", "object")


def bench_path(name: str) -> Path:
    """Canonical artifact path for ablation ``name``."""
    return BENCH_DIR / f"BENCH_{name}.json"


def validate_bench_doc(doc: dict) -> None:
    """Enforce the shared BENCH schema; raises ``ValueError`` on drift."""
    for key in _BENCH_REQUIRED_TOP:
        if key not in doc:
            raise ValueError(f"BENCH doc missing required key {key!r}")
    if not isinstance(doc["benchmark"], str) or not doc["benchmark"]:
        raise ValueError("BENCH doc 'benchmark' must be a non-empty string")
    meta = doc["meta"]
    if not isinstance(meta, dict):
        raise ValueError("BENCH doc 'meta' must be an object")
    for key in _BENCH_REQUIRED_META:
        if key not in meta:
            raise ValueError(f"BENCH meta missing required key {key!r}")
    if not isinstance(meta["shards"], int) or meta["shards"] < 1:
        raise ValueError("BENCH meta 'shards' must be an int >= 1")
    if meta["sketch_backend"] not in _BENCH_BACKENDS:
        raise ValueError(
            f"BENCH meta 'sketch_backend' must be one of {_BENCH_BACKENDS}"
        )
    if meta["storage_backend"] not in _BENCH_STORAGE_BACKENDS:
        raise ValueError(
            "BENCH meta 'storage_backend' must be one of "
            f"{_BENCH_STORAGE_BACKENDS}"
        )
    if not isinstance(meta["object_tier"], bool):
        raise ValueError("BENCH meta 'object_tier' must be a bool")
    rows = doc["rows"]
    if not isinstance(rows, list) or not rows:
        raise ValueError("BENCH doc 'rows' must be a non-empty list")
    if not all(isinstance(row, dict) for row in rows):
        raise ValueError("BENCH doc 'rows' entries must be objects")


def write_bench(name: str, doc: dict) -> Path:
    """Validate ``doc`` against the shared schema and write the artifact."""
    validate_bench_doc(doc)
    path = bench_path(name)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path

#: paper memory label (MB) -> fraction of the batch held in memory
PAPER_MEMORY_MB = (100, 200, 300, 400, 500)
_BATCH_BYTES_PAPER = 1000.0  # 1 GB batch, in MB

#: kappa sweep of Figures 5, 7 and 10
PAPER_KAPPAS = (3, 5, 7, 9, 10, 15, 20, 30)

QUERY_PHIS = (0.05, 0.25, 0.5, 0.75, 0.95, 0.99)


@dataclass(frozen=True)
class Scale:
    """One benchmark scale: steps, batch size, block size."""

    steps: int
    batch: int
    block_elems: int

    @property
    def blocks_per_batch(self) -> int:
        return -(-self.batch // self.block_elems)


def accuracy_scale() -> Scale:
    """Scale used by the accuracy / query-cost figures."""
    return Scale(steps=30, batch=int(40_000 * SCALE), block_elems=100)


def io_scale() -> Scale:
    """Scale used by the update-I/O figures (paper blocks-per-batch)."""
    return Scale(steps=100, batch=int(10_000 * SCALE), block_elems=1)


def memory_words(paper_mb: int, scale: Scale) -> int:
    """Word budget matching the paper's memory-to-batch proportion."""
    return max(64, int(paper_mb / _BATCH_BYTES_PAPER * scale.batch))


def all_workloads() -> List[Workload]:
    """The paper's four datasets, fixed seeds, Figure panel order."""
    return [
        UniformWorkload(seed=101),
        NormalWorkload(seed=202),
        WikipediaWorkload(seed=303),
        NetworkTraceWorkload(seed=404),
    ]


def hybrid_engine(
    words: int,
    scale: Scale,
    kappa: int = 10,
    stream_fraction: float = 0.5,
    block_cache: bool = True,
    probe_budget: Optional[int] = None,
    ingest_mode: str = "sync",
) -> HybridQuantileEngine:
    """Hybrid engine whose epsilons are derived from a word budget."""
    budget = MemoryBudget(total_words=words, stream_fraction=stream_fraction)
    eps1, eps2 = budget.epsilons(scale.batch, kappa, scale.steps)
    config = EngineConfig(
        epsilon=min(0.5, 4 * eps2),
        eps1=eps1,
        eps2=eps2,
        kappa=kappa,
        block_elems=scale.block_elems,
        block_cache=block_cache,
        probe_budget=probe_budget,
        ingest_mode=ingest_mode,
    )
    return HybridQuantileEngine(config=config)


def gk_engine(words: int, scale: Scale, kappa: int = 10) -> PureStreamingEngine:
    """Pure-streaming GK baseline sized for the same word budget."""
    total = scale.batch * (scale.steps + 1)
    epsilon = epsilon_for_pure_gk_words(words, total)
    return PureStreamingEngine(
        kind="gk", epsilon=epsilon, kappa=kappa,
        block_elems=scale.block_elems,
    )


def qdigest_engine(
    words: int, scale: Scale, universe_log2: int, kappa: int = 10
) -> PureStreamingEngine:
    """Pure-streaming Q-Digest baseline for the same word budget."""
    epsilon = epsilon_for_qdigest_words(words, universe_log2)
    return PureStreamingEngine(
        kind="qdigest", epsilon=epsilon, kappa=kappa,
        block_elems=scale.block_elems, universe_log2=universe_log2,
    )


def run_contenders(
    workload: Workload,
    scale: Scale,
    words: int,
    kappa: int = 10,
    include_quick: bool = True,
    phis: Sequence[float] = QUERY_PHIS,
) -> ExperimentResult:
    """The paper's standard four-way comparison on one configuration.

    Contenders: our accurate response, our quick response (same engine
    family, memory-only answers), pure-streaming GK, and pure-streaming
    Q-Digest — all given the same word budget.
    """
    engines: Dict[str, object] = {
        "ours": hybrid_engine(words, scale, kappa=kappa),
        "gk": gk_engine(words, scale, kappa=kappa),
        "qdigest": qdigest_engine(
            words, scale, workload.universe_log2, kappa=kappa
        ),
    }
    modes = {}
    if include_quick:
        engines["quick"] = hybrid_engine(words, scale, kappa=kappa)
        modes["quick"] = "quick"
    runner = ExperimentRunner(
        workload=workload,
        num_steps=scale.steps,
        batch_elems=scale.batch,
        keep_oracle=False,
    )
    return runner.run(engines, phis=phis, query_modes=modes)


def show(title: str, headers: Sequence[str], rows) -> None:
    """Print one figure's table (appears with pytest -s or on failure)."""
    print_table(title, headers, rows)
