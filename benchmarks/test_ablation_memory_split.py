"""Ablation A1: the stream/historical memory split (paper Section 4).

The paper fixes a 50/50 split and leaves the optimal split as future
work, noting the 50/50 choice is at most 2x worse than optimal.  This
ablation sweeps the split at a fixed total budget: more stream memory
lowers the final error (the accurate answer's error is stream-side),
while more historical memory narrows the on-disk searches, trading
disk accesses for accuracy.
"""

from common import accuracy_scale, hybrid_engine, memory_words, show
from conftest import run_once
from repro.evaluation import ExperimentRunner
from repro.workloads import UniformWorkload

SPLITS = (0.1, 0.3, 0.5, 0.7, 0.9)


def sweep():
    scale = accuracy_scale()
    words = memory_words(250, scale)
    rows = []
    for split in SPLITS:
        engine = hybrid_engine(words, scale, stream_fraction=split)
        runner = ExperimentRunner(
            workload=UniformWorkload(seed=77),
            num_steps=scale.steps,
            batch_elems=scale.batch,
            keep_oracle=False,
        )
        result = runner.run({"ours": engine}, phis=(0.25, 0.5, 0.75))
        run = result["ours"]
        rows.append(
            [
                split,
                engine.config.epsilon1,
                engine.config.epsilon2,
                run.median_relative_error,
                run.mean_query_disk_accesses,
            ]
        )
    return rows


def test_ablation_memory_split(benchmark):
    rows = run_once(benchmark, sweep)
    show(
        "Ablation A1: stream/historical memory split "
        "(Uniform, 250 paper-MB total)",
        ["stream frac", "eps1", "eps2", "rel error", "query disk"],
        rows,
    )
    by_split = {row[0]: row for row in rows}
    # Starving the stream side is the worst configuration for error.
    assert by_split[0.9][3] <= by_split[0.1][3]
    # Starving the historical side costs the most disk accesses.
    assert by_split[0.9][4] >= by_split[0.1][4]
    # The paper's 2x claim: 50/50 is within a small factor of the best.
    best = min(row[3] for row in rows)
    assert by_split[0.5][3] <= max(4 * best, best + 1e-6)
