"""Ablation A6: bisect-to-crossing vs Lemma 5's residual fetch.

Two faithful readings of the paper's accurate response: our default
refines the value bisection to the rank-crossing point (free once the
block cache confines each partition's search), while the literal
Lemma 5 procedure stops early and *reads the residual element range*
between the filters.  Both meet the O(eps*m) guarantee; this ablation
measures which spends fewer random block reads at equal accuracy.
"""

from common import accuracy_scale, memory_words, show
from conftest import run_once
from repro import EngineConfig, HybridQuantileEngine
from repro.core.memory import MemoryBudget
from repro.evaluation import ExperimentRunner
from repro.workloads import UniformWorkload


def engine_for(strategy: str, scale, words: int) -> HybridQuantileEngine:
    budget = MemoryBudget(total_words=words)
    eps1, eps2 = budget.epsilons(scale.batch, 10, scale.steps)
    config = EngineConfig(
        epsilon=min(0.5, 4 * eps2),
        eps1=eps1,
        eps2=eps2,
        kappa=10,
        block_elems=scale.block_elems,
        query_strategy=strategy,
    )
    return HybridQuantileEngine(config=config)


def sweep():
    scale = accuracy_scale()
    words = memory_words(250, scale)
    rows = []
    for strategy in ("bisect", "fetch"):
        engine = engine_for(strategy, scale, words)
        runner = ExperimentRunner(
            workload=UniformWorkload(seed=33),
            num_steps=scale.steps,
            batch_elems=scale.batch,
            keep_oracle=False,
        )
        result = runner.run(
            {"ours": engine}, phis=(0.1, 0.25, 0.5, 0.75, 0.9)
        )
        run = result["ours"]
        rows.append(
            [
                strategy,
                run.mean_query_disk_accesses,
                run.median_relative_error,
                run.max_relative_error,
            ]
        )
    return rows


def test_ablation_query_strategy(benchmark):
    rows = run_once(benchmark, sweep)
    show(
        "Ablation A6: query strategy — bisect vs residual fetch "
        "(Uniform, 250 paper-MB)",
        ["strategy", "query disk", "median rel err", "max rel err"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    # Both strategies stay within the same error regime.
    for row in rows:
        assert row[2] < 1e-3, row
    # Neither pathologically out-spends the other on disk.
    bisect_io = by_name["bisect"][1]
    fetch_io = by_name["fetch"][1]
    assert max(bisect_io, fetch_io) <= 10 * max(1.0, min(bisect_io, fetch_io))
