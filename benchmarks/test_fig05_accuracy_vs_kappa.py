"""Figure 5: relative error vs merge threshold kappa, memory fixed.

Paper result: accuracy does not depend on kappa (Theorem 2 — the error
depends only on eps and the stream size), and the measured error sits
well below the theoretical bound.
"""

import pytest

from repro.evaluation import accurate_relative_error_bound

from common import (
    PAPER_KAPPAS,
    accuracy_scale,
    all_workloads,
    hybrid_engine,
    memory_words,
    show,
)
from conftest import run_once
from repro.evaluation import ExperimentRunner

FIXED_PAPER_MB = 250


def sweep(workload):
    scale = accuracy_scale()
    words = memory_words(FIXED_PAPER_MB, scale)
    rows = []
    for kappa in PAPER_KAPPAS:
        engine = hybrid_engine(words, scale, kappa=kappa)
        runner = ExperimentRunner(
            workload=workload,
            num_steps=scale.steps,
            batch_elems=scale.batch,
            keep_oracle=False,
        )
        result = runner.run({"ours": engine}, phis=(0.25, 0.5, 0.75))
        measured = result["ours"].median_relative_error
        total = scale.batch * (scale.steps + 1)
        theory = accurate_relative_error_bound(
            engine.config.query_epsilon, scale.batch, 0.5, total
        )
        rows.append([kappa, measured, theory])
    return rows


@pytest.mark.parametrize(
    "panel", range(4), ids=["a_uniform", "b_normal", "c_wikipedia", "d_network"]
)
def test_fig5_accuracy_vs_kappa(benchmark, panel):
    workload = all_workloads()[panel]
    rows = run_once(benchmark, lambda: sweep(workload))
    show(
        f"Figure 5{'abcd'[panel]}: relative error vs kappa "
        f"({workload.name}, memory fixed at {FIXED_PAPER_MB} paper-MB)",
        ["kappa", "error in practice", "error in theory"],
        rows,
    )
    errors = [row[1] for row in rows]
    # Practice stays below the theory bound at every kappa.
    for kappa, measured, theory in rows:
        assert measured <= theory + 1e-12, (kappa, measured, theory)
    # Accuracy is flat in kappa: no point is wildly off the best point
    # (paper shows a flat line; allow an order of magnitude of noise on
    # errors that are already ~1e-4).
    floor = max(min(errors), 1e-7)
    assert max(errors) <= floor * 30
