"""Figure 10: query runtime and disk accesses vs kappa, memory fixed.

Paper result: query-time disk accesses (and hence runtime) increase
with kappa — more partitions per level share a fixed memory budget, so
each per-partition summary is sparser and the on-disk binary searches
span more blocks.
"""

import pytest

from common import (
    accuracy_scale,
    all_workloads,
    hybrid_engine,
    memory_words,
    show,
)
from conftest import run_once
from repro.evaluation import ExperimentRunner

KAPPAS = (3, 5, 10, 20, 30)
FIXED_PAPER_MB = 250


def sweep(workload):
    scale = accuracy_scale()
    words = memory_words(FIXED_PAPER_MB, scale)
    rows = []
    for kappa in KAPPAS:
        engine = hybrid_engine(words, scale, kappa=kappa)
        runner = ExperimentRunner(
            workload=workload,
            num_steps=scale.steps,
            batch_elems=scale.batch,
            keep_oracle=False,
        )
        result = runner.run({"ours": engine}, phis=(0.25, 0.5, 0.75, 0.95))
        run = result["ours"]
        partitions = engine.store.partition_count()
        rows.append(
            [
                kappa,
                partitions,
                run.mean_query_disk_accesses,
                run.mean_query_seconds,
            ]
        )
    return rows


@pytest.mark.parametrize(
    "panel", range(4), ids=["a_uniform", "b_normal", "c_wikipedia", "d_network"]
)
def test_fig10_query_vs_kappa(benchmark, panel):
    workload = all_workloads()[panel]
    rows = run_once(benchmark, lambda: sweep(workload))
    show(
        f"Figure 10{'abcd'[panel]}: query cost vs kappa ({workload.name}, "
        f"memory fixed at {FIXED_PAPER_MB} paper-MB)",
        ["kappa", "partitions", "disk accesses", "query s"],
        rows,
    )
    accesses = {row[0]: row[2] for row in rows}
    # Larger kappa keeps more partitions around: queries pay more I/O.
    assert accesses[30] >= accesses[3]
    assert all(row[2] > 0 for row in rows)
