"""Figure 8: CDF of per-step update disk accesses for kappa = 7, 9, 10.

Paper numbers (Normal dataset, 100 steps, 10 000 blocks per batch):

* kappa = 9: 89% of steps cost 10K accesses (plain add), 10% cost 190K
  (level-0 merge), 1% cost 1810K (double merge);
* kappa = 7: the double-merge step costs 1130K;
* kappa = 10: 91% plain steps, 9% level-0 merges, no double merge.

Our simulation reproduces these counts exactly (the merge-before-add
semantics were derived from them; see DESIGN.md).
"""

from collections import Counter

from common import io_scale, show
from conftest import run_once
from repro.evaluation import ExperimentRunner
from repro.workloads import NormalWorkload

from common import hybrid_engine


def sweep():
    scale = io_scale()
    distributions = {}
    for kappa in (7, 9, 10):
        engine = hybrid_engine(4000, scale, kappa=kappa)
        runner = ExperimentRunner(
            workload=NormalWorkload(seed=8),
            num_steps=scale.steps,
            batch_elems=scale.batch,
            stream_elems=1,
            keep_oracle=False,
        )
        result = runner.run({"ours": engine}, phis=(0.5,))
        distributions[kappa] = Counter(result["ours"].update_io_per_step())
    return distributions


def test_fig8_update_cdf(benchmark):
    distributions = run_once(benchmark, sweep)
    rows = []
    for kappa, counter in sorted(distributions.items()):
        cumulative = 0
        for accesses in sorted(counter):
            cumulative += counter[accesses]
            rows.append([kappa, accesses, counter[accesses], cumulative])
    show(
        "Figure 8: per-step disk-access distribution (Normal, 100 steps)",
        ["kappa", "accesses/step", "steps", "cum. steps"],
        rows,
    )
    scale = io_scale()
    unit = scale.blocks_per_batch  # 10K at paper ratio
    # Exact paper counts, in units of the per-batch block count.
    assert distributions[9] == {
        unit: 89, 19 * unit: 10, 181 * unit: 1
    }
    # kappa = 10: 91 plain steps; each merge folds 10 partitions
    # (read 10 + write 10 + add 1 = 21 units); no double merge.
    assert distributions[10] == {unit: 91, 21 * unit: 9}
    assert max(distributions[7]) == 113 * unit
