"""Ablation A8: concurrent serving — coalescing and admission control.

The quick response costs one TS merge; the serving layer's coalescer
shares that merge across every request pinned at the same epoch.  This
ablation sweeps closed-loop client counts with coalescing on and off
and reports throughput, tail latency, and TS merges per served request
(the coalescing ratio), then runs an open-loop overload to show the
bounded queue shedding load with typed ``Overloaded`` rejections (and,
with degradation enabled, accurate→quick downgrades).  Results land in
``BENCH_serving.json`` next to this file.

Acceptance checks asserted here:

* with coalescing on, the 32-client run performs strictly fewer TS
  merges than it serves requests (ratio < 1.0);
* every coalesced answer is bit-identical to a serial replay of the
  same phi against the same engine state;
* the overload run rejects (or degrades) rather than growing the
  queue past its bound, and metrics report queue depth and p99.
"""


from conftest import run_once
from common import bench_path, show, write_bench
from repro.serving import run_serving_bench

CLIENTS = (1, 8, 32)
REQUESTS_PER_CLIENT = 25
RESULT_FILE = bench_path("serving")


def sweep():
    return run_serving_bench(
        steps=6,
        batch=20_000,
        clients=CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT,
        seed=7,
    )


def test_ablation_serving(benchmark):
    doc = run_once(benchmark, sweep)
    rows = doc["closed_loop"]
    show(
        "Ablation A8: concurrent serving (closed loop, quick path)",
        [
            "clients", "coalesce", "served", "TS merges", "ratio",
            "qps", "p50 ms", "p99 ms", "identical",
        ],
        [
            [
                r["clients"],
                r["coalesce"],
                r["served"],
                r["ts_merges"],
                r["coalescing_ratio"],
                r["throughput_qps"],
                r["p50_ms"],
                r["p99_ms"],
                r["bit_identical"],
            ]
            for r in rows
        ],
    )
    show(
        "Ablation A8: open-loop overload (accurate path, queue bound 4)",
        [
            "mode", "requests", "served", "rejected", "degraded",
            "peak depth", "p99 ms",
        ],
        [
            [
                r["mode"],
                r["requests"],
                r["served"],
                r["rejected"],
                r["degraded"],
                r["peak_queue_depth"],
                r["p99_ms"],
            ]
            for r in doc["overload"]
        ],
    )
    doc.setdefault("meta", {}).update({
        "shards": 1,
        "sketch_backend": "gk",
        "storage_backend": "simulated",
        "object_tier": False,
    })
    # The schema's common table: closed-loop rows plus overload rows.
    doc["rows"] = doc["closed_loop"] + doc["overload"]
    write_bench("serving", doc)

    # Every request of every run must be answered or typed-rejected,
    # and every answer must match the serial replay bit for bit.
    for row in rows:
        assert row["served"] + row["rejected"] == row["requests"]
        assert row["bit_identical"], row

    # The tentpole claim: with coalescing on, concurrent clients share
    # TS merges — strictly fewer merges than requests served.
    coalesced_32 = next(
        r for r in rows if r["clients"] == 32 and r["coalesce"]
    )
    assert coalesced_32["served"] == 32 * REQUESTS_PER_CLIENT
    assert coalesced_32["ts_merges"] < coalesced_32["served"]
    assert coalesced_32["coalescing_ratio"] < 1.0

    # Without coalescing every request pays its own merge.
    solo_32 = next(
        r for r in rows if r["clients"] == 32 and not r["coalesce"]
    )
    assert solo_32["ts_merges"] >= solo_32["served"]
    # ...so coalescing must be doing real sharing, not bookkeeping.
    assert coalesced_32["ts_merges"] < solo_32["ts_merges"]

    # Admission control: the overload run sheds load with typed
    # rejections, never growing the queue past its bound...
    reject = next(r for r in doc["overload"] if r["mode"] == "reject")
    assert reject["rejected"] > 0
    assert reject["served"] + reject["rejected"] == reject["requests"]
    assert reject["peak_queue_depth"] <= reject["queue_bound"]
    assert reject["p99_ms"] > 0.0
    # ...and with degradation enabled, some accurate requests are
    # served as quick answers instead of being rejected outright.
    degrade = next(r for r in doc["overload"] if r["mode"] == "degrade")
    assert degrade["degraded"] > 0
    assert degrade["served"] >= reject["served"]
