"""Ablation A11: sharded cluster — shard count x merged-KLL accuracy.

A ``ClusterEngine`` fans the stream over N independent engines, each
with its own simulated disk, so the modeled cost of ingest is the
*critical path* — the max per-shard simulated seconds — not the sum.
This ablation drives the same seeded Normal stream through

    shards in {1, 4, 16}        (sketch_backend = "kll")

with batched ingest, and asserts the three claims the cluster layer
makes:

* *throughput* — 4 shards clear >= 3x the single-shard ingest
  throughput on the simulated-I/O critical path (elements per max
  per-shard simulated second);
* *quick accuracy* — the 16-shard fused quick path (per-shard KLL
  summaries merged with ``KLLSketch.merge_many``) answers within its
  reported merged bound against exact ground truth, and a direct
  merge of per-shard KLL sketches holds the ``eps * n`` union bound;
* *accurate exactness* — scatter/gather answers stay within the
  single-engine accurate bound at every shard count.

The table is written to ``BENCH_cluster.json`` next to this file; the
CI cluster job regenerates and uploads it.
"""

import math
import time

import numpy as np

from common import SCALE, bench_path, show, write_bench
from conftest import run_once
from repro.cluster import ClusterEngine, ShardRouter
from repro.core.config import EngineConfig
from repro.sketches.base import rank_for_phi
from repro.sketches.kll import KLLSketch
from repro.workloads import NormalWorkload

PHIS = (0.05, 0.25, 0.5, 0.75, 0.95)
SHARDS = (1, 4, 16)
STEPS = 5
STEP_ELEMS = int(20_000 * SCALE)
EPSILON = 0.02
BACKEND = "kll"
#: simulated-I/O critical-path floor for 4 shards over 1.
SPEEDUP_FLOOR = 3.0
RESULT_FILE = bench_path("cluster")


def rank_error(full, result):
    """Distance from the answer's true rank bracket to its target."""
    lo = int(np.searchsorted(full, result.value, side="left")) + 1
    hi = int(np.searchsorted(full, result.value, side="right"))
    rank = result.target_rank
    if lo <= rank <= hi:
        return 0
    return min(abs(rank - lo), abs(rank - hi))


def drive(shards):
    """One seeded cluster run; returns timings plus worst-case errors."""
    config = EngineConfig(
        epsilon=EPSILON, block_elems=100, sketch_backend=BACKEND
    )
    cluster = ClusterEngine(shards=shards, config=config)
    workload = NormalWorkload(seed=808)
    chunks = []
    started = time.perf_counter()
    for _ in range(STEPS):
        batch = workload.generate(STEP_ELEMS)
        chunks.append(batch)
        cluster.stream_update_many(batch)
        cluster.end_time_step()
    cluster.flush()
    ingest_wall = time.perf_counter() - started
    sims = cluster.per_shard_sim_seconds()
    critical = max(sims)
    elements = STEPS * STEP_ELEMS

    tick = time.perf_counter()
    quick = [cluster.quantile(phi, mode="quick") for phi in PHIS]
    quick_seconds = time.perf_counter() - tick
    accurate = [cluster.quantile(phi, mode="accurate") for phi in PHIS]

    full = np.sort(np.concatenate(chunks))
    quick_errors = [rank_error(full, r) for r in quick]
    accurate_errors = [rank_error(full, r) for r in accurate]
    cluster.check_invariants()
    cluster.close()
    return {
        "shards": shards,
        "elements": int(elements),
        "sim_critical_seconds": critical,
        "sim_total_seconds": sum(sims),
        "sim_throughput": elements / critical,
        "ingest_wall_seconds": ingest_wall,
        "quick_qps": len(PHIS) / quick_seconds,
        "worst_quick_error": max(quick_errors),
        "quick_bound": max(r.rank_error_bound for r in quick),
        "worst_accurate_error": max(accurate_errors),
        "accurate_bound": max(r.rank_error_bound for r in accurate),
    }


def merged_kll_check(shards):
    """Direct merge of per-shard KLL sketches holds the union bound."""
    data = NormalWorkload(seed=808).generate(STEPS * STEP_ELEMS)
    parts = ShardRouter(shards).route_many(data)
    sketches = []
    for index, part in enumerate(parts):
        sketch = KLLSketch(EPSILON, seed=1 + index)
        if part.size:
            sketch.update_many(part)
        sketches.append(sketch)
    merged = KLLSketch.merge_many(sketches, seed=99)
    full = np.sort(data)
    n = int(data.size)
    assert merged.n == n
    worst = 0
    for phi in PHIS:
        rank = rank_for_phi(phi, n)
        value = merged.query_rank(rank)
        lo = int(np.searchsorted(full, value, side="left")) + 1
        hi = int(np.searchsorted(full, value, side="right"))
        if not lo <= rank <= hi:
            worst = max(worst, min(abs(rank - lo), abs(rank - hi)))
    return worst, math.ceil(EPSILON * n)


def sweep():
    return [drive(shards) for shards in SHARDS]


def test_ablation_cluster(benchmark):
    rows = run_once(benchmark, sweep)
    show(
        "Ablation A11: shard count (Normal, "
        f"{STEPS} steps x {STEP_ELEMS:,} elements, kll backend)",
        [
            "shards",
            "sim crit s",
            "elems/sim s",
            "quick qps",
            "quick err<=",
            "acc err<=",
        ],
        [
            [
                r["shards"],
                r["sim_critical_seconds"],
                r["sim_throughput"],
                r["quick_qps"],
                f"{r['worst_quick_error']}/{r['quick_bound']}",
                f"{r['worst_accurate_error']}/{r['accurate_bound']}",
            ]
            for r in rows
        ],
    )
    by_shards = {r["shards"]: r for r in rows}
    speedup = (
        by_shards[4]["sim_throughput"] / by_shards[1]["sim_throughput"]
    )
    merged_error, merged_bound = merged_kll_check(16)
    write_bench(
        "cluster",
        {
            "benchmark": "cluster_ablation",
            "meta": {
                "steps": STEPS,
                "step_elems": STEP_ELEMS,
                "epsilon": EPSILON,
                "phis": list(PHIS),
                "shards": max(SHARDS),
                "shards_swept": list(SHARDS),
                "sketch_backend": BACKEND,
                "storage_backend": "simulated",
                "object_tier": False,
            },
            "rows": rows,
            "sim_speedup_4_over_1": speedup,
            "merged_kll_16": {
                "worst_error": merged_error,
                "bound": merged_bound,
            },
        },
    )

    # Throughput: per-shard disks run concurrently, so 4 shards must
    # clear the floor on the simulated-I/O critical path.
    assert speedup >= SPEEDUP_FLOOR, speedup
    # Quick accuracy: fused merged-KLL answers stay inside their own
    # reported bound at every shard count, including 16.
    for row in rows:
        assert row["worst_quick_error"] <= row["quick_bound"] + 1, row
        assert (
            row["worst_accurate_error"] <= row["accurate_bound"] + 1
        ), row
    # Direct merge of the 16 per-shard sketches holds eps * n.
    assert merged_error <= merged_bound, (merged_error, merged_bound)
