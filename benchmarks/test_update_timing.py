"""Update-cost timing guards (no pytest-benchmark).

The shared-cache PR micro-optimized ``GKSketch.update``/``_compress``
(scratch-list reuse instead of rebuilding the tuple lists every
compression).  This guard keeps that win from silently regressing: it
times a fixed seeded update workload with plain ``time.perf_counter``
— deliberately not the ``benchmark`` fixture, so it runs even where
pytest-benchmark is unavailable — and asserts a throughput floor set
roughly an order of magnitude below what the current implementation
measures (~680k updates/s on the reference container), so only a
genuine algorithmic regression trips it, never scheduler noise.

The batched-ingest PR added the vectorized write path on top:
``engine.stream_update_many`` (one buffer extend + one vectorized
aggregate merge per array, lazy GK absorption) and
``GKSketch.update_many`` (sort the batch once, merge it into the
summary in one exact-rank pass).  The speedup guards below hold the
headline contract — batched ingest at least 10x the element-at-a-time
rate — far enough below the measured ratios (hundreds) that only a
real regression trips them.
"""

import time

import numpy as np

from repro.core.engine import HybridQuantileEngine
from repro.sketches.gk import GKSketch

UPDATES = 200_000
EPSILON = 0.01
#: updates/second floor — ~11x below the measured implementation.
FLOOR = 60_000.0
ROUNDS = 3
BATCH = 4096
#: minimum batched-over-scalar throughput ratio (the ISSUE contract).
ENGINE_SPEEDUP_FLOOR = 10.0
#: GK-only floor: the bulk merge measures ~6x scalar inserts; half
#: that margin guards the algorithm without tripping on slow runners.
GK_SPEEDUP_FLOOR = 3.0


def measure_update_seconds() -> float:
    """Best-of-N wall time for the seeded update workload."""
    values = (
        np.random.default_rng(5)
        .integers(0, 1_000_000, UPDATES, dtype=np.int64)
        .tolist()
    )
    best = float("inf")
    for _ in range(ROUNDS):
        sketch = GKSketch(EPSILON)
        start = time.perf_counter()
        for value in values:
            sketch.update(value)
        best = min(best, time.perf_counter() - start)
        assert sketch.n == UPDATES
    return best


def test_update_throughput_floor():
    seconds = measure_update_seconds()
    throughput = UPDATES / seconds
    print(
        f"\nGK update: {UPDATES:,} updates in {seconds:.3f}s "
        f"({throughput:,.0f} updates/s; floor {FLOOR:,.0f})"
    )
    assert throughput >= FLOOR, (
        f"GK update throughput regressed: {throughput:,.0f} updates/s "
        f"is below the {FLOOR:,.0f} floor"
    )


def _seeded_values() -> np.ndarray:
    return np.random.default_rng(5).integers(
        0, 1_000_000, UPDATES, dtype=np.int64
    )


def _best_of(rounds, fn) -> float:
    best = float("inf")
    for _ in range(rounds):
        best = min(best, fn())
    return best


def test_engine_batch_update_speedup():
    """stream_update_many must beat element-at-a-time by >= 10x."""
    values = _seeded_values()
    scalar_list = values.tolist()

    def scalar_round() -> float:
        engine = HybridQuantileEngine(epsilon=EPSILON)
        start = time.perf_counter()
        for value in scalar_list:
            engine.stream_update(value)
        elapsed = time.perf_counter() - start
        assert engine.m_stream == UPDATES
        return elapsed

    def batched_round() -> float:
        engine = HybridQuantileEngine(epsilon=EPSILON)
        start = time.perf_counter()
        for lo in range(0, UPDATES, BATCH):
            engine.stream_update_many(values[lo : lo + BATCH])
        elapsed = time.perf_counter() - start
        assert engine.m_stream == UPDATES
        return elapsed

    scalar = _best_of(ROUNDS, scalar_round)
    batched = _best_of(ROUNDS, batched_round)
    speedup = scalar / batched
    print(
        f"\nengine ingest: scalar {UPDATES / scalar:,.0f} vs batched "
        f"{UPDATES / batched:,.0f} updates/s ({speedup:,.1f}x, floor "
        f"{ENGINE_SPEEDUP_FLOOR}x)"
    )
    assert speedup >= ENGINE_SPEEDUP_FLOOR, (
        f"batched ingest speedup regressed: {speedup:.1f}x is below "
        f"{ENGINE_SPEEDUP_FLOOR}x"
    )


def test_batched_engine_answers_match_scalar():
    """The speedup is free: both feeds answer queries identically."""
    values = _seeded_values()[:50_000]
    scalar_engine = HybridQuantileEngine(epsilon=EPSILON)
    for value in values.tolist():
        scalar_engine.stream_update(value)
    batched_engine = HybridQuantileEngine(epsilon=EPSILON)
    for lo in range(0, values.size, BATCH):
        batched_engine.stream_update_many(values[lo : lo + BATCH])
    for phi in (0.05, 0.25, 0.5, 0.75, 0.95, 0.99):
        assert (
            scalar_engine.quantile(phi).value
            == batched_engine.quantile(phi).value
        ), phi


def test_gk_update_many_speedup():
    """The sketch's sort-once/merge-once path must beat scalar inserts."""
    values = _seeded_values()
    scalar_list = values.tolist()

    def scalar_round() -> float:
        sketch = GKSketch(EPSILON)
        start = time.perf_counter()
        for value in scalar_list:
            sketch.update(value)
        elapsed = time.perf_counter() - start
        assert sketch.n == UPDATES
        return elapsed

    def batched_round() -> float:
        sketch = GKSketch(EPSILON)
        start = time.perf_counter()
        for lo in range(0, UPDATES, BATCH):
            sketch.update_many(values[lo : lo + BATCH])
        elapsed = time.perf_counter() - start
        assert sketch.n == UPDATES
        return elapsed

    scalar = _best_of(ROUNDS, scalar_round)
    batched = _best_of(ROUNDS, batched_round)
    speedup = scalar / batched
    print(
        f"\nGK ingest: scalar {UPDATES / scalar:,.0f} vs update_many "
        f"{UPDATES / batched:,.0f} updates/s ({speedup:,.1f}x, floor "
        f"{GK_SPEEDUP_FLOOR}x)"
    )
    assert speedup >= GK_SPEEDUP_FLOOR, (
        f"GK update_many speedup regressed: {speedup:.1f}x is below "
        f"{GK_SPEEDUP_FLOOR}x"
    )


def test_compress_reuses_scratch_lists():
    """The compression scratch swap keeps steady-state allocation flat."""
    sketch = GKSketch(EPSILON)
    values = (
        np.random.default_rng(9)
        .integers(0, 1_000_000, 50_000, dtype=np.int64)
        .tolist()
    )
    for value in values[:25_000]:
        sketch.update(value)
    # After warm-up, the live and scratch triples just swap roles:
    # the same six list objects cycle forever.
    ids_before = {
        id(sketch._values), id(sketch._g), id(sketch._delta),
        *(id(lst) for lst in sketch._scratch),
    }
    for value in values[25_000:]:
        sketch.update(value)
    ids_after = {
        id(sketch._values), id(sketch._g), id(sketch._delta),
        *(id(lst) for lst in sketch._scratch),
    }
    assert ids_after == ids_before
