"""Update-cost timing guard for the GK sketch (no pytest-benchmark).

The shared-cache PR micro-optimized ``GKSketch.update``/``_compress``
(scratch-list reuse instead of rebuilding the tuple lists every
compression).  This guard keeps that win from silently regressing: it
times a fixed seeded update workload with plain ``time.perf_counter``
— deliberately not the ``benchmark`` fixture, so it runs even where
pytest-benchmark is unavailable — and asserts a throughput floor set
roughly an order of magnitude below what the current implementation
measures (~680k updates/s on the reference container), so only a
genuine algorithmic regression trips it, never scheduler noise.
"""

import time

import numpy as np

from repro.sketches.gk import GKSketch

UPDATES = 200_000
EPSILON = 0.01
#: updates/second floor — ~11x below the measured implementation.
FLOOR = 60_000.0
ROUNDS = 3


def measure_update_seconds() -> float:
    """Best-of-N wall time for the seeded update workload."""
    values = (
        np.random.default_rng(5)
        .integers(0, 1_000_000, UPDATES, dtype=np.int64)
        .tolist()
    )
    best = float("inf")
    for _ in range(ROUNDS):
        sketch = GKSketch(EPSILON)
        start = time.perf_counter()
        for value in values:
            sketch.update(value)
        best = min(best, time.perf_counter() - start)
        assert sketch.n == UPDATES
    return best


def test_update_throughput_floor():
    seconds = measure_update_seconds()
    throughput = UPDATES / seconds
    print(
        f"\nGK update: {UPDATES:,} updates in {seconds:.3f}s "
        f"({throughput:,.0f} updates/s; floor {FLOOR:,.0f})"
    )
    assert throughput >= FLOOR, (
        f"GK update throughput regressed: {throughput:,.0f} updates/s "
        f"is below the {FLOOR:,.0f} floor"
    )


def test_compress_reuses_scratch_lists():
    """The compression scratch swap keeps steady-state allocation flat."""
    sketch = GKSketch(EPSILON)
    values = (
        np.random.default_rng(9)
        .integers(0, 1_000_000, 50_000, dtype=np.int64)
        .tolist()
    )
    for value in values[:25_000]:
        sketch.update(value)
    # After warm-up, the live and scratch triples just swap roles:
    # the same six list objects cycle forever.
    ids_before = {
        id(sketch._values), id(sketch._g), id(sketch._delta),
        *(id(lst) for lst in sketch._scratch),
    }
    for value in values[25_000:]:
        sketch.update(value)
    ids_after = {
        id(sketch._values), id(sketch._g), id(sketch._delta),
        *(id(lst) for lst in sketch._scratch),
    }
    assert ids_after == ids_before
