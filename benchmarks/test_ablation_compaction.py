"""Ablation A5: tiered (paper) vs leveled compaction for HD.

The paper's Section 4 asks how improved data structures shift the
accuracy/memory/disk tradeoff.  Leveled (LevelDB-style) compaction
keeps one partition per level: updates pay write amplification, but a
fixed memory budget spreads over fewer summaries, so each summary is
denser and queries touch fewer, better-bounded partitions.
"""

from common import accuracy_scale, memory_words, show
from conftest import run_once
from repro import EngineConfig, HybridQuantileEngine
from repro.core.memory import MemoryBudget
from repro.evaluation import ExperimentRunner
from repro.workloads import UniformWorkload


def engine_for(policy: str, scale, words: int) -> HybridQuantileEngine:
    budget = MemoryBudget(total_words=words)
    eps1, eps2 = budget.epsilons(scale.batch, 10, scale.steps)
    config = EngineConfig(
        epsilon=min(0.5, 4 * eps2),
        eps1=eps1,
        eps2=eps2,
        kappa=10,
        block_elems=scale.block_elems,
        compaction=policy,
    )
    return HybridQuantileEngine(config=config)


def sweep():
    scale = accuracy_scale()
    words = memory_words(250, scale)
    rows = []
    engines = {}
    for policy in ("tiered", "leveled"):
        engine = engine_for(policy, scale, words)
        runner = ExperimentRunner(
            workload=UniformWorkload(seed=44),
            num_steps=scale.steps,
            batch_elems=scale.batch,
            keep_oracle=False,
        )
        result = runner.run(
            {"ours": engine}, phis=(0.1, 0.25, 0.5, 0.75, 0.9)
        )
        run = result["ours"]
        engines[policy] = engine
        rows.append(
            [
                policy,
                engine.store.partition_count(),
                run.mean_update_io,
                run.mean_query_disk_accesses,
                run.median_relative_error,
            ]
        )
    return rows


def test_ablation_compaction(benchmark):
    rows = run_once(benchmark, sweep)
    show(
        "Ablation A5: tiered vs leveled compaction "
        "(Uniform, 250 paper-MB, kappa=10)",
        ["policy", "partitions", "update io", "query disk", "rel error"],
        rows,
    )
    tiered = {row[0]: row for row in rows}["tiered"]
    leveled = {row[0]: row for row in rows}["leveled"]
    # Leveled holds fewer partitions...
    assert leveled[1] <= tiered[1]
    # ...pays more update I/O (write amplification)...
    assert leveled[2] >= tiered[2]
    # ...and needs no more query I/O.
    assert leveled[3] <= tiered[3] * 1.25
