"""Ablation A12: chaos — shard kill/recovery under the durability WAL.

Drives the A11 cluster topology (Normal stream, kll backend) through a
seeded chaos schedule at shards in {4, 16}:

* step 0 is checkpointed (``save_cluster``), then a FAULTS_SEED-chosen
  victim shard is killed mid-run;
* ingest continues while the victim is quarantined — those acks are
  banked in the per-shard WAL;
* mid-outage queries return *partial* answers whose observed rank error
  must stay inside the widened bound (base + missing elements, +2 rank
  rounding slack);
* a ``ShardSupervisor`` restores the victim from checkpoint + WAL
  replay, and the final answers must be bit-identical to a never-failed
  cluster fed the same stream;
* the disabled-faults cell (same WAL-attached cluster, no kill) must be
  bit-identical to a plain cluster without any durability machinery.

``FAULTS_SEED`` (default 0) picks the victim and the kill step, so the
CI chaos matrix sweeps genuinely different schedules.  The table is
written to ``BENCH_chaos.json`` next to this file; the CI chaos job
regenerates and uploads it.
"""

import os
import tempfile
from pathlib import Path

import numpy as np

from common import SCALE, bench_path, show, write_bench
from conftest import run_once
from repro.cluster import ClusterEngine, ShardSupervisor, save_cluster
from repro.core.config import EngineConfig
from repro.faults.retry import RetryPolicy
from repro.workloads import NormalWorkload

PHIS = (0.05, 0.25, 0.5, 0.75, 0.95)
SHARDS = (4, 16)
STEPS = 5
STEP_ELEMS = int(20_000 * SCALE)
EPSILON = 0.02
BACKEND = "kll"
FAULTS_SEED = int(os.environ.get("FAULTS_SEED", "0"))
RESULT_FILE = bench_path("chaos")


def make_config(shards):
    return EngineConfig(
        epsilon=EPSILON,
        block_elems=100,
        sketch_backend=BACKEND,
        # Any single-shard outage keeps quorum at every swept width.
        min_gather_shards=shards - 1,
    )


def make_feeds():
    workload = NormalWorkload(seed=808)
    return [workload.generate(STEP_ELEMS) for _ in range(STEPS)]


def chaos_schedule(shards):
    """FAULTS_SEED picks the victim and the (post-checkpoint) kill step."""
    rng = np.random.default_rng((FAULTS_SEED << 8) ^ shards)
    victim = int(rng.integers(0, shards))
    kill_after_step = int(rng.integers(1, STEPS - 1))
    return victim, kill_after_step


def rank_error(full, result, phi):
    target = max(1, int(np.ceil(phi * len(full))))
    lo = int(np.searchsorted(full, result.value, side="left")) + 1
    hi = int(np.searchsorted(full, result.value, side="right"))
    if lo <= target <= hi:
        return 0
    return min(abs(target - lo), abs(target - hi))


def run_plain(shards, feeds):
    """The no-faults reference: no WAL, no kills, plain scatter/gather."""
    cluster = ClusterEngine(shards=shards, config=make_config(shards))
    for feed in feeds:
        cluster.stream_update_many(feed)
        cluster.end_time_step()
    answers = [cluster.quantile(phi).value for phi in PHIS]
    cluster.close()
    return answers


def run_durable(shards, feeds, root, chaos):
    """One WAL-attached run; optionally kill + recover the victim."""
    config = make_config(shards)
    cluster = ClusterEngine(
        shards=shards, config=config, wal_dir=root / "wal"
    )
    victim, kill_after_step = chaos_schedule(shards)
    row = {
        "shards": shards,
        "faults_seed": FAULTS_SEED,
        "chaos": chaos,
        "victim": victim if chaos else None,
        "kill_after_step": kill_after_step if chaos else None,
    }
    fed = []
    for step, feed in enumerate(feeds):
        cluster.stream_update_many(feed)
        cluster.end_time_step()
        fed.append(feed)
        if step == 0:
            save_cluster(cluster, root / "ckpt")
        if chaos and step == kill_after_step:
            cluster.kill_shard(victim, "chaos kill")
        if chaos and step == kill_after_step + 1:
            # Mid-outage: partial answers, widened-bound soundness.
            full = np.sort(np.concatenate(fed))
            worst_excess = -float("inf")
            for phi in PHIS:
                result = cluster.quantile(phi, mode="accurate")
                partial = result.partial
                assert partial is not None
                assert partial.missing_shards == (victim,)
                error = rank_error(full, result, phi)
                worst_excess = max(
                    worst_excess, error - result.rank_error_bound
                )
                assert error <= result.rank_error_bound + 2, (
                    shards, phi, error, result.rank_error_bound,
                )
            row["banked_elements"] = int(cluster.n_acked - cluster.n_total)
            row["worst_partial_excess"] = worst_excess
            supervisor = ShardSupervisor(
                cluster,
                root / "ckpt",
                retry=RetryPolicy(max_retries=3, backoff_seconds=0.05),
            )
            supervisor.run_until_settled()
            assert cluster.quarantined_shards == {}
            row["recovery_events"] = [
                event.as_dict() for event in supervisor.events
            ]
    cluster.check_invariants()
    row["answers"] = [cluster.quantile(phi).value for phi in PHIS]
    assert cluster.quantile(0.5).partial is None  # full gather again
    cluster.close()
    return row


def drive(shards):
    feeds = make_feeds()
    reference = run_plain(shards, feeds)
    with tempfile.TemporaryDirectory() as tmp:
        chaos_row = run_durable(shards, feeds, Path(tmp) / "chaos", True)
        quiet_row = run_durable(shards, feeds, Path(tmp) / "quiet", False)
    # Recovery restores bit-identical answers; the disabled-faults cell
    # shows the durability machinery itself changes nothing.
    chaos_row["identical_to_reference"] = chaos_row["answers"] == reference
    quiet_row["identical_to_reference"] = quiet_row["answers"] == reference
    assert chaos_row["identical_to_reference"], (
        shards, chaos_row["answers"], reference,
    )
    assert quiet_row["identical_to_reference"], (
        shards, quiet_row["answers"], reference,
    )
    return [chaos_row, quiet_row]


def sweep():
    rows = []
    for shards in SHARDS:
        rows.extend(drive(shards))
    return rows


def test_ablation_chaos(benchmark):
    rows = run_once(benchmark, sweep)
    show(
        f"Ablation A12: chaos recovery (Normal, {STEPS} steps x "
        f"{STEP_ELEMS:,} elements, kll, FAULTS_SEED={FAULTS_SEED})",
        ["shards", "chaos", "victim", "banked", "partial excess", "final"],
        [
            [
                r["shards"],
                "kill+recover" if r["chaos"] else "disabled",
                r["victim"] if r["chaos"] else "-",
                r.get("banked_elements", 0),
                r.get("worst_partial_excess", "-"),
                "bit-identical" if r["identical_to_reference"] else "DRIFT",
            ]
            for r in rows
        ],
    )
    write_bench(
        "chaos",
        {
            "benchmark": "chaos_ablation",
            "meta": {
                "steps": STEPS,
                "step_elems": STEP_ELEMS,
                "epsilon": EPSILON,
                "phis": list(PHIS),
                "faults_seed": FAULTS_SEED,
                "shards": max(SHARDS),
                "shards_swept": list(SHARDS),
                "sketch_backend": BACKEND,
                "storage_backend": "simulated",
                "object_tier": False,
            },
            "rows": rows,
        },
    )
    assert all(r["identical_to_reference"] for r in rows)
    # Every chaos cell really exercised the outage path.
    for row in rows:
        if row["chaos"]:
            assert row["banked_elements"] > 0, row
            actions = [e["action"] for e in row["recovery_events"]]
            assert "restored" in actions, row
