"""Ablation A3: trading accuracy for disk accesses via early stopping.

The paper's Section 4: "It may be possible (within limits) to reduce
the number of disk accesses by reducing the accuracy while keeping the
memory usage fixed, through stopping the search of the on-disk
structure early."  This ablation caps the per-query random-block
budget and maps out that frontier.
"""

import math

from common import accuracy_scale, hybrid_engine, memory_words, show
from conftest import run_once
from repro.evaluation import ExperimentRunner
from repro.workloads import UniformWorkload

BUDGETS = (None, 60, 30, 15, 5)


def sweep():
    scale = accuracy_scale()
    words = memory_words(250, scale)
    rows = []
    for budget in BUDGETS:
        engine = hybrid_engine(words, scale, probe_budget=budget)
        runner = ExperimentRunner(
            workload=UniformWorkload(seed=66),
            num_steps=scale.steps,
            batch_elems=scale.batch,
            keep_oracle=False,
        )
        result = runner.run(
            {"ours": engine}, phis=(0.1, 0.25, 0.5, 0.75, 0.9)
        )
        run = result["ours"]
        truncated = sum(q.result.truncated for q in run.queries)
        rows.append(
            [
                budget if budget is not None else "none",
                run.mean_query_disk_accesses,
                run.median_relative_error,
                truncated,
            ]
        )
    return rows


def test_ablation_early_stop(benchmark):
    rows = run_once(benchmark, sweep)
    show(
        "Ablation A3: probe budget vs accuracy (Uniform, 250 paper-MB)",
        ["probe budget", "query disk accesses", "rel error", "truncated"],
        rows,
    )
    unlimited = rows[0]
    tightest = rows[-1]
    # Capping the budget reduces disk accesses...
    assert tightest[1] <= unlimited[1]
    # ...at the price of accuracy.
    assert tightest[2] >= unlimited[2]
    # No run produced a nonsensical error.
    assert all(math.isfinite(row[2]) for row in rows)
