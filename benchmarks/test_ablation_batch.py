"""Ablation A10: batched ingest — update batch size x ingest mode.

The vectorized write path (``engine.stream_update_many``) hands whole
arrays to the append buffer and lets the GK sketch absorb the tail in
one sort-once/merge-once pass at the next read point.  This ablation
drives the same seeded Normal stream through every cell of

    update batch in {1, 64, 4096}  x  ingest_mode in {sync, background}

(batch 1 is the element-at-a-time ``stream_update`` baseline), timing
only the update calls, and asserts the two halves of the contract:

* *bit identity* — every cell answers every probe identically after
  ``flush()`` (the lazy-absorption property: how the buffer was filled
  cannot matter);
* *throughput* — the 4096-element cells beat the element-at-a-time
  cells by a wide margin (the hard >= 10x gate lives in
  ``test_update_timing.py``; this table holds a conservative floor
  across the full engine loop, which includes un-batched seal work).

The table is written to ``BENCH_batch.json`` next to this file; the CI
batch-ingest job regenerates and uploads it.
"""

import time

from common import SCALE, bench_path, show, write_bench
from conftest import run_once
from repro.core.config import EngineConfig
from repro.core.engine import HybridQuantileEngine
from repro.workloads import NormalWorkload

PHIS = (0.25, 0.5, 0.75, 0.95)
UPDATE_BATCHES = (1, 64, 4096)
MODES = ("sync", "background")
STEPS = 6
STEP_ELEMS = int(20_000 * SCALE)
KAPPA = 10
#: conservative whole-loop floor; the dedicated timing guard holds the
#: >= 10x update-call contract.
SPEEDUP_FLOOR = 5.0
RESULT_FILE = bench_path("batch")


def drive(update_batch, mode):
    """One seeded ingest run; returns timings plus every probe answer."""
    config = EngineConfig(
        epsilon=0.01, kappa=KAPPA, block_elems=100, ingest_mode=mode
    )
    engine = HybridQuantileEngine(config=config)
    workload = NormalWorkload(seed=606)
    update_seconds = 0.0
    started = time.perf_counter()
    for _ in range(STEPS):
        batch = workload.generate(STEP_ELEMS)
        tick = time.perf_counter()
        if update_batch == 1:
            for value in batch.tolist():
                engine.stream_update(value)
        else:
            for lo in range(0, STEP_ELEMS, update_batch):
                engine.stream_update_many(batch[lo : lo + update_batch])
        update_seconds += time.perf_counter() - tick
        engine.end_time_step()
    engine.flush()
    # Live tail, then the probe schedule every cell must answer alike.
    tail = workload.generate(STEP_ELEMS // 2)
    tick = time.perf_counter()
    if update_batch == 1:
        for value in tail.tolist():
            engine.stream_update(value)
    else:
        for lo in range(0, tail.size, update_batch):
            engine.stream_update_many(tail[lo : lo + update_batch])
    update_seconds += time.perf_counter() - tick
    end_to_end = time.perf_counter() - started
    answers = []
    for phi in PHIS:
        for query_mode in ("quick", "accurate"):
            answers.append(engine.quantile(phi, mode=query_mode).value)
    for window in engine.available_window_sizes():
        answers.append(engine.quantile(0.5, window_steps=window).value)
    layout = [
        (p.level, p.start_step, p.end_step, len(p))
        for p in engine.store.partitions()
    ]
    engine.check_invariants()
    elements = STEPS * STEP_ELEMS + tail.size
    engine.close()
    return {
        "mode": mode,
        "update_batch": update_batch,
        "elements": int(elements),
        "update_seconds": update_seconds,
        "updates_per_sec": elements / update_seconds,
        "end_to_end_seconds": end_to_end,
        "answers": answers,
        "layout": layout,
    }


def sweep():
    return [
        drive(update_batch, mode)
        for mode in MODES
        for update_batch in UPDATE_BATCHES
    ]


def test_ablation_batch(benchmark):
    rows = run_once(benchmark, sweep)
    show(
        "Ablation A10: update batch size x ingest mode (Normal, "
        f"{STEPS} steps x {STEP_ELEMS:,} elements)",
        ["mode", "batch", "updates/s", "update s", "end-to-end s"],
        [
            [
                r["mode"],
                r["update_batch"],
                r["updates_per_sec"],
                r["update_seconds"],
                r["end_to_end_seconds"],
            ]
            for r in rows
        ],
    )
    by_cell = {(r["mode"], r["update_batch"]): r for r in rows}
    speedups = {
        mode: (
            by_cell[(mode, 4096)]["updates_per_sec"]
            / by_cell[(mode, 1)]["updates_per_sec"]
        )
        for mode in MODES
    }
    write_bench(
        "batch",
        {
            "benchmark": "batch_ablation",
            "meta": {
                "steps": STEPS,
                "step_elems": STEP_ELEMS,
                "kappa": KAPPA,
                "phis": list(PHIS),
                "shards": 1,
                "sketch_backend": "gk",
                "storage_backend": "simulated",
                "object_tier": False,
            },
            "rows": [
                {
                    key: row[key]
                    for key in (
                        "mode",
                        "update_batch",
                        "elements",
                        "update_seconds",
                        "updates_per_sec",
                        "end_to_end_seconds",
                    )
                }
                for row in rows
            ],
            "speedup_4096_over_1": speedups,
        },
    )

    # Bit identity: every cell — any batch size, either ingest mode —
    # answers the whole probe schedule identically and lands the same
    # leveled layout.
    baseline = rows[0]
    for row in rows[1:]:
        cell = (row["mode"], row["update_batch"])
        assert row["answers"] == baseline["answers"], cell
        assert row["layout"] == baseline["layout"], cell

    # Throughput: vectorized cells must clear the conservative
    # whole-loop floor over element-at-a-time in both modes.
    for mode, speedup in speedups.items():
        assert speedup >= SPEEDUP_FLOOR, (mode, speedup)
    # Batching helps monotonically across the sweep's endpoints.
    for mode in MODES:
        assert (
            by_cell[(mode, 64)]["updates_per_sec"]
            > by_cell[(mode, 1)]["updates_per_sec"]
        ), mode
