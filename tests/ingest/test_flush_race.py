"""Regression: readers racing flush/adoption never see torn layouts.

Historically ``flush()`` could expose a window where a sealed batch was
in neither the stream summary nor the partition set (it had been taken
from the queue but not yet adopted).  The epoch layer closes it: a
pinned snapshot stages pending batches alongside adopted partitions
inside one critical section, so a reader always sees every sealed
element exactly once.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import HybridQuantileEngine
from repro.core import EngineConfig

BATCH = 1000


def background_engine() -> HybridQuantileEngine:
    config = EngineConfig(
        epsilon=0.02,
        kappa=3,
        block_elems=64,
        ingest_mode="background",
        ingest_queue_batches=2,
    )
    return HybridQuantileEngine(config=config)


def seal_batches(engine: HybridQuantileEngine, rng, count: int) -> None:
    for _ in range(count):
        engine.stream_update_batch(
            rng.integers(0, 1_000_000, BATCH, dtype=np.int64)
        )
        engine.end_time_step()


def test_pins_during_flush_always_see_every_sealed_element():
    engine = background_engine()
    rng = np.random.default_rng(41)
    seal_batches(engine, rng, 6)

    stop = threading.Event()
    observed = []
    errors = []

    def reader() -> None:
        try:
            while not stop.is_set():
                with engine.pin() as handle:
                    observed.append(
                        (handle.n_total, handle.m_stream)
                    )
                    handle.quantile(0.5, mode="quick")
        except BaseException as exc:  # pragma: no cover - fail loud
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    try:
        engine.flush()
    finally:
        stop.set()
        for thread in threads:
            thread.join()

    assert not errors
    assert observed
    # The stream is empty (everything sealed), so every pin — no matter
    # where adoption stood — must account for all six batches exactly:
    # never a half-adopted partition set, never a double-counted batch.
    for n_total, m_stream in observed:
        assert m_stream == 0
        assert n_total == 6 * BATCH
    engine.close()


def test_pins_during_sealing_see_whole_batches_only():
    engine = background_engine()
    rng = np.random.default_rng(43)

    stop = threading.Event()
    errors = []
    historical = []

    def reader() -> None:
        try:
            while not stop.is_set():
                with engine.pin() as handle:
                    historical.append(handle.n_historical)
        except BaseException as exc:  # pragma: no cover - fail loud
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(2)]
    for thread in threads:
        thread.start()
    try:
        seal_batches(engine, rng, 8)
        engine.flush()
        with engine.pin() as handle:
            historical.append(handle.n_historical)
    finally:
        stop.set()
        for thread in threads:
            thread.join()

    assert not errors
    assert historical
    # Partitions hold whole sealed batches — staged or adopted — so a
    # reader's historical count is always a multiple of the batch size:
    # seal (stream -> pending) and adopt (pending -> layout) are atomic
    # from the pin's point of view.
    for count in historical:
        assert count % BATCH == 0
    assert max(historical) == 8 * BATCH
    engine.close()


def test_flush_returns_reports_while_pins_held():
    engine = background_engine()
    rng = np.random.default_rng(47)
    seal_batches(engine, rng, 4)
    # A long-lived pin must not deadlock or stall the drain.
    with engine.pin() as handle:
        reports = engine.flush()
        assert [r.step for r in reports] == [1, 2, 3, 4]
        assert handle.n_total == 4 * BATCH
    assert engine.epoch_stats.live_pins == 0
    with pytest.raises(ValueError):
        # still guarded after flush: bad modes rejected
        engine.quantile(0.5, mode="fast")
    engine.close()
