"""Background ingest must be bit-identical to the synchronous path.

The acceptance bar for the ingest pipeline: after ``flush()``, a
background-mode engine agrees with a sync-mode engine fed the same
stream on *everything* observable — query answers, per-step and global
I/O counters (including the per-phase split), the leveled layout, and
the structural invariants — across merge thresholds and both compaction
policies.
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import HybridQuantileEngine


def drive(mode, kappa, compaction, steps=14, batch=400, seed=7):
    config = EngineConfig(
        epsilon=0.01,
        kappa=kappa,
        block_elems=64,
        compaction=compaction,
        ingest_mode=mode,
        ingest_queue_batches=3,
    )
    engine = HybridQuantileEngine(config=config)
    rng = np.random.default_rng(seed)
    reports = []
    for _ in range(steps):
        engine.stream_update_batch(rng.integers(0, 10**6, size=batch))
        for value in rng.integers(0, 10**6, size=3):
            engine.stream_update(int(value))
        reports.append(engine.end_time_step())
    flushed = engine.flush()
    if mode == "background":
        reports = flushed
    else:
        assert flushed == []
    engine.stream_update_batch(rng.integers(0, 10**6, size=50))
    return engine, reports


def comparable(report):
    return (
        report.step,
        report.batch_elems,
        report.io_total,
        report.io_load,
        report.io_sort,
        report.io_merge,
        report.merged_levels,
    )


@pytest.mark.parametrize("compaction", ["tiered", "leveled"])
@pytest.mark.parametrize("kappa", [3, 10, 20])
class TestSyncBackgroundEquivalence:
    def test_bit_identical_after_flush(self, kappa, compaction):
        sync, sync_reports = drive("sync", kappa, compaction)
        back, back_reports = drive("background", kappa, compaction)
        try:
            # per-step reports: same steps, same I/O, same merges
            assert list(map(comparable, sync_reports)) == list(
                map(comparable, back_reports)
            )
            # every flushed report is authoritative
            assert all(r.archived for r in back_reports)

            # global counters, including the per-phase buckets
            for bucket in ("counters", "load", "sort", "merge", "query"):
                assert getattr(sync.disk.stats, bucket) == getattr(
                    back.disk.stats, bucket
                ), bucket

            # identical layout
            def layout(engine):
                return [
                    (p.level, p.start_step, p.end_step, len(p))
                    for p in engine.store.partitions()
                ]

            assert layout(sync) == layout(back)
            assert sync.n_historical == back.n_historical
            assert sync.steps_loaded == back.steps_loaded

            # identical answers, both modes, assorted scopes
            for phi in (0.05, 0.25, 0.5, 0.75, 0.95):
                for mode in ("quick", "accurate"):
                    a = sync.quantile(phi, mode=mode)
                    b = back.quantile(phi, mode=mode)
                    assert a.value == b.value, (phi, mode)
                    assert a.disk_accesses == b.disk_accesses

            assert (
                sync.available_window_sizes() == back.available_window_sizes()
            )
            for window in sync.available_window_sizes():
                assert (
                    sync.quantile(0.5, window_steps=window).value
                    == back.quantile(0.5, window_steps=window).value
                )

            assert sync.aggregate() == back.aggregate()

            sync.check_invariants()
            back.check_invariants()
        finally:
            sync.close()
            back.close()


class TestFlushSemantics:
    def test_flush_on_sync_engine_is_noop(self):
        engine = HybridQuantileEngine(epsilon=0.01, kappa=3, block_elems=64)
        engine.stream_update_batch(np.arange(100))
        engine.end_time_step()
        assert engine.flush() == []
        assert engine.ingest_stats is None

    def test_provisional_reports_then_authoritative(self):
        config = EngineConfig(
            epsilon=0.01, kappa=3, block_elems=64, ingest_mode="background"
        )
        engine = HybridQuantileEngine(config=config)
        try:
            rng = np.random.default_rng(0)
            provisional = []
            for _ in range(5):
                engine.stream_update_batch(rng.integers(0, 1000, size=200))
                provisional.append(engine.end_time_step())
            assert all(not r.archived for r in provisional)
            assert all(r.io_total == 0 for r in provisional)
            flushed = engine.flush()
            assert [r.step for r in flushed] == [1, 2, 3, 4, 5]
            assert all(r.archived for r in flushed)
            assert sum(r.io_total for r in flushed) > 0
            # a second flush has nothing left to report
            assert engine.flush() == []
            stats = engine.ingest_stats
            assert stats is not None
            assert stats.batches_archived == 5
            assert stats.archive_wall_seconds > 0.0
        finally:
            engine.close()

    def test_close_archives_everything(self):
        config = EngineConfig(
            epsilon=0.01, kappa=3, block_elems=64, ingest_mode="background"
        )
        engine = HybridQuantileEngine(config=config)
        rng = np.random.default_rng(1)
        for _ in range(4):
            engine.stream_update_batch(rng.integers(0, 1000, size=100))
            engine.end_time_step()
        engine.close()
        assert engine.store.steps_loaded == 4
        engine.store.check_invariant()
