"""Queries must stay correct while batches are still being archived.

These tests freeze the archiver (``pause``) so sealed batches sit in
the pending set, then check that every query path — rank queries,
windows, aggregates, snapshots, accounting — covers the full union of
adopted, pending and live data.
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import HybridQuantileEngine
from repro.core.snapshot import snapshot
from repro.core.windows import WindowNotAlignedError


def exact_rank(values, answer):
    return int(np.count_nonzero(np.sort(values) <= answer))


@pytest.fixture
def paused_engine():
    config = EngineConfig(
        epsilon=0.01,
        kappa=3,
        block_elems=64,
        ingest_mode="background",
        ingest_queue_batches=8,
    )
    engine = HybridQuantileEngine(config=config)
    rng = np.random.default_rng(3)
    everything = []
    # four steps archived normally
    for _ in range(4):
        batch = rng.integers(0, 10**6, size=500)
        everything.append(batch)
        engine.stream_update_batch(batch)
        engine.end_time_step()
    engine.flush()
    # three steps sealed but frozen in the pending queue
    engine._ensure_archiver().pause()
    for _ in range(3):
        batch = rng.integers(0, 10**6, size=500)
        everything.append(batch)
        engine.stream_update_batch(batch)
        engine.end_time_step()
    # plus a live stream tail
    tail = rng.integers(0, 10**6, size=200)
    everything.append(tail)
    engine.stream_update_batch(tail)
    yield engine, np.concatenate(everything)
    engine._ensure_archiver().resume()
    engine.close()


class TestMidArchiveQueries:
    def test_accounting_covers_pending(self, paused_engine):
        engine, union = paused_engine
        assert engine._ensure_archiver().queue_depth == 3
        assert engine.n_historical == 7 * 500
        assert engine.m_stream == 200
        assert engine.n_total == union.size
        assert engine.steps_loaded == 4
        assert engine.steps_sealed == 7

    def test_rank_queries_cover_full_union(self, paused_engine):
        engine, union = paused_engine
        n = union.size
        for phi in (0.1, 0.5, 0.9):
            for mode in ("quick", "accurate"):
                result = engine.quantile(phi, mode=mode)
                assert result.total_size == n
                achieved = exact_rank(union, result.value)
                bound = (
                    engine.config.epsilon * n
                    if mode == "quick"
                    else engine.config.epsilon * engine.m_stream
                    + engine.config.epsilon * n * 0.5
                )
                # generous slack over the analytic bound; mainly this
                # guards against missing/double-counting a pending batch,
                # which would shift ranks by ~500
                assert abs(achieved - result.target_rank) <= max(
                    bound, 0.05 * n
                ), (phi, mode)

    def test_window_over_pending_steps(self, paused_engine):
        engine, union = paused_engine
        sizes = engine.available_window_sizes()
        # windows ending at the last *sealed* step exist mid-archive
        assert 1 in sizes and 3 in sizes
        result = engine.quantile(0.5, window_steps=3)
        # last three sealed steps (all pending) + live stream
        assert result.total_size == 3 * 500 + 200
        window_union = union[-(3 * 500 + 200):]
        achieved = exact_rank(window_union, result.value)
        assert abs(achieved - result.target_rank) <= 0.05 * window_union.size

    def test_unaligned_window_lists_pending_sizes(self, paused_engine):
        engine, _ = paused_engine
        # 5 steps would split the merged [1-3] partition
        with pytest.raises(WindowNotAlignedError) as excinfo:
            engine.quantile(0.5, window_steps=5)
        assert 3 in excinfo.value.available

    def test_range_over_pending_steps(self, paused_engine):
        engine, union = paused_engine
        result = engine.quantile(0.5, step_range=(5, 7))
        assert result.total_size == 3 * 500
        segment = union[4 * 500 : 7 * 500]
        achieved = exact_rank(segment, result.value)
        assert abs(achieved - result.target_rank) <= 0.05 * segment.size

    def test_aggregate_full_union_without_staging_io(self, paused_engine):
        engine, union = paused_engine
        before = engine.disk.stats.counters.snapshot()
        stats = engine.aggregate()
        assert engine.disk.stats.counters.delta_since(before).total == 0
        assert stats.count == union.size
        assert stats.total == int(union.sum())
        assert stats.minimum == int(union.min())
        assert stats.maximum == int(union.max())

    def test_windowed_aggregate_is_exact(self, paused_engine):
        engine, union = paused_engine
        stats = engine.aggregate(window_steps=3)
        segment = np.concatenate([union[-(3 * 500 + 200) : -200], union[-200:]])
        assert stats.count == segment.size
        assert stats.total == int(segment.sum())

    def test_snapshot_pins_pending(self, paused_engine):
        engine, union = paused_engine
        view = snapshot(engine)
        assert view.n_total == union.size
        assert view.created_at_step == 7
        result = view.quantile(0.5)
        achieved = exact_rank(union, result.value)
        assert abs(achieved - result.target_rank) <= 0.05 * union.size

    def test_invariants_hold_mid_archive(self, paused_engine):
        engine, _ = paused_engine
        engine.check_invariants()

    def test_resume_then_flush_matches_sync_totals(self, paused_engine):
        engine, union = paused_engine
        engine._ensure_archiver().resume()
        reports = engine.flush()
        assert [r.step for r in reports] == [5, 6, 7]
        assert engine.steps_loaded == 7
        engine.check_invariants()
        result = engine.quantile(0.5)
        achieved = exact_rank(union, result.value)
        assert abs(achieved - result.target_rank) <= 0.05 * union.size


class TestConcurrentQueries:
    def test_queries_while_archiving(self):
        """Hammer quantile queries while the archiver churns for real."""
        config = EngineConfig(
            epsilon=0.01,
            kappa=3,
            block_elems=64,
            ingest_mode="background",
            ingest_queue_batches=4,
        )
        engine = HybridQuantileEngine(config=config)
        rng = np.random.default_rng(11)
        seen = []
        try:
            for _ in range(20):
                batch = rng.integers(0, 10**6, size=1000)
                seen.append(batch)
                engine.stream_update_batch(batch)
                engine.end_time_step()
                result = engine.quantile(0.5)
                union = np.concatenate(seen)
                assert result.total_size == union.size
                achieved = exact_rank(union, result.value)
                assert (
                    abs(achieved - result.target_rank) <= 0.05 * union.size
                )
            engine.flush()
            engine.check_invariants()
        finally:
            engine.close()
