"""WAL unit tests: framing, LSNs, rotation, truncation, salvage."""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import HybridQuantileEngine
from repro.ingest.wal import (
    WalError,
    WriteAheadLog,
    replay_wal,
    scan_wal,
)


def batch(*values):
    return np.asarray(values, dtype=np.int64)


def test_append_scan_roundtrip(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        assert wal.append_batch(batch(3, 1, 2)) == 1
        assert wal.append_seal(1) == 2
        assert wal.append_batch(batch(9)) == 3
    scan = scan_wal(tmp_path)
    assert scan.last_lsn == 3
    assert not scan.torn_tail
    kinds = [r.kind for r in scan.records]
    assert kinds == ["batch", "seal", "batch"]
    np.testing.assert_array_equal(scan.records[0].values, batch(3, 1, 2))
    assert scan.records[1].meta == 1  # the sealed step number
    assert scan.records[2].meta == 1  # the batch element count


def test_lsns_resume_across_reopen(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append_batch(batch(1))
        wal.append_batch(batch(2))
    with WriteAheadLog(tmp_path) as wal:
        assert wal.last_lsn == 2
        assert wal.append_batch(batch(3)) == 3
    scan = scan_wal(tmp_path)
    assert [r.lsn for r in scan.records] == [1, 2, 3]
    # Reopen never appends to an existing segment.
    assert scan.segments == 2


def test_segment_rotation(tmp_path):
    wal = WriteAheadLog(tmp_path, segment_bytes=64)
    for value in range(8):
        wal.append_batch(batch(value))
    wal.close()
    scan = scan_wal(tmp_path)
    assert scan.segments > 1
    assert [r.lsn for r in scan.records] == list(range(1, 9))


def test_truncate_is_pure_gc(tmp_path):
    wal = WriteAheadLog(tmp_path, segment_bytes=64)
    for value in range(8):
        wal.append_batch(batch(value))
    before = scan_wal(tmp_path).segments
    removed = wal.truncate(4)
    assert removed >= 1
    scan = scan_wal(tmp_path)
    assert scan.segments == before - removed
    # Every surviving record is past the watermark or shares a segment
    # with one that is; LSNs stay monotone.
    assert scan.last_lsn == 8
    assert all(r.lsn > 0 for r in scan.records)
    # Replay semantics don't change: records <= watermark are skipped.
    wal.close()


def test_truncate_everything(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append_batch(batch(1, 2))
        wal.append_seal(1)
        assert wal.truncate(wal.last_lsn) == 1
    scan = scan_wal(tmp_path)
    assert scan.records == ()
    assert scan.last_lsn == 0


def test_lsn_floor_survives_full_truncation(tmp_path):
    """A fresh writer after truncate-everything must not restart at 0.

    If it did, new records would be numbered below the checkpoint
    watermark and replay would silently skip them — losing acked data.
    """
    with WriteAheadLog(tmp_path) as wal:
        wal.append_batch(batch(1, 2))
        wal.append_seal(1)
        wal.truncate(wal.last_lsn)
    with WriteAheadLog(tmp_path) as wal:
        assert wal.last_lsn == 2
        assert wal.append_batch(batch(3)) == 3


def test_torn_tail_is_salvaged_on_reopen(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append_batch(batch(1, 2, 3))
        wal.append_batch(batch(4, 5, 6))
    segment = sorted(tmp_path.glob("wal-*.seg"))[-1]
    data = segment.read_bytes()
    segment.write_bytes(data[:-5])  # crash mid-write: torn final frame
    scan = scan_wal(tmp_path)
    assert scan.torn_tail
    assert [r.lsn for r in scan.records] == [1]
    with WriteAheadLog(tmp_path) as wal:
        assert wal.last_lsn == 1  # torn record was never durable
        assert wal.append_batch(batch(7)) == 2
    clean = scan_wal(tmp_path)
    assert not clean.torn_tail
    assert [r.lsn for r in clean.records] == [1, 2]


def test_midlog_corruption_raises_without_salvage(tmp_path):
    wal = WriteAheadLog(tmp_path, segment_bytes=64)
    for value in range(8):
        wal.append_batch(batch(value))
    wal.close()
    first = sorted(tmp_path.glob("wal-*.seg"))[0]
    data = bytearray(first.read_bytes())
    data[-3] ^= 0xFF  # flip a payload byte: CRC mismatch mid-log
    first.write_bytes(bytes(data))
    with pytest.raises(WalError, match="mid-log"):
        scan_wal(tmp_path)
    salvaged = scan_wal(tmp_path, salvage=True)
    # Salvage keeps the prefix before the damage and deletes the rest.
    assert salvaged.torn_tail
    assert all(r.lsn < 8 for r in salvaged.records)
    scan_wal(tmp_path)  # now clean


def test_not_a_segment_raises(tmp_path):
    (tmp_path / "wal-0000000000000001.seg").write_bytes(b"not a wal file")
    with pytest.raises(WalError, match="not a WAL segment"):
        scan_wal(tmp_path)


def test_closed_writer_refuses_appends(tmp_path):
    wal = WriteAheadLog(tmp_path)
    wal.append_batch(batch(1))
    wal.close()
    with pytest.raises(WalError, match="closed"):
        wal.append_batch(batch(2))


def test_header_only_segment_dropped_on_close(tmp_path):
    wal = WriteAheadLog(tmp_path)
    wal.append_batch(batch(1))
    wal.close()
    # Reopen, write nothing: the fresh segment must not linger.
    wal = WriteAheadLog(tmp_path)
    wal.close()
    assert scan_wal(tmp_path).segments == 1


def test_replay_reproduces_feed(tmp_path):
    config = EngineConfig(epsilon=0.02, block_elems=64)
    rng = np.random.default_rng(11)
    feeds = [
        rng.integers(0, 10_000, size=500).astype(np.int64)
        for _ in range(3)
    ]
    reference = HybridQuantileEngine(config=config)
    logged = HybridQuantileEngine(config=config)
    logged.attach_wal(WriteAheadLog(tmp_path / "wal"))
    for feed in feeds:
        reference.stream_update_many(feed)
        reference.end_time_step()
        logged.stream_update_many(feed)
        logged.end_time_step()
    logged.close()
    replayed = HybridQuantileEngine(config=config)
    stats = replay_wal(replayed, tmp_path / "wal")
    assert stats.batches == 3
    assert stats.elements == 1500
    assert stats.seals == 3
    assert stats.skipped == 0
    for phi in (0.1, 0.5, 0.9):
        assert (
            replayed.quantile(phi).value == reference.quantile(phi).value
        )
    reference.close()
    replayed.close()


def test_replay_refuses_attached_writer(tmp_path):
    config = EngineConfig(epsilon=0.05, block_elems=64)
    engine = HybridQuantileEngine(config=config)
    engine.attach_wal(WriteAheadLog(tmp_path / "wal"))
    with pytest.raises(WalError, match="detach"):
        replay_wal(engine, tmp_path / "wal")
    engine.close()


def test_attach_twice_rejected(tmp_path):
    config = EngineConfig(epsilon=0.05, block_elems=64)
    engine = HybridQuantileEngine(config=config)
    engine.attach_wal(WriteAheadLog(tmp_path / "a"))
    with pytest.raises(ValueError):
        engine.attach_wal(WriteAheadLog(tmp_path / "b"))
    engine.close()
