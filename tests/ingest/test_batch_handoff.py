"""Batched ingest must make O(batches) hand-offs, not O(elements).

``stream_update_batch`` used to materialize iterables element by
element into per-element work; the fixed path funnels every write —
array or iterable — through one buffer extend per call and leaves the
GK sketch untouched until a reader needs it.  These regression tests
count the actual hand-offs so the O(batches) shape can't silently
regress.
"""

import numpy as np

from repro.core.config import EngineConfig
from repro.core.engine import HybridQuantileEngine
from repro.ingest.buffer import AppendBuffer
from repro.sketches.gk import GKSketch


class Spy:
    """Counts calls to a bound method, monkeypatch-style."""

    def __init__(self, monkeypatch, cls, name):
        self.calls = 0
        original = getattr(cls, name)

        def counted(receiver, *args, **kwargs):
            self.calls += 1
            return original(receiver, *args, **kwargs)

        monkeypatch.setattr(cls, name, counted)


class TestHandoffCounts:
    def test_iterable_batch_is_one_buffer_extend(self, monkeypatch):
        extends = Spy(monkeypatch, AppendBuffer, "extend")
        appends = Spy(monkeypatch, AppendBuffer, "append")
        engine = HybridQuantileEngine(epsilon=0.01, kappa=3, block_elems=64)
        engine.stream_update_batch(iter(range(10_000)))
        # One array hand-off for the whole iterable, zero per-element
        # appends.
        assert extends.calls == 1
        assert appends.calls == 0
        assert engine.m_stream == 10_000

    def test_ingest_never_touches_sketch_per_element(self, monkeypatch):
        scalar_updates = Spy(monkeypatch, GKSketch, "update")
        bulk_updates = Spy(monkeypatch, GKSketch, "update_many")
        engine = HybridQuantileEngine(epsilon=0.01, kappa=3, block_elems=64)
        for lo in range(0, 8_000, 2_000):
            engine.stream_update_many(np.arange(lo, lo + 2_000))
        engine.stream_update_batch(int(v) for v in range(8_000, 9_000))
        # Pure ingestion: the sketch is never consulted.
        assert scalar_updates.calls == 0
        assert bulk_updates.calls == 0
        # The first read point absorbs the whole tail in one bulk pass.
        assert engine.stream_sketch().n == 9_000
        assert bulk_updates.calls == 1
        assert scalar_updates.calls == 0
        # The approximate median lands within the eps*N rank bound.
        answer = engine.quantile(0.5, mode="quick").value
        assert abs(answer - 4_500) <= 0.01 * 9_000 + 1

    def test_background_mode_one_enqueue_per_step(self, monkeypatch):
        from repro.ingest.archiver import BackgroundArchiver

        enqueues = Spy(monkeypatch, BackgroundArchiver, "enqueue_reserved")
        config = EngineConfig(
            epsilon=0.01, kappa=3, block_elems=64, ingest_mode="background"
        )
        engine = HybridQuantileEngine(config=config)
        try:
            rng = np.random.default_rng(3)
            for _ in range(5):
                # Many update calls within a step...
                for _ in range(10):
                    engine.stream_update_many(rng.integers(0, 1000, size=100))
                engine.end_time_step()
            # ...still exactly one archiver hand-off per sealed step.
            assert enqueues.calls == 5
            assert engine.flush()
        finally:
            engine.close()
