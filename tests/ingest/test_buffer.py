"""Tests for the amortized-O(1) stream append buffer."""

import numpy as np
import pytest

from repro.ingest import AppendBuffer


class TestAppendBuffer:
    def test_starts_empty(self):
        buffer = AppendBuffer()
        assert len(buffer) == 0
        assert buffer.view().size == 0
        assert buffer.take().size == 0

    def test_append_and_view(self):
        buffer = AppendBuffer(capacity=2)
        for value in (5, 3, 9):
            buffer.append(value)
        np.testing.assert_array_equal(buffer.view(), [5, 3, 9])
        assert len(buffer) == 3

    def test_extend(self):
        buffer = AppendBuffer(capacity=1)
        buffer.extend(np.asarray([1, 2], dtype=np.int64))
        buffer.append(3)
        buffer.extend(np.asarray([4, 5, 6], dtype=np.int64))
        np.testing.assert_array_equal(buffer.view(), [1, 2, 3, 4, 5, 6])

    def test_extend_empty_is_noop(self):
        buffer = AppendBuffer()
        buffer.extend(np.empty(0, dtype=np.int64))
        assert len(buffer) == 0

    def test_view_is_read_only(self):
        buffer = AppendBuffer()
        buffer.append(1)
        view = buffer.view()
        with pytest.raises(ValueError):
            view[0] = 2

    def test_take_resets_and_copies(self):
        buffer = AppendBuffer(capacity=4)
        buffer.extend(np.arange(10, dtype=np.int64))
        taken = buffer.take()
        np.testing.assert_array_equal(taken, np.arange(10))
        assert len(buffer) == 0
        # the sealed batch must be independent of future appends
        buffer.extend(np.full(10, 99, dtype=np.int64))
        np.testing.assert_array_equal(taken, np.arange(10))

    def test_take_retains_capacity(self):
        buffer = AppendBuffer(capacity=1)
        buffer.extend(np.arange(100, dtype=np.int64))
        capacity = buffer._data.size
        buffer.take()
        buffer.extend(np.arange(100, dtype=np.int64))
        assert buffer._data.size == capacity

    def test_growth_preserves_contents(self):
        buffer = AppendBuffer(capacity=1)
        expected = []
        for value in range(1000):
            buffer.append(value)
            expected.append(value)
        np.testing.assert_array_equal(buffer.view(), expected)
