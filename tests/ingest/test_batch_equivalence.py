"""The vectorized write path must be bit-identical to scalar replay.

The tentpole contract of the batched ingest path: feeding the same
elements through ``stream_update`` one at a time, through
``stream_update_many`` in arrays of any size, or through
``stream_update_batch`` with a plain Python iterable must produce an
engine that answers *everything* identically — mid-stream quick and
accurate queries, post-seal queries, window queries, aggregates, disk
counters, the leveled layout — in both sync and background ingest
modes.  Lazy absorption makes this hold by construction (the sketch
swallows the same buffer tail at the same query points regardless of
how the buffer was filled); this harness pins the property.
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import HybridQuantileEngine

PHIS = (0.05, 0.25, 0.5, 0.75, 0.95)

FEED_STYLES = ("scalar", "many", "chunks", "iterable")


def feed(engine, batch, style):
    """Ingest ``batch`` through one of the equivalent write paths."""
    if style == "scalar":
        for value in batch:
            engine.stream_update(int(value))
    elif style == "many":
        engine.stream_update_many(batch)
    elif style == "chunks":
        for lo in range(0, batch.size, 64):
            engine.stream_update_many(batch[lo : lo + 64])
    elif style == "iterable":
        engine.stream_update_batch(int(v) for v in batch)
    else:  # pragma: no cover - guard against typos in parametrization
        raise AssertionError(style)


def drive(style, ingest_mode, steps=6, batch=700, seed=11):
    """Run one scripted session; return (engine, observations)."""
    config = EngineConfig(
        epsilon=0.01,
        kappa=3,
        block_elems=64,
        ingest_mode=ingest_mode,
        ingest_queue_batches=3,
    )
    engine = HybridQuantileEngine(config=config)
    rng = np.random.default_rng(seed)
    observed = []
    for step in range(steps):
        feed(engine, rng.integers(0, 10**6, size=batch), style)
        # Mid-stream probes: these force (identical) absorptions of the
        # live tail before each seal.  The archiver queue is drained
        # first so background-mode probes see a deterministic layout
        # (who stages a pending batch is otherwise a thread race).
        if step % 2 == 0:
            engine.flush()
            observed.append(("quick", engine.quantile(0.5, mode="quick").value))
            observed.append(
                ("accurate", engine.quantile(0.75, mode="accurate").value)
            )
            observed.append(("m", engine.m_stream))
        engine.end_time_step()
    engine.flush()
    # Live tail left unsealed, then queried.
    feed(engine, rng.integers(0, 10**6, size=300), style)
    for phi in PHIS:
        for mode in ("quick", "accurate"):
            result = engine.quantile(phi, mode=mode)
            observed.append((phi, mode, result.value, result.disk_accesses))
    summary = engine.stream_summary()
    observed.append(("ss", summary.values.tolist(), summary.stream_size))
    observed.append(("agg", engine.aggregate()))
    observed.append(("n", engine.n_total, engine.n_historical))
    for window in engine.available_window_sizes():
        observed.append(
            ("window", window, engine.quantile(0.5, window_steps=window).value)
        )
    return engine, observed


def layout(engine):
    return [
        (p.level, p.start_step, p.end_step, len(p))
        for p in engine.store.partitions()
    ]


@pytest.mark.parametrize("ingest_mode", ["sync", "background"])
class TestBatchEquivalence:
    def test_all_write_paths_bit_identical(self, ingest_mode):
        baseline_engine, baseline = drive("scalar", ingest_mode)
        try:
            for style in FEED_STYLES[1:]:
                engine, observed = drive(style, ingest_mode)
                try:
                    assert observed == baseline, style
                    assert layout(engine) == layout(baseline_engine), style
                    for bucket in ("counters", "load", "sort", "merge",
                                   "query"):
                        assert getattr(engine.disk.stats, bucket) == getattr(
                            baseline_engine.disk.stats, bucket
                        ), (style, bucket)
                    engine.check_invariants()
                finally:
                    engine.close()
        finally:
            baseline_engine.close()

    def test_memory_report_matches_scalar_replay(self, ingest_mode):
        a, _ = drive("scalar", ingest_mode)
        b, _ = drive("many", ingest_mode)
        try:
            assert a.memory_report() == b.memory_report()
            assert a.memory_report().stream_sketch_words > 0
        finally:
            a.close()
            b.close()


class TestStreamUpdateManyContract:
    def test_returns_count_and_flattens(self):
        engine = HybridQuantileEngine(epsilon=0.01, kappa=3, block_elems=64)
        assert engine.stream_update_many(np.arange(12).reshape(3, 4)) == 12
        assert engine.stream_update_many(np.empty(0, dtype=np.int64)) == 0
        assert engine.m_stream == 12
        # Quick responses carry the summary quantization; the median of
        # 0..11 must land next to rank 6 either way.
        assert engine.quantile(0.5, mode="quick").value in (5, 6)

    def test_sketch_absorbs_lazily(self):
        engine = HybridQuantileEngine(epsilon=0.01, kappa=3, block_elems=64)
        engine.stream_update_many(np.arange(1000))
        # No reader has needed the sketch yet.
        assert engine._gk.n == 0
        assert engine.m_stream == 1000
        # Any sketch read point absorbs the full tail.
        assert engine.stream_sketch().n == 1000
        engine.stream_update(1_000)
        assert engine._gk.n == 1000
        assert engine.stream_summary().stream_size == 1001
