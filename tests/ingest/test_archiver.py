"""Unit tests for the background archiver thread."""

import threading
import time

import numpy as np
import pytest

from repro.core.summaries import PartitionSummary
from repro.ingest import BackgroundArchiver, PendingBatch
from repro.storage.disk import SimulatedDisk
from repro.warehouse.leveled_store import LeveledStore


def make_store(kappa=3, block_elems=64):
    disk = SimulatedDisk(block_elems=block_elems)
    return LeveledStore(
        disk,
        kappa=kappa,
        summary_builder=lambda p: PartitionSummary.build(p, 0.01),
    )


def make_batch(step, size=100, seed=0):
    rng = np.random.default_rng(seed + step)
    return PendingBatch(
        step=step, values=rng.integers(0, 10**6, size=size).astype(np.int64)
    )


class TestBackgroundArchiver:
    def test_archives_in_step_order(self):
        store = make_store()
        archiver = BackgroundArchiver(store, max_pending=8)
        try:
            for step in range(1, 8):
                archiver.submit(make_batch(step))
            records = archiver.drain()
        finally:
            archiver.close()
        assert [r.step for r in records] == list(range(1, 8))
        assert store.steps_loaded == 7
        store.check_invariant()

    def test_drain_returns_each_record_once(self):
        store = make_store()
        archiver = BackgroundArchiver(store)
        try:
            archiver.submit(make_batch(1))
            first = archiver.drain()
            second = archiver.drain()
        finally:
            archiver.close()
        assert [r.step for r in first] == [1]
        assert second == []

    def test_queue_depth_high_water_mark(self):
        store = make_store()
        archiver = BackgroundArchiver(store, max_pending=8)
        try:
            archiver.pause()
            for step in range(1, 4):
                archiver.submit(make_batch(step))
            assert archiver.queue_depth == 3
            assert archiver.stats.max_queue_depth == 3
            archiver.resume()
            archiver.drain()
            assert archiver.queue_depth == 0
        finally:
            archiver.close()
        assert archiver.stats.batches_enqueued == 3
        assert archiver.stats.batches_archived == 3

    def test_backpressure_blocks_submit(self):
        store = make_store()
        archiver = BackgroundArchiver(store, max_pending=1)
        submitted = threading.Event()
        try:
            archiver.pause()
            archiver.submit(make_batch(1))

            def overflow():
                archiver.submit(make_batch(2))
                submitted.set()

            thread = threading.Thread(target=overflow)
            thread.start()
            assert not submitted.wait(timeout=0.1)
            archiver.resume()
            assert submitted.wait(timeout=5.0)
            thread.join()
            records = archiver.drain()
        finally:
            archiver.close()
        assert [r.step for r in records] == [1, 2]

    def test_pending_batches_snapshot_while_paused(self):
        store = make_store()
        archiver = BackgroundArchiver(store, max_pending=4)
        try:
            archiver.pause()
            archiver.submit(make_batch(1))
            archiver.submit(make_batch(2))
            pending = archiver.pending_batches()
            assert [b.step for b in pending] == [1, 2]
            archiver.resume()
            archiver.drain()
        finally:
            archiver.close()

    def test_drain_on_paused_archiver_raises(self):
        store = make_store()
        archiver = BackgroundArchiver(store, max_pending=4)
        try:
            archiver.pause()
            archiver.submit(make_batch(1))
            with pytest.raises(RuntimeError):
                archiver.drain()
            archiver.resume()
            archiver.drain()
        finally:
            archiver.close()

    def test_error_propagates_to_producer(self):
        store = make_store()
        archiver = BackgroundArchiver(store, max_pending=4)
        try:
            bad = make_batch(1)
            bad._values = None  # staging will blow up
            archiver.submit(bad)
            with pytest.raises(RuntimeError, match="archiving failed"):
                archiver.drain()
            with pytest.raises(RuntimeError, match="archiving failed"):
                archiver.submit(make_batch(2))
        finally:
            archiver.close()

    def test_close_is_idempotent_and_drains(self):
        store = make_store()
        archiver = BackgroundArchiver(store, max_pending=8)
        for step in range(1, 4):
            archiver.submit(make_batch(step))
        archiver.close()
        archiver.close()
        assert store.steps_loaded == 3

    def test_submit_after_close_raises(self):
        store = make_store()
        archiver = BackgroundArchiver(store)
        archiver.close()
        with pytest.raises(RuntimeError):
            archiver.submit(make_batch(1))

    def test_records_carry_io_and_wall_time(self):
        store = make_store()
        archiver = BackgroundArchiver(store)
        try:
            archiver.submit(make_batch(1, size=500))
            (record,) = archiver.drain()
        finally:
            archiver.close()
        assert record.batch_elems == 500
        assert record.io.total.total > 0
        assert record.io.phase("load").sequential_writes > 0
        assert record.archive_wall_seconds > 0.0

    def test_rejects_bad_max_pending(self):
        with pytest.raises(ValueError):
            BackgroundArchiver(make_store(), max_pending=0)


class TestWorkStealingStaging:
    def test_query_thread_can_stage_while_paused(self):
        store = make_store()
        archiver = BackgroundArchiver(store, max_pending=4)
        try:
            archiver.pause()
            batch = make_batch(1, size=300)
            archiver.submit(batch)
            # a query thread stages the pending batch itself
            partition = batch.ensure_staged(store)
            assert batch.staged
            assert len(partition) == 300
            # idempotent: the second call returns the same partition
            assert batch.ensure_staged(store) is partition
            before = store.disk.stats.counters.snapshot()
            batch.ensure_staged(store)
            assert store.disk.stats.counters.delta_since(before).total == 0
            archiver.resume()
            (record,) = archiver.drain()
        finally:
            archiver.close()
        # the staging charges still land in the step's record
        assert record.io.phase("load").sequential_writes > 0
        assert store.steps_loaded == 1

    def test_concurrent_staging_races_stage_once(self):
        store = make_store()
        batch = make_batch(1, size=2000)
        results = []

        def stage():
            results.append(batch.ensure_staged(store))

        threads = [threading.Thread(target=stage) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(p) for p in results}) == 1
        # exactly one set of staging charges
        blocks = store.disk.blocks_for(2000)
        assert store.disk.stats.counters.sequential_writes == blocks
