"""Tests for the exact quantile oracle."""

import numpy as np
import pytest

from repro.sketches import ExactQuantiles


class TestExactQuantiles:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ExactQuantiles().query_rank(1)

    def test_rank_counts_le(self):
        oracle = ExactQuantiles()
        oracle.update_batch([1, 3, 3, 7])
        assert oracle.rank(0) == 0
        assert oracle.rank(3) == 3
        assert oracle.rank(7) == 4

    def test_rank_strict(self):
        oracle = ExactQuantiles()
        oracle.update_batch([1, 3, 3, 7])
        assert oracle.rank_strict(3) == 1
        assert oracle.rank_strict(8) == 4

    def test_query_rank_selects(self):
        oracle = ExactQuantiles()
        oracle.update_batch([10, 30, 20])
        assert oracle.query_rank(1) == 10
        assert oracle.query_rank(2) == 20
        assert oracle.query_rank(3) == 30

    def test_query_rank_clamps(self):
        oracle = ExactQuantiles()
        oracle.update_batch([5, 6])
        assert oracle.query_rank(0) == 5
        assert oracle.query_rank(99) == 6

    def test_incremental_batches(self):
        oracle = ExactQuantiles()
        oracle.update_batch(np.arange(50))
        oracle.update(100)
        oracle.update_batch(np.arange(50, 100))
        assert oracle.n == 101
        assert oracle.query_rank(101) == 100

    def test_quantile_median(self):
        oracle = ExactQuantiles()
        oracle.update_batch(np.arange(1, 102))  # 1..101
        assert oracle.quantile(0.5) == 51

    def test_quantile_definition_1(self):
        # phi-quantile: smallest element with rank >= ceil(phi * n)
        oracle = ExactQuantiles()
        oracle.update_batch([1, 2, 2, 2, 10])
        assert oracle.quantile(0.5) == 2   # rank target 3
        assert oracle.quantile(1.0) == 10

    def test_empty_batch_noop(self):
        oracle = ExactQuantiles()
        oracle.update_batch([])
        assert oracle.n == 0
